#!/usr/bin/env python3
"""Finding bellwether regions (OLAP application (b), paper §1/§5).

The bellwether measure ranks group-by attributes whose *local* aggregates
track the roll-up aggregates — "local regions which determine aggregates
for larger and maybe global regions" (Chen et al., VLDB 2006).  This
script contrasts the attribute rankings produced by the bellwether and
surprise measures for the same subspace, and then scans months for the
one whose local sales best predict the category total.

Run:  python examples/bellwether_analysis.py
"""

from repro.core import (
    BELLWETHER,
    KdapSession,
    SURPRISE,
    pearson_correlation,
    rank_groupby_attributes,
    rollup_subspaces,
)
from repro.datasets import build_aw_online
from repro.warehouse import Subspace


def main() -> None:
    print("Building AW_ONLINE ...")
    schema = build_aw_online(num_customers=400, num_facts=20000)
    session = KdapSession(schema)

    query = "Mountain Bikes"
    ranked = session.differentiate(query, limit=1)
    net = ranked[0].star_net
    subspace = net.evaluate(schema)
    rollups = rollup_subspaces(schema, net)
    print(f"\nSubspace: {net}  ({len(subspace)} facts)")

    print("\nAttribute ranking, bellwether vs surprise "
          "(Customer dimension):")
    candidates = schema.dimension("Customer").groupbys
    for measure in (BELLWETHER, SURPRISE):
        rows = rank_groupby_attributes(subspace, rollups, candidates,
                                       "revenue", measure, top_k=3)
        print(f"  {measure.name}:")
        for row in rows:
            print(f"    {str(row.attribute.ref):44s} {row.score:+.3f}")

    # Bellwether scan: which month's local Mountain-Bike sales by state
    # best track the whole year's?
    print("\nBellwether scan: month whose per-state sales best predict "
          "the full subspace's per-state sales")
    state_gb = schema.groupby_attribute("DimGeography",
                                        "StateProvinceName")
    month_gb = schema.groupby_attribute("DimDate", "MonthName")
    month_values = schema.groupby_vector(month_gb)
    domain = subspace.domain(state_gb)
    global_series = [
        subspace.partition_aggregates(state_gb, "revenue",
                                      domain=domain)[s] or 0.0
        for s in domain
    ]
    scored = []
    for month in sorted(set(subspace.groupby_values(month_gb))):
        rows = [r for r in subspace.fact_rows if month_values[r] == month]
        local = Subspace.of(schema, rows, label=month)
        local_series = [
            local.partition_aggregates(state_gb, "revenue",
                                       domain=domain)[s] or 0.0
            for s in domain
        ]
        scored.append((pearson_correlation(local_series, global_series),
                       month, len(rows)))
    scored.sort(reverse=True)
    for corr, month, n in scored[:5]:
        print(f"    {month:<10s} corr={corr:+.3f}  ({n} facts)")
    print(f"\n  => {scored[0][1]} is the bellwether month: sampling only "
          "its sales ranks the states almost exactly like the full data.")


if __name__ == "__main__":
    main()
