#!/usr/bin/env python3
"""Guided tour of the extensions implemented beyond the paper's prototype.

1. subspace-size previews in the differentiate phase;
2. measure attributes as hit candidates ("revenue>3000");
3. drill-down navigation using facet entries as entry points;
4. OLAP pivot over the drilled subspace;
5. the exact interval-merge algorithm vs Algorithm 2's annealing.

Run:  python examples/guided_tour.py
"""

from repro.core import (
    AnnealingConfig,
    KdapSession,
    anneal_splits,
    exhaustive_splits,
)
from repro.datasets import build_aw_online
from repro.evalkit import basic_series_for_query
from repro.warehouse import pivot


def main() -> None:
    print("Building AW_ONLINE ...")
    schema = build_aw_online(num_customers=400, num_facts=20000)
    session = KdapSession(schema)

    # 1. previews ------------------------------------------------------
    print("\n[1] differentiate with subspace-size previews:")
    for scored in session.differentiate("Mountain Bikes", limit=3,
                                        preview_sizes=True):
        print(f"    {scored}")

    # 2. measure predicates ---------------------------------------------
    print("\n[2] measure predicates (§7 extension): "
          "'Road Bikes revenue>3000'")
    result = session.search("Road Bikes revenue>3000")
    print(f"    interpretation: {result.star_net}")
    print(f"    {len(result.subspace)} high-value line items, total = "
          f"{result.total_aggregate:,.0f}")

    # 3. drill-down ------------------------------------------------------
    print("\n[3] drill-down from a facet entry:")
    base = session.search("Mountain Bikes")
    state = schema.groupby_attribute("DimGeography", "StateProvinceName")
    finer = session.drill_down(base, state, "California")
    print(f"    Mountain Bikes: {len(base.subspace)} facts")
    print(f"    + StateProvince=California: {len(finer.subspace)} facts, "
          f"revenue {finer.total_aggregate:,.0f}")
    color = schema.groupby_attribute("DimProduct", "Color")
    deeper = session.drill_down(finer, color, "Silver")
    print(f"    + Color=Silver: {len(deeper.subspace)} facts")

    # 4. pivot -----------------------------------------------------------
    print("\n[4] pivot of the drilled subspace "
          "(ModelName x CalendarYear):")
    model = schema.groupby_attribute("DimProduct", "ModelName")
    year = schema.groupby_attribute("DimDate", "CalendarYearName")
    table = pivot(finer.subspace, model, year, "revenue")
    header = "    " + f"{'model':<18s}" + "".join(
        f"{y:>10s}" for y in table.column_values)
    print(header)
    for row in table.row_values:
        cells = "".join(f"{table.cell(row, c):>10.0f}"
                        for c in table.column_values)
        print(f"    {row:<18s}{cells}")

    # 5. merge algorithms --------------------------------------------------
    print("\n[5] interval merging: Algorithm 2 vs the exact optimum")
    x, y = basic_series_for_query(session, "France Clothing",
                                  "DimCustomer", "YearlyIncome")
    annealed = anneal_splits(x, y, AnnealingConfig(num_intervals=6,
                                                   iterations=500))
    exact = exhaustive_splits(x, y, 6)
    print(f"    annealing (500 it): error {annealed.error * 100:.3f}%  "
          f"splits {annealed.splits}")
    print(f"    exact optimum:      error {exact.error * 100:.3f}%  "
          f"splits {exact.splits}")


if __name__ == "__main__":
    main()
