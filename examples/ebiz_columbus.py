#!/usr/bin/env python3
"""The paper's running example: "Columbus LCD" on the EBiz schema.

Walks through Example 3.1 end to end:

* "Columbus" is ambiguous between the holiday (Columbus Day), a customer
  city, a store city — and the customer reading further splits into buyer
  and seller roles because ACCOUNT joins TRANS on two foreign keys;
* "LCD" hits the product-group level ("LCD Projectors", "LCD TVs",
  "Flat Panel(LCD)") and individual product names.

The script prints every interpretation with its join path, lets the code
"pick" the top one, and explores it.

Run:  python examples/ebiz_columbus.py
"""

from repro.core import KdapSession
from repro.datasets import build_ebiz
from repro.evalkit import render_facets


def main() -> None:
    print("Building the EBiz warehouse (Figure 2 of the paper) ...")
    schema = build_ebiz(num_customers=150, num_stores=12, num_trans=5000)
    session = KdapSession(schema)

    query = "Columbus LCD"
    print(f"\n=== Interpretations of {query!r} ===")
    ranked = session.differentiate(query, limit=12)
    for i, scored in enumerate(ranked, start=1):
        print(f"\n#{i}  score={scored.score:.4f}")
        for ray in scored.star_net.rays:
            role = ray.dimension or "fact"
            print(f"    {ray.hit_group}   [{role}]")
            if ray.path_to_fact.steps:
                print(f"      join path: {ray.path_to_fact}")

    print("\n=== Exploring the top interpretation ===")
    result = session.explore(ranked[0].star_net)
    print(f"{len(result.subspace)} line items, "
          f"revenue = {result.total_aggregate:,.2f}\n")
    print(render_facets(result.interface))

    print("\n=== Equivalent SQL ===")
    print(ranked[0].star_net.to_sql(schema, "revenue"))


if __name__ == "__main__":
    main()
