#!/usr/bin/env python3
"""KDAP over a Google-Trends-style query log.

The paper's related work calls Google Trends "the only system that
provides some rudimentary KDAP functionality": keyword in, aggregated
query volume over time and location out.  This example runs the full
KDAP pipeline over a synthetic query-log warehouse to show the framework
is not tied to retail schemas.

Run:  python examples/query_trends.py
"""

from repro.core import ExploreConfig, KdapSession
from repro.datasets import build_trends
from repro.evalkit import render_facets, render_star_nets
from repro.warehouse import pivot

EXPLORE = ExploreConfig(measure_name="volume", top_k_attributes=2,
                        top_k_instances=5)


def main() -> None:
    print("Building the TRENDS query-log warehouse ...")
    schema = build_trends(num_facts=30000)
    session = KdapSession(schema)

    for query in ("olympics", "world cup Australia",
                  "halloween costumes 2005"):
        print(f"\n{'=' * 64}\nkeywords: {query!r}")
        ranked = session.differentiate(query, limit=3)
        if not ranked:
            print("  no interpretation")
            continue
        print(render_star_nets(ranked, limit=3))
        result = session.explore(ranked[0].star_net, config=EXPLORE)
        print(f"\ntotal volume: {result.total_aggregate:,.0f} over "
              f"{len(result.subspace)} log entries")
        print(render_facets(result.interface, dimensions=["Time",
                                                          "Region"]))

    # the Trends UI itself: term volume over time x region
    print(f"\n{'=' * 64}\npivot: 'ski resorts' volume by quarter x country")
    result = session.search("ski resorts", explore_config=EXPLORE)
    quarter = schema.groupby_attribute("DimDate", "CalendarQuarter")
    country = schema.groupby_attribute("DimRegion", "Country")
    table = pivot(result.subspace, quarter, country, "volume")
    header = f"{'quarter':<10s}" + "".join(
        f"{c[:12]:>14s}" for c in table.column_values)
    print(header)
    for row in table.row_values:
        cells = "".join(f"{table.cell(row, c):>14.0f}"
                        for c in table.column_values)
        print(f"{row:<10s}{cells}")


if __name__ == "__main__":
    main()
