#!/usr/bin/env python3
"""Quickstart: keyword search over a data warehouse in ~20 lines.

Builds the synthetic AW_ONLINE warehouse, runs the paper's flagship query
"California Mountain Bikes" through both KDAP phases, and prints the
ranked interpretations plus the dynamic facets.

Run:  python examples/quickstart.py
"""

from repro.core import KdapSession
from repro.datasets import build_aw_online
from repro.evalkit import render_facets, render_star_nets


def main() -> None:
    print("Building the AW_ONLINE warehouse (~60k fact rows) ...")
    schema = build_aw_online(num_customers=400, num_facts=20000)
    session = KdapSession(schema)

    query = "California Mountain Bikes"
    print(f"\n=== Phase 1: differentiate {query!r} ===")
    ranked = session.differentiate(query, limit=5)
    print(render_star_nets(ranked))

    print("\n=== Phase 2: explore the top interpretation ===")
    result = session.explore(ranked[0].star_net)
    print(f"subspace: {len(result.subspace)} fact rows, "
          f"total revenue = {result.total_aggregate:,.2f}\n")
    print(render_facets(result.interface,
                        dimensions=["Product", "Customer"]))

    print("\n=== The SQL this star net denotes ===")
    print(ranked[0].star_net.to_sql(schema, "revenue"))


if __name__ == "__main__":
    main()
