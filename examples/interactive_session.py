#!/usr/bin/env python3
"""Interactive KDAP shell — type keywords, pick an interpretation, explore.

A terminal rendition of the paper's Figure 1 loop:

    kdap> California Mountain Bikes
      [1] DimGeography/StateProvinceName/{California} & ...
      [2] ...
    pick> 1
      ... facets ...

Commands:
  <keywords>    run the differentiate phase
  <number>      explore interpretation N of the last query
  sql <number>  print the SQL of interpretation N
  quit          exit

Run:  python examples/interactive_session.py [online|reseller|ebiz]
"""

import sys

from repro.core import KdapSession
from repro.datasets import build_aw_online, build_aw_reseller, build_ebiz
from repro.evalkit import render_facets, render_star_nets

BUILDERS = {
    "online": lambda: build_aw_online(num_customers=400, num_facts=20000),
    "reseller": lambda: build_aw_reseller(num_facts=20000),
    "ebiz": lambda: build_ebiz(num_trans=5000),
}


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "online"
    if which not in BUILDERS:
        print(f"unknown warehouse {which!r}; pick one of "
              f"{sorted(BUILDERS)}")
        return
    print(f"Building the {which} warehouse ...")
    session = KdapSession(BUILDERS[which]())
    print("Ready. Type keywords (e.g. 'California Mountain Bikes'), "
          "a number to explore, or 'quit'.")

    last_ranked = []
    while True:
        try:
            line = input("kdap> ").strip()
        except EOFError:
            break
        if not line:
            continue
        if line.lower() in ("quit", "exit"):
            break

        if line.lower().startswith("sql "):
            choice = line[4:].strip()
            if choice.isdigit() and 0 < int(choice) <= len(last_ranked):
                net = last_ranked[int(choice) - 1].star_net
                print(net.to_sql(session.schema, "revenue"))
            else:
                print("sql <number> — run a query first")
            continue

        if line.isdigit():
            choice = int(line)
            if not (0 < choice <= len(last_ranked)):
                print("no such interpretation — run a query first")
                continue
            result = session.explore(last_ranked[choice - 1].star_net)
            print(f"{len(result.subspace)} facts, revenue = "
                  f"{result.total_aggregate:,.2f}")
            print(render_facets(result.interface))
            continue

        last_ranked = session.differentiate(line, limit=8)
        if not last_ranked:
            print("no interpretation found")
            continue
        print(render_star_nets(last_ranked, limit=8))
        print("pick an interpretation by number to explore it")


if __name__ == "__main__":
    main()
