#!/usr/bin/env python3
"""Finding exceptions and surprises (OLAP application (a), paper §1/§5).

The generator injects a known anomaly: Californian customers over-buy
mountain bikes.  This script shows that KDAP's surprise measure surfaces
exactly that kind of deviation — group-by attributes whose local
aggregate distribution diverges from the roll-up trend rank first, and
Eq. 2 pinpoints the deviating attribute instances.

Run:  python examples/surprise_analysis.py
"""

from repro.core import KdapSession, SURPRISE, ExploreConfig
from repro.datasets import build_aw_online


def main() -> None:
    print("Building AW_ONLINE ...")
    schema = build_aw_online(num_customers=400, num_facts=20000)
    session = KdapSession(schema)

    for query in ("Mountain Bikes", "California Accessories"):
        print(f"\n{'=' * 68}\nQuery: {query!r} (surprise measure)")
        result = session.search(
            query,
            interestingness=SURPRISE,
            explore_config=ExploreConfig(top_k_attributes=2,
                                         top_k_instances=4),
        )
        if result is None:
            print("  no interpretation")
            continue
        print(f"  interpretation: {result.star_net}")
        print(f"  revenue: {result.total_aggregate:,.0f} over "
              f"{len(result.subspace)} facts")
        for facet in result.interface.facets:
            interesting = [a for a in facet.attributes if not a.promoted]
            if not interesting:
                continue
            print(f"  [{facet.dimension}]")
            for attr in interesting:
                print(f"    {attr.attribute.ref}  "
                      f"surprise={attr.score:+.3f}")
                for entry in attr.entries[:4]:
                    direction = "above" if entry.score > 0 else "below"
                    print(f"      {entry.label:<28s} "
                          f"rev={entry.aggregate:>12,.0f}  "
                          f"{direction} trend by {abs(entry.score):.1%}")

    print("\nInterpretation guide: a surprise score near +1 means the")
    print("subspace's distribution over that attribute is anti-correlated")
    print("with its roll-up space; per-instance scores are Eq. (2) share")
    print("deviations (subspace share minus roll-up share).")


if __name__ == "__main__":
    main()
