"""End-to-end KdapSession API."""


from repro.core import (
    BELLWETHER,
    ExploreConfig,
    GenerationConfig,
    KdapSession,
    RankingMethod,
)


class TestDifferentiate:
    def test_ranked_descending(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes")
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_limit(self, online_session):
        assert len(online_session.differentiate("LCD Columbus",
                                                 limit=2)) <= 2

    def test_method_switch(self, online_session):
        standard = online_session.differentiate(
            "Mountain Tire", method=RankingMethod.STANDARD)
        baseline = online_session.differentiate(
            "Mountain Tire", method=RankingMethod.BASELINE)
        assert standard and baseline
        # the two methods assign different scores to the same candidates
        assert [s.score for s in standard] != [s.score for s in baseline]

    def test_no_interpretation(self, online_session):
        assert online_session.differentiate("qqqzz") == []


class TestExplore:
    def test_result_shape(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        result = online_session.explore(ranked[0].star_net)
        assert result.total_aggregate > 0
        assert result.subspace is result.interface.subspace
        assert result.interface.facets

    def test_interestingness_propagates(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        result = online_session.explore(ranked[0].star_net,
                                        interestingness=BELLWETHER)
        assert result.interface.facets


class TestSearch:
    def test_happy_path(self, online_session):
        result = online_session.search("California Mountain Bikes")
        assert result is not None
        assert result.star_net.size == 2
        assert result.total_aggregate > 0

    def test_none_on_unmatched(self, online_session):
        assert online_session.search("qqqzz") is None

    def test_custom_configs(self, online_session):
        result = online_session.search(
            "Road Bikes",
            explore_config=ExploreConfig(top_k_attributes=1,
                                         top_k_instances=2),
            generation_config=GenerationConfig(max_candidates=10),
        )
        assert result is not None
        for facet in result.interface.facets:
            promoted = sum(1 for a in facet.attributes if a.promoted)
            assert len(facet.attributes) <= max(1, promoted)


class TestIndexConstruction:
    def test_builds_index_from_schema(self, aw_online):
        session = KdapSession(aw_online)
        assert session.index.num_documents > 0

    def test_accepts_prebuilt_index(self, aw_online, online_session):
        session = KdapSession(aw_online, index=online_session.index)
        assert session.index is online_session.index


class TestSubspaceSizePreview:
    def test_preview_matches_evaluation(self, online_session):
        ranked = online_session.differentiate(
            "California Mountain Bikes", limit=5, preview_sizes=True)
        for scored in ranked:
            assert scored.subspace_size == len(
                scored.star_net.evaluate(online_session.schema))

    def test_no_preview_by_default(self, online_session):
        ranked = online_session.differentiate("Road Bikes", limit=3)
        assert all(s.subspace_size is None for s in ranked)

    def test_ray_cache_reused(self, online_session):
        online_session.differentiate("Columbus", limit=5,
                                     preview_sizes=True)
        before = len(online_session._ray_cache)
        online_session.differentiate("Columbus", limit=5,
                                     preview_sizes=True)
        assert len(online_session._ray_cache) == before

    def test_measure_predicate_preview(self, online_session):
        ranked = online_session.differentiate(
            "Road Bikes revenue>3000", limit=1, preview_sizes=True)
        scored = ranked[0]
        assert scored.subspace_size == len(
            scored.star_net.evaluate(online_session.schema))
