"""Intra-attribute instance ranking (Eq. 2)."""

import pytest

from repro.core import instance_score, rank_instances, rollup_subspace


@pytest.fixture(scope="module")
def context(online_session):
    ranked = online_session.differentiate("California Mountain Bikes",
                                          limit=1)
    net = ranked[0].star_net
    schema = online_session.schema
    subspace = net.evaluate(schema)
    rollups = [rollup_subspace(schema, net, d)
               for d in net.hitted_dimensions]
    return schema, subspace, rollups


class TestInstanceScore:
    def test_shares_difference(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimProduct", "Color")
        value = subspace.domain(gb)[0]
        score = instance_score(subspace, rollups[0], gb, value, "revenue")
        # Eq. 2 is a difference of two shares, each in [0, 1]
        assert -1.0 <= score <= 1.0

    def test_identity_rollup_scores_zero(self, context):
        schema, subspace, _rollups = context
        gb = schema.groupby_attribute("DimProduct", "Color")
        value = subspace.domain(gb)[0]
        score = instance_score(subspace, subspace, gb, value, "revenue")
        assert score == pytest.approx(0.0)


class TestRankInstances:
    def test_sorted_by_abs_score(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimDate", "MonthName")
        ranked = rank_instances(subspace, rollups, gb, "revenue")
        magnitudes = [abs(r.score) for r in ranked]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_top_k(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimDate", "MonthName")
        ranked = rank_instances(subspace, rollups, gb, "revenue", top_k=3)
        assert len(ranked) == 3

    def test_aggregates_sum_to_subspace_total(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimDate", "MonthName")
        ranked = rank_instances(subspace, rollups, gb, "revenue")
        assert sum(r.aggregate for r in ranked) == pytest.approx(
            subspace.aggregate("revenue"))

    def test_combines_rollups_by_max_abs(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimDate", "MonthName")
        combined = {r.value: r.score
                    for r in rank_instances(subspace, rollups, gb,
                                            "revenue")}
        singles = [
            {r.value: r.score
             for r in rank_instances(subspace, [rollup], gb, "revenue")}
            for rollup in rollups
        ]
        for value, score in combined.items():
            candidates = [s[value] for s in singles]
            assert score == pytest.approx(max(candidates, key=abs))

    def test_deterministic(self, context):
        schema, subspace, rollups = context
        gb = schema.groupby_attribute("DimProduct", "ModelName")
        a = rank_instances(subspace, rollups, gb, "revenue")
        b = rank_instances(subspace, rollups, gb, "revenue")
        assert a == b
