"""Algorithm 2: splitting-point assignment by simulated annealing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AnnealingConfig,
    anneal_splits,
    equal_width_splits,
    is_valid_splitting,
    merge_series,
    merged_correlation,
    pearson_correlation,
    segment_lengths,
)


class TestMergeSeries:
    def test_basic(self):
        assert merge_series([1, 2, 3, 4], [2]) == [3, 7]

    def test_no_splits(self):
        assert merge_series([1, 2, 3], []) == [6]

    def test_mass_preserved(self):
        series = [1.0, 5.0, 2.0, 8.0, 3.0]
        assert sum(merge_series(series, [1, 3])) == pytest.approx(
            sum(series))


class TestValidity:
    def test_equal_width_splits(self):
        assert equal_width_splits(10, 5) == (2, 4, 6, 8)

    def test_equal_width_invalid(self):
        with pytest.raises(ValueError):
            equal_width_splits(3, 5)

    def test_monotonic_required(self):
        assert not is_valid_splitting([3, 2], 10, 100.0)
        assert not is_valid_splitting([0, 2], 10, 100.0)
        assert not is_valid_splitting([2, 10], 10, 100.0)

    def test_skew_constraint(self):
        # segments of lengths 1 and 9: skew 9 exceeds L=4
        assert not is_valid_splitting([1], 10, 4.0)
        assert is_valid_splitting([5], 10, 4.0)

    def test_segment_lengths(self):
        assert segment_lengths([2, 6], 10) == [2, 4, 4]


class TestAnneal:
    def series(self, m=30, seed=3):
        rng = random.Random(seed)
        x = [rng.uniform(0, 100) for _ in range(m)]
        y = [xi * 0.5 + rng.uniform(0, 30) for xi in x]
        return x, y

    def test_error_history_monotone_nonincreasing(self):
        x, y = self.series()
        result = anneal_splits(x, y, AnnealingConfig(num_intervals=6,
                                                     iterations=200))
        history = result.error_history
        assert all(a >= b - 1e-12 for a, b in zip(history, history[1:]))

    def test_final_splits_valid(self):
        x, y = self.series()
        config = AnnealingConfig(num_intervals=6, iterations=200)
        result = anneal_splits(x, y, config)
        assert is_valid_splitting(result.splits, len(x), config.skew_limit)

    def test_improves_over_equal_width(self):
        x, y = self.series()
        config = AnnealingConfig(num_intervals=5, iterations=500)
        result = anneal_splits(x, y, config)
        basic = pearson_correlation(x, y)
        start = abs(merged_correlation(x, y, equal_width_splits(len(x), 5))
                    - basic)
        assert result.error <= start + 1e-12

    def test_deterministic_given_seed(self):
        x, y = self.series()
        config = AnnealingConfig(num_intervals=6, iterations=300, seed=11)
        assert anneal_splits(x, y, config).splits == \
            anneal_splits(x, y, config).splits

    def test_k_equals_m_is_exact(self):
        x, y = self.series(m=6)
        result = anneal_splits(x, y, AnnealingConfig(num_intervals=6,
                                                     iterations=50))
        assert result.error == pytest.approx(0.0)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            anneal_splits([1.0, 2.0], [1.0], AnnealingConfig())

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            anneal_splits([1.0, 2.0], [2.0, 3.0],
                          AnnealingConfig(num_intervals=5))

    def test_correlations_recorded(self):
        x, y = self.series()
        result = anneal_splits(x, y, AnnealingConfig(num_intervals=6,
                                                     iterations=100))
        assert result.basic_correlation == pytest.approx(
            pearson_correlation(x, y))
        assert result.merged_correlation == pytest.approx(
            merged_correlation(x, y, result.splits))


positive_series = st.lists(st.floats(0.1, 1000), min_size=8, max_size=40)


class TestProperties:
    @given(x=positive_series, k=st.integers(2, 6),
           seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_result_always_valid_and_bounded(self, x, k, seed):
        y = list(reversed(x))
        config = AnnealingConfig(num_intervals=min(k, len(x)),
                                 iterations=60, seed=seed)
        result = anneal_splits(x, y, config)
        assert is_valid_splitting(result.splits, len(x), config.skew_limit)
        assert 0.0 <= result.error <= 2.0 + 1e-9

    @given(x=positive_series, splits_seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_total_mass(self, x, splits_seed):
        rng = random.Random(splits_seed)
        k = rng.randrange(1, min(5, len(x)) + 1)
        splits = equal_width_splits(len(x), k)
        assert sum(merge_series(x, splits)) == pytest.approx(sum(x))
