"""Roll-up partitioning and group-by attribute ranking (Eq. 1)."""

import pytest

from repro.core import (
    BELLWETHER,
    SURPRISE,
    attribute_score,
    categorical_series,
    ground_truth_series,
    numerical_series,
    pearson_correlation,
    rank_groupby_attributes,
    rollup_subspace,
)
from repro.warehouse import Subspace


@pytest.fixture(scope="module")
def california_bikes(online_session):
    """DS' and its two roll-up spaces for 'California Mountain Bikes'."""
    ranked = online_session.differentiate("California Mountain Bikes",
                                          limit=1)
    net = ranked[0].star_net
    schema = online_session.schema
    subspace = net.evaluate(schema)
    rollups = {
        dim: rollup_subspace(schema, net, dim)
        for dim in net.hitted_dimensions
    }
    return schema, net, subspace, rollups


class TestRollupSubspace:
    def test_rollup_contains_subspace(self, california_bikes):
        _schema, _net, subspace, rollups = california_bikes
        for rollup in rollups.values():
            assert rollup.contains(subspace)
            assert len(rollup) > len(subspace)

    def test_product_rollup_is_category(self, california_bikes):
        schema, _net, _subspace, rollups = california_bikes
        rollup = rollups["Product"]
        gb = schema.groupby_attribute("DimProductCategory",
                                      "ProductCategoryName")
        assert rollup.domain(gb) == ["Bikes"]

    def test_customer_rollup_is_country(self, california_bikes):
        schema, _net, _subspace, rollups = california_bikes
        rollup = rollups["Customer"]
        gb = schema.groupby_attribute("DimGeography", "CountryRegionName")
        assert rollup.domain(gb) == ["United States"]


class TestCategoricalSeries:
    def test_series_cover_subspace_domain(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimProduct", "Color")
        pair = categorical_series(subspace, rollups["Product"], gb,
                                  "revenue")
        assert list(pair.categories) == subspace.domain(gb)
        assert len(pair.subspace_series) == len(pair.rollup_series)

    def test_rollup_mass_at_least_subspace(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimProduct", "Color")
        pair = categorical_series(subspace, rollups["Product"], gb,
                                  "revenue")
        for x, y in zip(pair.subspace_series, pair.rollup_series):
            assert y >= x - 1e-9


class TestNumericalSeries:
    def test_lengths_match(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimCustomer", "YearlyIncome")
        pair, buckets = numerical_series(subspace, rollups["Customer"], gb,
                                         "revenue", num_buckets=20)
        assert len(pair.subspace_series) == len(pair.rollup_series)
        assert len(buckets) == 20

    def test_convergence_to_ground_truth(self, california_bikes):
        """The §6.4 claim: with enough basic intervals the correlation
        equals the distinct-value ground truth."""
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimCustomer", "YearlyIncome")
        rollup = rollups["Customer"]
        truth = ground_truth_series(subspace, rollup, gb, "revenue")
        truth_corr = pearson_correlation(truth.subspace_series,
                                         truth.rollup_series)
        pair, _ = numerical_series(subspace, rollup, gb, "revenue",
                                   num_buckets=400)
        approx_corr = pearson_correlation(pair.subspace_series,
                                          pair.rollup_series)
        assert approx_corr == pytest.approx(truth_corr, abs=1e-6)

    def test_coarse_buckets_reduce_resolution(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimCustomer", "YearlyIncome")
        pair, _ = numerical_series(subspace, rollups["Customer"], gb,
                                   "revenue", num_buckets=3)
        assert len(pair.subspace_series) <= 3


class TestAttributeScore:
    def test_worst_case_combination(self, california_bikes):
        """With several roll-ups the maximum (most interesting) wins."""
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimDate", "MonthName")
        both = attribute_score(subspace, list(rollups.values()), gb,
                               "revenue", SURPRISE)
        singles = [
            attribute_score(subspace, [r], gb, "revenue", SURPRISE)
            for r in rollups.values()
        ]
        assert both == pytest.approx(max(singles))

    def test_surprise_and_bellwether_are_opposite(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        gb = schema.groupby_attribute("DimDate", "MonthName")
        rollup = [list(rollups.values())[0]]
        s = attribute_score(subspace, rollup, gb, "revenue", SURPRISE)
        b = attribute_score(subspace, rollup, gb, "revenue", BELLWETHER)
        assert s == pytest.approx(-b)

    def test_requires_rollups(self, california_bikes):
        schema, _net, subspace, _rollups = california_bikes
        gb = schema.groupby_attribute("DimDate", "MonthName")
        with pytest.raises(ValueError):
            attribute_score(subspace, [], gb, "revenue", SURPRISE)


class TestRanking:
    def test_top_k(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        candidates = schema.dimension("Date").groupbys
        ranked = rank_groupby_attributes(subspace, list(rollups.values()),
                                         candidates, "revenue", SURPRISE,
                                         top_k=2)
        assert len(ranked) == 2
        assert ranked[0].score >= ranked[1].score

    def test_scores_sorted(self, california_bikes):
        schema, _net, subspace, rollups = california_bikes
        candidates = schema.dimension("Customer").groupbys
        ranked = rank_groupby_attributes(subspace, list(rollups.values()),
                                         candidates, "revenue", SURPRISE)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_empty_subspace_fully_degenerate(self, online_session):
        schema = online_session.schema
        empty = Subspace.of(schema, [], "empty")
        full = Subspace.full(schema)
        gb = schema.groupby_attribute("DimDate", "MonthName")
        ranked = rank_groupby_attributes(empty, [full], [gb], "revenue",
                                         SURPRISE, top_k=5)
        assert ranked == []
