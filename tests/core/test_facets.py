"""Dynamic facet construction."""

import pytest

from repro.core import (
    BELLWETHER,
    ExploreConfig,
    build_facets,
    rollup_subspaces,
)
from repro.warehouse import AttributeKind


@pytest.fixture(scope="module")
def interface(online_session):
    ranked = online_session.differentiate("California Mountain Bikes",
                                          limit=1)
    net = ranked[0].star_net
    return net, build_facets(online_session.schema, net)


class TestStructure:
    def test_facets_in_static_dimension_order(self, interface):
        _net, ui = interface
        names = [f.dimension for f in ui.facets]
        assert names == sorted(names)

    def test_total_aggregate_matches_subspace(self, interface):
        _net, ui = interface
        assert ui.total_aggregate == pytest.approx(
            ui.subspace.aggregate("revenue"))

    def test_facet_lookup(self, interface):
        _net, ui = interface
        assert ui.facet("Product").dimension == "Product"
        with pytest.raises(KeyError):
            ui.facet("Nope")

    def test_attribute_budget_respected(self, interface):
        _net, ui = interface
        config = ExploreConfig()
        for facet in ui.facets:
            promoted = sum(1 for a in facet.attributes if a.promoted)
            assert len(facet.attributes) <= max(config.top_k_attributes,
                                                promoted)

    def test_instances_capped(self, interface):
        _net, ui = interface
        config = ExploreConfig()
        for facet in ui.facets:
            for attr in facet.attributes:
                if attr.attribute.kind is AttributeKind.CATEGORICAL:
                    assert len(attr.entries) <= config.top_k_instances
                else:
                    assert len(attr.entries) <= config.display_intervals


class TestPromotion:
    def test_hit_attributes_promoted(self, interface):
        """Table 2: 'Mountain Bikes' is always selected for navigation."""
        _net, ui = interface
        product = ui.facet("Product")
        promoted = [a for a in product.attributes if a.promoted]
        assert any(
            a.attribute.ref.column == "ProductSubcategoryName"
            for a in promoted
        )
        subcat = next(a for a in promoted
                      if a.attribute.ref.column == "ProductSubcategoryName")
        assert any(e.label == "Mountain Bikes" for e in subcat.entries)

    def test_customer_state_promoted(self, interface):
        _net, ui = interface
        customer = ui.facet("Customer")
        promoted = [a for a in customer.attributes if a.promoted]
        assert any(a.attribute.ref.column == "StateProvinceName"
                   for a in promoted)

    def test_promoted_first(self, interface):
        _net, ui = interface
        for facet in ui.facets:
            flags = [a.promoted for a in facet.attributes]
            assert flags == sorted(flags, reverse=True)


class TestNumericalFacets:
    def test_dealer_price_intervals(self, online_session):
        """Table 2 shows DealerPrice as merged numeric ranges."""
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        net = ranked[0].star_net
        config = ExploreConfig(top_k_attributes=6, display_intervals=3)
        ui = build_facets(online_session.schema, net, config=config)
        product = ui.facet("Product")
        price = [a for a in product.attributes
                 if a.attribute.ref.column == "DealerPrice"]
        assert price, "DealerPrice should surface with a larger budget"
        entries = price[0].entries
        assert 1 <= len(entries) <= 3
        # intervals are contiguous and ordered
        for left, right in zip(entries, entries[1:]):
            assert left.value.high == pytest.approx(right.value.low)


class TestRollupSpaces:
    def test_one_per_hitted_dimension(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        net = ranked[0].star_net
        rollups = rollup_subspaces(online_session.schema, net)
        assert len(rollups) == len(net.hitted_dimensions)

    def test_full_space_when_no_hitted_dimension(self, online_session):
        from repro.core import StarNet
        schema = online_session.schema
        rollups = rollup_subspaces(schema, StarNet(schema.fact_table, ()))
        assert len(rollups) == 1
        assert len(rollups[0]) == schema.num_fact_rows


class TestMeasures:
    def test_bellwether_changes_selection_scores(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        net = ranked[0].star_net
        surprise_ui = build_facets(online_session.schema, net)
        bell_ui = build_facets(online_session.schema, net,
                               interestingness=BELLWETHER)
        s_scores = {
            (f.dimension, a.attribute.ref.column): a.score
            for f in surprise_ui.facets for a in f.attributes
            if not a.promoted
        }
        b_scores = {
            (f.dimension, a.attribute.ref.column): a.score
            for f in bell_ui.facets for a in f.attributes
            if not a.promoted
        }
        shared = set(s_scores) & set(b_scores)
        assert any(s_scores[k] != b_scores[k] for k in shared)


class TestIntervalExpansion:
    """§5.3.2: displayed intervals expand into sub-intervals."""

    @pytest.fixture(scope="class")
    def price_facet(self, online_session):
        from repro.core import rollup_subspaces

        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        net = ranked[0].star_net
        schema = online_session.schema
        subspace = net.evaluate(schema)
        rollups = rollup_subspaces(schema, net)
        gb = schema.groupby_attribute("DimCustomer", "YearlyIncome")
        config = ExploreConfig(display_intervals=3)
        from repro.core.facets import _numerical_entries

        entries = _numerical_entries(subspace, rollups, gb, config)
        return schema, subspace, rollups, gb, entries, config

    def test_expansion_produces_subintervals(self, price_facet):
        from repro.core import expand_interval

        schema, subspace, rollups, gb, entries, config = price_facet
        assert entries
        parent = entries[0].value
        children = expand_interval(subspace, rollups, gb, parent, config)
        assert children
        for child in children:
            assert child.value.low >= parent.low - 1e-9
            assert child.value.high <= parent.high + 1e-9

    def test_expansion_mass_preserved(self, price_facet):
        from repro.core import expand_interval

        schema, subspace, rollups, gb, entries, config = price_facet
        parent = entries[0]
        children = expand_interval(subspace, rollups, gb, parent.value,
                                   config)
        total = sum(c.aggregate for c in children)
        assert total == pytest.approx(parent.aggregate, rel=1e-6)

    def test_expanding_empty_interval(self, price_facet):
        from repro.core import expand_interval
        from repro.core.bucketing import Interval

        schema, subspace, rollups, gb, _entries, config = price_facet
        empty = Interval(-100.0, -50.0)
        assert expand_interval(subspace, rollups, gb, empty, config) == ()
