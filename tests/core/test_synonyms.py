"""The per-schema synonym registry (business term -> schema target)."""

import pytest

from repro.core import SynonymRegistry, SynonymTarget


class TestSynonymTarget:
    def test_parses_attribute_form(self):
        target = SynonymTarget.parse("DimDate.MonthName")
        assert target.kind == "attribute"
        assert target.table == "DimDate"
        assert target.column == "MonthName"
        assert str(target) == "DimDate.MonthName"

    def test_parses_measure_form(self):
        target = SynonymTarget.parse("measure:revenue")
        assert target.kind == "measure"
        assert target.measure == "revenue"
        assert str(target) == "measure:revenue"

    @pytest.mark.parametrize("raw", ["month", "measure:", ".Column",
                                     "Table."])
    def test_rejects_malformed_targets(self, raw):
        with pytest.raises(ValueError):
            SynonymTarget.parse(raw)


class TestSynonymRegistry:
    def test_lookup_is_stem_normalised(self):
        registry = SynonymRegistry({"sales": ["measure:revenue"]})
        # "sale", "Sales", "sales" all collapse to the same stem
        assert registry.lookup("sale")
        assert registry.lookup("Sales")
        assert registry.lookup("SALES")[0].measure == "revenue"
        assert registry.lookup("unrelated") == ()

    def test_add_extends_target_list(self):
        registry = SynonymRegistry()
        registry.add("month", ["DimDate.MonthName"])
        registry.add("month", ["DimDate.CalendarYearName"])
        assert len(registry.lookup("month")) == 2

    def test_rejects_empty_term(self):
        with pytest.raises(ValueError):
            SynonymRegistry().add("  ", ["DimDate.MonthName"])

    def test_len_bool_iter(self):
        registry = SynonymRegistry({"b": ["T.B"], "a": ["T.A"]})
        assert len(registry) == 2
        assert registry
        assert not SynonymRegistry()
        assert list(registry) == ["a", "b"]

    def test_json_round_trip(self, tmp_path):
        registry = SynonymRegistry({
            "month": ["DimDate.MonthName"],
            "sales": ["measure:revenue", "DimSales.Amount"],
        })
        path = tmp_path / "synonyms.json"
        registry.save(str(path))
        loaded = SynonymRegistry.load(str(path))
        assert loaded.as_dict() == registry.as_dict()
        assert loaded.lookup("sales") == registry.lookup("sales")

    def test_from_json_accepts_bare_string_target(self):
        registry = SynonymRegistry.from_json(
            '{"month": "DimDate.MonthName"}')
        assert registry.lookup("month")[0].column == "MonthName"

    @pytest.mark.parametrize("text", ["[]", '{"t": 1}', '{"t": [1]}'])
    def test_from_json_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            SynonymRegistry.from_json(text)
