"""Measure predicates as keywords (the §7 extension)."""

import pytest

from repro.core import GenerationConfig, generate_candidates
from repro.core.measure_hits import (
    MeasurePredicate,
    measure_fact_rows,
    parse_measure_keyword,
)
from repro.relational import SqliteBackend


class TestParsing:
    def test_measure_name(self, aw_online):
        pred = parse_measure_keyword(aw_online, "revenue>5000")
        assert pred == MeasurePredicate("revenue", ">", 5000.0, True)

    def test_case_insensitive(self, aw_online):
        pred = parse_measure_keyword(aw_online, "Revenue<=10.5")
        assert pred is not None
        assert pred.target == "revenue"
        assert pred.op == "<="

    def test_fact_column(self, aw_online):
        pred = parse_measure_keyword(aw_online, "Quantity>=2")
        assert pred == MeasurePredicate("Quantity", ">=", 2.0, False)

    def test_non_numeric_column_rejected(self, aw_online):
        # CustomerKey is numeric and accepted; a dimension attribute is not
        assert parse_measure_keyword(aw_online, "ModelName>5") is None

    def test_plain_keyword_rejected(self, aw_online):
        assert parse_measure_keyword(aw_online, "California") is None

    def test_malformed_rejected(self, aw_online):
        assert parse_measure_keyword(aw_online, "revenue>") is None
        assert parse_measure_keyword(aw_online, ">100") is None
        assert parse_measure_keyword(aw_online, "revenue>abc") is None


class TestEvaluation:
    def test_rows_satisfy_predicate(self, aw_online):
        pred = parse_measure_keyword(aw_online, "revenue>3000")
        rows = measure_fact_rows(aw_online, pred)
        vector = aw_online.measure_vector("revenue")
        assert rows == {r for r, v in enumerate(vector) if v > 3000}

    def test_column_predicate(self, aw_online):
        pred = parse_measure_keyword(aw_online, "Quantity=4")
        rows = measure_fact_rows(aw_online, pred)
        quantities = aw_online.database.table(
            aw_online.fact_table).column_values("Quantity")
        assert rows == {r for r, q in enumerate(quantities) if q == 4}

    def test_holds_none_is_false(self):
        pred = MeasurePredicate("x", ">", 1.0, False)
        assert not pred.holds(None)


class TestIntegration:
    def test_mixed_query(self, online_session):
        candidates = generate_candidates(
            online_session.schema, online_session.index,
            "Road Bikes revenue>3000")
        assert candidates
        net = candidates[0]
        assert len(net.measure_predicates) == 1
        subspace = net.evaluate(online_session.schema)
        vector = online_session.schema.measure_vector("revenue")
        assert all(vector[r] > 3000 for r in subspace.fact_rows)

    def test_pure_measure_query(self, online_session):
        candidates = generate_candidates(
            online_session.schema, online_session.index, "Quantity>=3")
        assert len(candidates) == 1
        net = candidates[0]
        assert net.size == 0
        subspace = net.evaluate(online_session.schema)
        assert not subspace.is_empty

    def test_sql_includes_predicate(self, online_session, aw_online):
        candidates = generate_candidates(
            online_session.schema, online_session.index,
            "Road Bikes revenue>3000")
        net = candidates[0]
        sql = net.to_sql(aw_online, "revenue")
        assert "> 3000" in sql
        subspace = net.evaluate(aw_online)
        with SqliteBackend(aw_online.database) as backend:
            got = backend.execute(sql)[0][0] or 0.0
        assert got == pytest.approx(subspace.aggregate("revenue"),
                                    rel=1e-9)

    def test_disabled_by_config(self, online_session):
        config = GenerationConfig(enable_measure_predicates=False)
        candidates = generate_candidates(
            online_session.schema, online_session.index,
            "Quantity>=3", config)
        # with the extension off, 'Quantity>=3' is ordinary text (the
        # analyzer splits it into tokens) — no candidate carries a
        # measure predicate
        assert all(not c.measure_predicates for c in candidates)
