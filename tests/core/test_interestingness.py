"""Interestingness measures and the Pearson correlation conventions."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BELLWETHER,
    SURPRISE,
    BellwetherMeasure,
    SurpriseMeasure,
    pearson_correlation,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == \
            pytest.approx(-1.0)

    def test_shift_invariant(self):
        a = [1.0, 5.0, 2.0, 8.0]
        b = [2.0, 3.0, 9.0, 1.0]
        assert pearson_correlation(a, b) == pytest.approx(
            pearson_correlation([x + 10 for x in a], b))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_short_series_is_zero(self):
        assert pearson_correlation([1], [1]) == 0.0
        assert pearson_correlation([], []) == 0.0

    def test_one_constant_series_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_both_constant_is_one(self):
        assert pearson_correlation([2, 2], [5, 5]) == 1.0


class TestMeasures:
    def test_surprise_negates(self):
        x, y = [1.0, 2.0, 3.0], [2.0, 4.0, 6.0]
        assert SURPRISE.score_series(x, y) == pytest.approx(-1.0)

    def test_bellwether_follows(self):
        x, y = [1.0, 2.0, 3.0], [2.0, 4.0, 6.0]
        assert BELLWETHER.score_series(x, y) == pytest.approx(1.0)

    def test_opposites(self):
        x, y = [1.0, 5.0, 2.0], [4.0, 1.0, 9.0]
        assert SurpriseMeasure().score_series(x, y) == \
            pytest.approx(-BellwetherMeasure().score_series(x, y))

    def test_names(self):
        assert SURPRISE.name == "surprise"
        assert BELLWETHER.name == "bellwether"


series = st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=20)


class TestProperties:
    @given(x=series, y=series)
    @settings(max_examples=150, deadline=None)
    def test_bounded(self, x, y):
        n = min(len(x), len(y))
        value = pearson_correlation(x[:n], y[:n])
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(x=series)
    @settings(max_examples=100, deadline=None)
    def test_self_correlation(self, x):
        value = pearson_correlation(x, x)
        if len(set(x)) > 1:
            assert value == pytest.approx(1.0)
        else:
            assert value == 1.0

    @given(x=series, y=series)
    @settings(max_examples=100, deadline=None)
    def test_symmetric(self, x, y):
        n = min(len(x), len(y))
        assert pearson_correlation(x[:n], y[:n]) == pytest.approx(
            pearson_correlation(y[:n], x[:n]))


class TestMaxShareDeviation:
    def test_identical_shares_zero(self):
        from repro.core import MAX_SHARE_DEVIATION
        assert MAX_SHARE_DEVIATION.score_series([1, 2, 3],
                                                [10, 20, 30]) == 0.0

    def test_single_spike_detected(self):
        from repro.core import MAX_SHARE_DEVIATION
        x = [8.0, 1.0, 1.0]   # 80% in the first category
        y = [1.0, 1.0, 1.0]   # 33% expected
        score = MAX_SHARE_DEVIATION.score_series(x, y)
        assert score == pytest.approx(0.8 - 1 / 3)

    def test_bounded_by_one(self):
        from repro.core import MAX_SHARE_DEVIATION
        assert 0.0 <= MAX_SHARE_DEVIATION.score_series(
            [1.0, 0.0], [0.0, 1.0]) <= 1.0

    def test_empty_series(self):
        from repro.core import MAX_SHARE_DEVIATION
        assert MAX_SHARE_DEVIATION.score_series([], []) == 0.0

    def test_zero_mass(self):
        from repro.core import MAX_SHARE_DEVIATION
        assert MAX_SHARE_DEVIATION.score_series([0.0], [1.0]) == 0.0

    def test_length_mismatch(self):
        from repro.core import MAX_SHARE_DEVIATION
        with pytest.raises(ValueError):
            MAX_SHARE_DEVIATION.score_series([1.0], [1.0, 2.0])
