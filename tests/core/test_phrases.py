"""Phrase-query hit-group merging (§4.3)."""

import pytest

from repro.core import HitGroup, merge_seed_groups, try_merge
from repro.textindex import AttributeTextIndex


@pytest.fixture
def index():
    idx = AttributeTextIndex()
    for city in ("San Jose", "San Antonio", "San Francisco", "Palo Alto"):
        idx.add_value("Loc", "City", city)
    idx.add_value("PGroup", "Name", "Software")
    idx.add_value("PGroup", "Name", "Electronics")
    return idx


def group_for(index, keyword):
    hits = tuple(h for h in index.search(keyword)
                 if h.domain == ("Loc", "City"))
    return HitGroup("Loc", "City", hits, (keyword,))


class TestTryMerge:
    def test_merges_overlapping_same_domain(self, index):
        san = group_for(index, "San")
        jose = group_for(index, "Jose")
        merged = try_merge(san, jose, index)
        assert merged is not None
        assert merged.values == ("San Jose",)
        assert merged.keywords == ("San", "Jose")

    def test_rescored_with_phrase(self, index):
        san = group_for(index, "San")
        jose = group_for(index, "Jose")
        merged = try_merge(san, jose, index)
        # the merged score reflects both keywords and beats the raw
        # single-keyword retrieval score
        assert merged.hits[0].score > san.hits[0].score

    def test_baseline_raw_score_not_inflated(self, index):
        san = group_for(index, "San")
        jose = group_for(index, "Jose")
        merged = try_merge(san, jose, index)
        assert merged.hits[0].raw_score < merged.hits[0].score

    def test_different_domains_do_not_merge(self, index):
        city = group_for(index, "San")
        software = HitGroup("PGroup", "Name",
                            tuple(index.search("Software")), ("Software",))
        assert try_merge(city, software, index) is None

    def test_disjoint_groups_do_not_merge(self, index):
        """'Software Electronics' stays two side-by-side slices."""
        software = HitGroup(
            "PGroup", "Name",
            tuple(h for h in index.search("Software")
                  if h.domain == ("PGroup", "Name")), ("Software",))
        electronics = HitGroup(
            "PGroup", "Name",
            tuple(h for h in index.search("Electronics")
                  if h.domain == ("PGroup", "Name")), ("Electronics",))
        assert try_merge(software, electronics, index) is None


class TestMergeSeedGroups:
    def test_three_keyword_phrase(self):
        idx = AttributeTextIndex()
        idx.add_value("Loc", "State", "New South Wales")
        idx.add_value("Loc", "State", "New York")
        groups = tuple(
            HitGroup("Loc", "State",
                     tuple(h for h in idx.search(k)
                           if h.domain == ("Loc", "State")), (k,))
            for k in ("New", "South", "Wales")
        )
        merged = merge_seed_groups(groups, idx)
        assert len(merged) == 1
        assert merged[0].values == ("New South Wales",)
        assert merged[0].keywords == ("New", "South", "Wales")

    def test_non_mergeable_left_alone(self, index):
        software = HitGroup("PGroup", "Name",
                            tuple(h for h in index.search("Software")
                                  if h.domain == ("PGroup", "Name")),
                            ("Software",))
        city = group_for(index, "San")
        merged = merge_seed_groups((software, city), index)
        assert len(merged) == 2
