"""The staged pipeline: enumeration over mixed candidate kinds,
confidence-folded ranking, and match diagnostics."""

import pytest

from repro.core import (
    Interpretation,
    MatcherChain,
    Modifier,
    RankingMethod,
    StarNet,
    interpret_query,
    rank_interpretations,
    score_interpretation,
)
from repro.core.generation import DEFAULT_CONFIG
from repro.core.interpret import MatchReport
from repro.datasets.scale import build_scale
from repro.textindex.index import AttributeTextIndex


@pytest.fixture(scope="module")
def scale():
    return build_scale(num_facts=2000, seed=7)


@pytest.fixture(scope="module")
def scale_index(scale):
    index = AttributeTextIndex()
    index.index_database(scale.database, scale.searchable)
    return index


@pytest.fixture(scope="module")
def chain(scale, scale_index):
    return MatcherChain(scale, scale_index)


def interpret(scale, scale_index, chain, query, **kwargs):
    return interpret_query(scale, scale_index, query, DEFAULT_CONFIG,
                           chain=chain, **kwargs)


class TestMixedEnumeration:
    def test_hints_only_query_yields_empty_ray_net(self, scale,
                                                   scale_index, chain):
        interps, report = interpret(scale, scale_index, chain,
                                    "revenue by month top 3")
        assert report.unmatched == ()
        assert len(interps) >= 1
        top = interps[0]
        assert top.star_net.rays == ()
        assert top.measures == ("revenue",)
        assert top.modifier.order == "desc"
        assert top.modifier.limit == 3
        assert any(str(gb.ref) == "DimDate.MonthName"
                   for gb in top.group_by_hints)
        assert 0.0 < top.confidence < 1.0

    def test_value_and_hint_mix(self, scale, scale_index, chain):
        interps, report = interpret(scale, scale_index, chain,
                                    "December revenue")
        assert interps
        top = interps[0]
        assert top.star_net.rays  # December -> MonthName predicate
        assert top.measures == ("revenue",)
        # value (1.0) * measure (0.9)
        assert top.confidence == pytest.approx(0.9)

    def test_unmatched_keyword_fails_conjunctive_query(self, scale,
                                                       scale_index,
                                                       chain):
        interps, report = interpret(scale, scale_index, chain,
                                    "December qqqzz")
        assert interps == []
        assert report.unmatched == ("qqqzz",)
        notes = report.notes()
        assert len(notes) == 1
        assert "qqqzz" in notes[0]
        assert "value, metadata, pattern" in notes[0]

    def test_counters_cover_enabled_matchers(self, scale, scale_index,
                                             chain):
        _, report = interpret(scale, scale_index, chain,
                              "revenue by month top 3")
        assert report.counters["pattern.accepted"] == 2
        assert report.counters["metadata.accepted"] == 1
        assert report.counters["value.accepted"] == 0
        assert report.interpretations >= 1

    def test_value_only_selection_drops_hints(self, scale, scale_index,
                                              chain):
        interps, report = interpret(scale, scale_index, chain,
                                    "December", matchers=("value",))
        assert interps
        for interp in interps:
            assert not interp.has_hints
            assert interp.confidence == 1.0

    def test_alternative_groupby_resolutions_fan_out(self, scale,
                                                     scale_index, chain):
        # "by name" resolves to several *Name attributes -> several
        # distinct interpretations, one per resolution
        interps, _ = interpret(scale, scale_index, chain,
                               "revenue by name")
        hinted = {str(i.modifier.group_by[0].ref) for i in interps
                  if i.modifier.group_by}
        assert len(hinted) > 1


class TestScoring:
    def test_confidence_scales_hint_score(self):
        net = StarNet("Fact", ())
        hinted = Interpretation(net, measures=("revenue",),
                                confidence=0.9)
        assert score_interpretation(hinted) == pytest.approx(0.9)

    def test_rayless_hintless_scores_zero(self):
        bare = Interpretation(StarNet("Fact", ()))
        assert score_interpretation(bare) == 0.0

    def test_rank_orders_by_confidence(self):
        net = StarNet("Fact", ())
        low = Interpretation(net, measures=("revenue",), confidence=0.5)
        high = Interpretation(net, measures=("revenue",), confidence=0.9)
        ranked = rank_interpretations([low, high],
                                      RankingMethod.STANDARD)
        assert ranked[0].interpretation is high
        assert ranked[0].score > ranked[1].score


class TestInterpretationShape:
    def test_group_by_hints_deduplicate(self, scale):
        gb = scale.groupby_attribute("DimDate", "MonthName")
        interp = Interpretation(
            StarNet("FactScaleSales", ()), attributes=(gb,),
            modifier=Modifier(group_by=(gb,)))
        assert interp.group_by_hints == (gb,)

    def test_describe_mentions_hints(self, scale):
        gb = scale.groupby_attribute("DimDate", "MonthName")
        interp = Interpretation(
            StarNet("FactScaleSales", ()), measures=("revenue",),
            modifier=Modifier(group_by=(gb,), order="desc", limit=3))
        text = interp.describe()
        assert "measures[revenue]" in text
        assert "DimDate.MonthName" in text
        assert "limit 3" in text
        assert not text.startswith(" ")

    def test_fingerprint_tracks_hints(self, scale):
        net = StarNet("FactScaleSales", ())
        plain = Interpretation(net)
        hinted = Interpretation(net, measures=("revenue",))
        assert plain.fingerprint() != hinted.fingerprint()
        assert hinted.fingerprint() == hinted.fingerprint()


class TestMatchReport:
    def test_as_dict_round_trips_to_json(self):
        import json

        report = MatchReport(query="q", keywords=("a",),
                             matchers=("value",), unmatched=("a",),
                             counters={"value.candidates": 0})
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["unmatched"] == ["a"]
        assert payload["matchers"] == ["value"]
