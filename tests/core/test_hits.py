"""Hit retrieval and hit-group formation."""

import pytest

from repro.core import HitGroup, group_hits, retrieve_hit_groups
from repro.textindex import AttributeTextIndex, SearchHit


@pytest.fixture
def index():
    idx = AttributeTextIndex()
    idx.add_value("Loc", "City", "Columbus")
    idx.add_value("Loc", "City", "Columbia")
    idx.add_value("Holiday", "Event", "Columbus Day")
    return idx


class TestHitGroup:
    def test_requires_hits(self):
        with pytest.raises(ValueError):
            HitGroup("T", "A", (), ("k",))

    def test_rejects_foreign_hits(self):
        hit = SearchHit("Other", "A", "v", 1.0)
        with pytest.raises(ValueError):
            HitGroup("T", "A", (hit,), ("k",))

    def test_values_and_size(self):
        hits = (SearchHit("T", "A", "x", 1.0), SearchHit("T", "A", "y", 2.0))
        group = HitGroup("T", "A", hits, ("k",))
        assert group.values == ("x", "y")
        assert group.size == 2
        assert group.mean_score() == 1.5
        assert group.domain == ("T", "A")

    def test_str_truncates(self):
        hits = tuple(SearchHit("T", "A", f"v{i}", 1.0) for i in range(5))
        group = HitGroup("T", "A", hits, ("k",))
        assert "5 values" in str(group)


class TestGrouping:
    def test_groups_by_domain(self, index):
        hits = index.search("Columbus")
        groups = group_hits("Columbus", hits)
        domains = {g.domain for g in groups}
        assert domains == {("Loc", "City"), ("Holiday", "Event")}

    def test_groups_sorted_by_best_score(self, index):
        groups = retrieve_hit_groups(index, "Columbus")
        scores = [max(h.score for h in g.hits) for g in groups]
        assert scores == sorted(scores, reverse=True)

    def test_keyword_recorded(self, index):
        groups = retrieve_hit_groups(index, "Columbus")
        assert all(g.keywords == ("Columbus",) for g in groups)

    def test_max_groups(self, index):
        groups = retrieve_hit_groups(index, "Columbus", max_groups=1)
        assert len(groups) == 1

    def test_no_hits(self, index):
        assert retrieve_hit_groups(index, "zzz") == []
