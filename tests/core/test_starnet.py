"""Star-net model: evaluation semantics, aliasing, SQL compilation."""

import pytest

from repro.core import StarNet, generate_candidates
from repro.core.generation import DEFAULT_CONFIG
from repro.relational import SqliteBackend


def top_net(session, query):
    ranked = session.differentiate(query, limit=1)
    assert ranked, f"no interpretation for {query!r}"
    return ranked[0].star_net


class TestEvaluation:
    def test_subspace_is_fact_subset(self, ebiz_session):
        net = top_net(ebiz_session, "Columbus LCD")
        subspace = net.evaluate(ebiz_session.schema)
        assert 0 < len(subspace) < ebiz_session.schema.num_fact_rows

    def test_intersection_semantics(self, ebiz_session):
        """Multi-keyword subspaces are intersections of the rays'."""
        schema = ebiz_session.schema
        net = top_net(ebiz_session, "Columbus LCD")
        assert net.size == 2
        full = net.evaluate(schema)
        singles = [StarNet(net.fact_table, (ray,)).evaluate(schema)
                   for ray in net.rays]
        expected = set(singles[0].fact_rows) & set(singles[1].fact_rows)
        assert set(full.fact_rows) == expected

    def test_hit_group_values_are_ored(self, ebiz_session):
        """Within one hit group, rows for any matched value qualify."""
        schema = ebiz_session.schema
        net = top_net(ebiz_session, "LCD")
        assert net.size == 1
        group = net.rays[0].hit_group
        assert len(group.values) >= 2  # LCD Projectors, LCD TVs, Flat Panel
        subspace = net.evaluate(schema)
        gb = schema.groupby_attribute("PGROUP", "GroupName")
        seen = set(subspace.domain(gb))
        assert seen == set(group.values)

    def test_hitted_dimensions(self, ebiz_session):
        net = top_net(ebiz_session, "Columbus LCD")
        dims = set(net.hitted_dimensions)
        assert "Product" in dims
        assert len(dims) == 2


class TestSqlCompilation:
    def test_sql_contains_fact_and_joins(self, ebiz_session):
        net = top_net(ebiz_session, "Columbus LCD")
        sql = net.to_sql(ebiz_session.schema, "revenue")
        assert "FROM TRANSITEM AS f" in sql
        assert "JOIN" in sql
        assert "WHERE" in sql

    def test_sql_matches_inmemory_aggregate(self, ebiz_session):
        """Cross-check: executing the generated SQL on sqlite must produce
        the same aggregate as the in-memory subspace evaluation."""
        schema = ebiz_session.schema
        net = top_net(ebiz_session, "Columbus LCD")
        subspace = net.evaluate(schema)
        want = subspace.aggregate("revenue")
        with SqliteBackend(schema.database) as backend:
            rows = backend.execute(net.to_sql(schema, "revenue"))
        got = rows[0][0] or 0.0
        assert got == pytest.approx(want, rel=1e-9)

    def test_alias_merging_same_dimension(self, ebiz_session):
        """Two hierarchies of the Product dimension share the PRODUCT
        table expression (intersection semantics)."""
        candidates = generate_candidates(
            ebiz_session.schema, ebiz_session.index,
            "Electronics Projectors", DEFAULT_CONFIG)
        merged = [
            c for c in candidates
            if {r.hit_group.table for r in c.rays} == {"UNSPSC", "PGROUP"}
        ]
        assert merged, "expected a two-hierarchy interpretation"
        query = merged[0].to_join_query(ebiz_session.schema, "revenue")
        product_aliases = {
            e.right_alias for e in query.edges if e.right_table == "PRODUCT"
        }
        assert len(product_aliases) == 1

    def test_alias_split_different_dimensions(self, ebiz_session):
        """Seattle customers buying in Portland stores: the LOCATION table
        appears twice under different aliases."""
        candidates = generate_candidates(
            ebiz_session.schema, ebiz_session.index, "Seattle Portland",
            DEFAULT_CONFIG)
        cross = [
            c for c in candidates
            if {r.dimension for r in c.rays} == {"Customer", "Store"}
            and all(r.hit_group.table == "LOCATION" for r in c.rays)
        ]
        assert cross, "expected a customer-city x store-city interpretation"
        query = cross[0].to_join_query(ebiz_session.schema, "revenue")
        location_aliases = {
            e.right_alias for e in query.edges
            if e.right_table == "LOCATION"
        }
        assert len(location_aliases) == 2
