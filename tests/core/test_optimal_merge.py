"""Exact and beam-search interval merging (the §7 algorithms extension)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnnealingConfig, anneal_splits, is_valid_splitting
from repro.core.optimal_merge import beam_splits, exhaustive_splits


def series(m=14, seed=3):
    rng = random.Random(seed)
    x = [rng.uniform(0, 100) for _ in range(m)]
    y = [xi * 0.4 + rng.uniform(0, 40) for xi in x]
    return x, y


class TestExhaustive:
    def test_valid_result(self):
        x, y = series()
        result = exhaustive_splits(x, y, 5)
        assert is_valid_splitting(result.splits, len(x), 4.0)

    def test_k_one_no_splits(self):
        x, y = series()
        assert exhaustive_splits(x, y, 1).splits == ()

    def test_k_equals_m_zero_error(self):
        x, y = series(m=6)
        result = exhaustive_splits(x, y, 6)
        assert result.error == pytest.approx(0.0)

    def test_optimal_beats_or_ties_annealing(self):
        x, y = series()
        exact = exhaustive_splits(x, y, 5)
        annealed = anneal_splits(
            x, y, AnnealingConfig(num_intervals=5, iterations=500))
        assert exact.error <= annealed.error + 1e-12

    def test_state_space_guard(self):
        x, y = series(m=60, seed=1)
        with pytest.raises(ValueError):
            exhaustive_splits(x, y, 8, max_states=100)

    def test_mismatched_series(self):
        with pytest.raises(ValueError):
            exhaustive_splits([1.0, 2.0], [1.0], 2)

    def test_infeasible_constraint(self):
        x, y = series(m=10)
        # splitting 10 intervals into 2 with skew limit < 1 is impossible
        with pytest.raises(ValueError):
            exhaustive_splits(x, y, 2, skew_limit=0.5)


class TestBeam:
    def test_valid_result(self):
        x, y = series()
        result = beam_splits(x, y, 5)
        assert is_valid_splitting(result.splits, len(x), 4.0)

    def test_near_exact(self):
        x, y = series()
        exact = exhaustive_splits(x, y, 5)
        beam = beam_splits(x, y, 5, beam_width=64)
        assert beam.error <= exact.error + 0.05

    def test_wide_beam_matches_exact(self):
        x, y = series(m=10)
        exact = exhaustive_splits(x, y, 4)
        beam = beam_splits(x, y, 4, beam_width=10_000)
        assert beam.error == pytest.approx(exact.error, abs=1e-12)

    def test_deterministic(self):
        x, y = series()
        assert beam_splits(x, y, 5).splits == beam_splits(x, y, 5).splits

    def test_k_one(self):
        x, y = series()
        assert beam_splits(x, y, 1).splits == ()


class TestProperties:
    @given(seed=st.integers(0, 500), k=st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_exact_never_worse_than_heuristics(self, seed, k):
        x, y = series(m=12, seed=seed)
        exact = exhaustive_splits(x, y, k)
        beam = beam_splits(x, y, k)
        annealed = anneal_splits(
            x, y, AnnealingConfig(num_intervals=k, iterations=200,
                                  seed=seed))
        assert exact.error <= beam.error + 1e-12
        assert exact.error <= annealed.error + 1e-12
