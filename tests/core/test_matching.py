"""Unit tests per matcher: value, metadata, pattern, and the chain."""

import pytest

from repro.core import (
    DEFAULT_MATCHERS,
    MatchKind,
    MatcherChain,
    MetadataMatcher,
    Modifier,
    SynonymRegistry,
    ValueMatcher,
    validate_matchers,
)
from repro.core.generation import DEFAULT_CONFIG
from repro.core.matching import PatternMatcher, camel_words
from repro.datasets.scale import build_scale
from repro.textindex.index import AttributeTextIndex


@pytest.fixture(scope="module")
def scale():
    return build_scale(num_facts=2000, seed=7)


@pytest.fixture(scope="module")
def scale_index(scale):
    index = AttributeTextIndex()
    index.index_database(scale.database, scale.searchable)
    return index


@pytest.fixture(scope="module")
def chain(scale, scale_index):
    return MatcherChain(scale, scale_index)


class TestCamelWords:
    @pytest.mark.parametrize("name,want", [
        ("CalendarYearName", ["calendar", "year", "name"]),
        ("MonthName", ["month", "name"]),
        ("ListPrice", ["list", "price"]),
        ("DimProduct", ["dim", "product"]),
        ("Fact2Sales", ["fact", "2", "sales"]),
        ("YEARLYIncome", ["yearly", "income"]),
    ])
    def test_split(self, name, want):
        assert camel_words(name) == want


class TestValueMatcher:
    def test_cell_value_hits_with_confidence_one(self, scale_index):
        matcher = ValueMatcher(scale_index)
        candidates = matcher.match_keyword("December", DEFAULT_CONFIG)
        assert candidates
        for cand in candidates:
            assert cand.kind is MatchKind.VALUE
            assert cand.confidence == 1.0
            assert cand.matcher == "value"
            assert cand.hit_group is not None
        assert any(c.hit_group.attribute == "MonthName"
                   for c in candidates)

    def test_unknown_keyword_matches_nothing(self, scale_index):
        matcher = ValueMatcher(scale_index)
        assert matcher.match_keyword("qqqzz", DEFAULT_CONFIG) == []


class TestMetadataMatcher:
    def test_full_attribute_name(self, scale):
        matcher = MetadataMatcher(scale)
        candidates = matcher.match_keyword("monthname", DEFAULT_CONFIG)
        best = candidates[0]
        assert best.kind is MatchKind.ATTRIBUTE
        assert str(best.attribute.ref) == "DimDate.MonthName"
        assert best.confidence == 0.9

    def test_measure_name(self, scale):
        matcher = MetadataMatcher(scale)
        candidates = matcher.match_keyword("revenue", DEFAULT_CONFIG)
        assert candidates[0].kind is MatchKind.MEASURE
        assert candidates[0].measure == "revenue"
        assert candidates[0].confidence == 0.9

    def test_schema_synonyms_resolve(self, scale):
        # SCALE_SYNONYMS maps "month" -> DimDate.MonthName and
        # "sales" -> measure:revenue; both must outrank weaker evidence
        matcher = MetadataMatcher(scale)
        month = matcher.match_keyword("month", DEFAULT_CONFIG)
        assert str(month[0].attribute.ref) == "DimDate.MonthName"
        sales = matcher.match_keyword("sales", DEFAULT_CONFIG)
        assert sales[0].kind is MatchKind.MEASURE
        assert sales[0].measure == "revenue"

    def test_explicit_registry_overrides_schema(self, scale):
        registry = SynonymRegistry({"widget": ["DimProduct.ProductName"]})
        matcher = MetadataMatcher(scale, synonyms=registry)
        candidates = matcher.match_keyword("widget", DEFAULT_CONFIG)
        assert str(candidates[0].attribute.ref) == \
            "DimProduct.ProductName"
        # schema synonyms were replaced, not merged
        assert not any(c.detail.startswith("synonym")
                       for c in matcher.match_keyword("month",
                                                      DEFAULT_CONFIG))

    def test_synonym_to_undeclared_target_is_dropped(self, scale):
        registry = SynonymRegistry({"ghost": ["NoTable.NoColumn"],
                                    "void": ["measure:nope"]})
        matcher = MetadataMatcher(scale, synonyms=registry)
        assert matcher.match_keyword("ghost", DEFAULT_CONFIG) == []
        assert matcher.match_keyword("void", DEFAULT_CONFIG) == []

    def test_table_name_expands_with_low_confidence(self, scale):
        matcher = MetadataMatcher(scale)
        candidates = matcher.match_keyword("product", DEFAULT_CONFIG)
        assert candidates
        # the synonym (0.8) outranks the table expansion (0.5)
        assert candidates[0].confidence > 0.5
        assert any(c.confidence == 0.5 for c in candidates)

    def test_resolve_attributes_best_first(self, scale):
        matcher = MetadataMatcher(scale)
        resolved = matcher.resolve_attributes("month")
        assert resolved
        conf, gb, _why = resolved[0]
        assert str(gb.ref) == "DimDate.MonthName"
        assert conf == max(r[0] for r in resolved)

    def test_unknown_token_resolves_nothing(self, scale):
        matcher = MetadataMatcher(scale)
        assert matcher.resolve_attributes("qqqzz") == []
        assert matcher.match_keyword("qqqzz", DEFAULT_CONFIG) == []


class TestPatternMatcher:
    @pytest.fixture(scope="class")
    def pattern(self, scale):
        return PatternMatcher(MetadataMatcher(scale))

    def test_top_k(self, pattern):
        spans = pattern.scan(["top", "3"])
        assert len(spans) == 1
        assert (spans[0].start, spans[0].stop) == (0, 2)
        modifier = spans[0].candidates[0].modifier
        assert modifier == Modifier(order="desc", limit=3)

    def test_bottom_k(self, pattern):
        spans = pattern.scan(["bottom", "5"])
        assert spans[0].candidates[0].modifier == \
            Modifier(order="asc", limit=5)

    def test_absurd_limit_rejected(self, pattern):
        assert pattern.scan(["top", "100000"]) == []
        assert pattern.scan(["top", "0"]) == []

    @pytest.mark.parametrize("word,order", [
        ("highest", "desc"), ("best", "desc"),
        ("lowest", "asc"), ("cheapest", "asc"),
    ])
    def test_comparatives(self, pattern, word, order):
        spans = pattern.scan([word])
        assert spans[0].candidates[0].modifier.order == order
        assert spans[0].candidates[0].modifier.limit is None

    def test_by_attribute_group_by_hint(self, pattern):
        spans = pattern.scan(["by", "month"])
        assert len(spans) == 1
        gbs = [c.modifier.group_by[0] for c in spans[0].candidates]
        assert any(str(gb.ref) == "DimDate.MonthName" for gb in gbs)

    def test_by_unresolvable_token_not_consumed(self, pattern):
        # "by qqqzz" leaves both tokens to the rest of the chain
        assert pattern.scan(["by", "qqqzz"]) == []

    def test_modifier_merge_first_wins(self):
        first = Modifier(order="desc", limit=3)
        second = Modifier(order="asc", limit=10)
        merged = first.merged(second)
        assert merged.order == "desc"
        assert merged.limit == 3


class TestValidateMatchers:
    def test_default_order_preserved(self):
        assert validate_matchers(["value", "metadata", "pattern"]) == \
            DEFAULT_MATCHERS

    def test_deduplicates(self):
        assert validate_matchers(["value", "value"]) == ("value",)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown matcher"):
            validate_matchers(["value", "bogus"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="must not be empty"):
            validate_matchers([])


class TestMatcherChain:
    def test_value_match_shadows_metadata(self, chain):
        # "December" is a cell value: metadata must not even be probed
        outcome = chain.match(["December"], DEFAULT_CONFIG)
        assert len(outcome.slots) == 1
        assert outcome.slots[0].matcher == "value"
        assert outcome.counters["metadata.candidates"] == 0

    def test_metadata_fallback_when_no_cell_hit(self, chain):
        outcome = chain.match(["month"], DEFAULT_CONFIG)
        assert outcome.slots[0].matcher == "metadata"
        assert outcome.counters["value.candidates"] == 0
        assert outcome.counters["metadata.accepted"] == 1

    def test_pattern_claims_tokens_first(self, chain):
        outcome = chain.match(["top", "3", "December"], DEFAULT_CONFIG)
        assert [slot.matcher for slot in outcome.slots] == \
            ["pattern", "value"]
        assert outcome.slots[0].keywords == ("top", "3")

    def test_slots_keep_token_order(self, chain):
        outcome = chain.match(["December", "by", "month"],
                              DEFAULT_CONFIG)
        assert [slot.matcher for slot in outcome.slots] == \
            ["value", "pattern"]

    def test_unmatched_keyword_reported(self, chain):
        outcome = chain.match(["qqqzz"], DEFAULT_CONFIG)
        assert outcome.slots == []
        assert outcome.unmatched == ("qqqzz",)

    def test_stopword_skipped_not_unmatched(self, chain):
        outcome = chain.match(["the", "December"], DEFAULT_CONFIG)
        assert outcome.skipped == ("the",)
        assert outcome.unmatched == ()

    def test_disabled_matchers_do_not_run(self, chain):
        outcome = chain.match(["month", "top", "3"], DEFAULT_CONFIG,
                              matchers=("value",))
        assert outcome.slots == []
        assert set(outcome.unmatched) == {"month", "top", "3"}
        assert "metadata.candidates" not in outcome.counters
