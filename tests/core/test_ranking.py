"""Star-net ranking: the SCORE formula and its Figure 4 variants."""

import math

import pytest

from repro.core import (
    HitGroup,
    RankingMethod,
    Ray,
    StarNet,
    rank_candidates,
    score_star_net,
)
from repro.textindex import SearchHit
from repro.warehouse import EMPTY_PATH


def make_net(*groups):
    """A star net over fact 'F' with the given (scores, raw_scores) groups."""
    rays = []
    for i, (scores, raws) in enumerate(groups):
        hits = tuple(
            SearchHit("T", f"A{i}", f"v{j}", s, retrieval_score=r)
            for j, (s, r) in enumerate(zip(scores, raws))
        )
        rays.append(Ray(HitGroup("T", f"A{i}", hits, (f"k{i}",)),
                        EMPTY_PATH, None))
    return StarNet("F", tuple(rays))


class TestStandardFormula:
    def test_single_group_single_hit(self):
        net = make_net(([2.0], [1.0]))
        # avg / (1 + ln 1) / |SN|^2 = 2.0
        assert score_star_net(net) == pytest.approx(2.0)

    def test_group_size_normalization(self):
        many = make_net(([2.0] * 5, [1.0] * 5))
        one = make_net(([2.0], [1.0]))
        assert score_star_net(many) == pytest.approx(
            2.0 / (1 + math.log(5)))
        assert score_star_net(one) > score_star_net(many)

    def test_group_number_normalization(self):
        """One merged group beats two groups of the same per-hit score."""
        merged = make_net(([2.0], [1.0]))
        split = make_net(([2.0], [1.0]), ([2.0], [1.0]))
        assert score_star_net(merged) > score_star_net(split)

    def test_empty_net(self):
        assert score_star_net(StarNet("F", ())) == 0.0


class TestVariants:
    def test_no_size_norm_ignores_group_size(self):
        many = make_net(([2.0] * 5, [1.0] * 5))
        one = make_net(([2.0], [1.0]))
        method = RankingMethod.NO_GROUP_SIZE_NORM
        assert score_star_net(many, method) == \
            pytest.approx(score_star_net(one, method))

    def test_no_number_norm_prefers_more_groups(self):
        merged = make_net(([2.0], [1.0]))
        split = make_net(([2.0], [1.0]), ([2.0], [1.0]))
        method = RankingMethod.NO_GROUP_NUMBER_NORM
        assert score_star_net(split, method) > \
            score_star_net(merged, method)

    def test_baseline_uses_raw_scores(self):
        net = make_net(([10.0], [1.0]))
        assert score_star_net(net, RankingMethod.BASELINE) == 1.0

    def test_baseline_ignores_groups(self):
        one_group = make_net(([1.0, 3.0], [1.0, 3.0]))
        two_groups = make_net(([1.0], [1.0]), ([3.0], [3.0]))
        method = RankingMethod.BASELINE
        assert score_star_net(one_group, method) == \
            pytest.approx(score_star_net(two_groups, method))


class TestRankCandidates:
    def test_sorted_best_first(self):
        nets = [make_net(([1.0], [1.0])), make_net(([5.0], [5.0]))]
        ranked = rank_candidates(nets)
        assert ranked[0].score >= ranked[1].score
        assert ranked[0].star_net is nets[1]

    def test_deterministic_tie_break(self):
        nets = [make_net(([1.0], [1.0])) for _ in range(3)]
        first = rank_candidates(nets)
        second = rank_candidates(list(reversed(nets)))
        assert [s.score for s in first] == [s.score for s in second]


class TestOnRealQueries:
    def test_san_jose_beats_san_antonio_jose(self, online_session):
        """§4.4's canonical example: the phrase-merged city outranks the
        San-Antonio-city + Jose-first-name combination."""
        ranked = online_session.differentiate("San Jose", limit=10)
        top_values = ranked[0].star_net.rays[0].hit_group.values
        assert top_values == ("San Jose",)
        assert ranked[0].star_net.size == 1


class TestJoinSizeMethod:
    """The DISCOVER-style related-work heuristic."""

    def test_smaller_network_wins(self):
        small = make_net(([0.1], [0.1]))
        big = make_net(([9.0], [9.0]), ([9.0], [9.0]))
        method = RankingMethod.JOIN_SIZE
        assert score_star_net(small, method) > score_star_net(big, method)

    def test_ignores_text_scores_entirely(self):
        low = make_net(([0.01], [0.01]))
        high = make_net(([99.0], [99.0]))
        method = RankingMethod.JOIN_SIZE
        assert score_star_net(low, method) == \
            pytest.approx(score_star_net(high, method))

    def test_usable_in_evaluation(self, online_session):
        from repro.datasets import AW_ONLINE_QUERIES
        from repro.evalkit import evaluate_ranking

        evaluation = evaluate_ranking(
            online_session, AW_ONLINE_QUERIES[:10],
            methods=[RankingMethod.STANDARD, RankingMethod.JOIN_SIZE])
        standard = evaluation.satisfied_at(RankingMethod.STANDARD, 1)
        join_size = evaluation.satisfied_at(RankingMethod.JOIN_SIZE, 1)
        assert standard >= join_size
