"""Numerical domain bucketization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Interval,
    bucket_series,
    distinct_value_buckets,
    equal_width,
)


class TestInterval:
    def test_half_open(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.0)
        assert not iv.contains(1.0)

    def test_closed_right(self):
        iv = Interval(0.0, 1.0, closed_right=True)
        assert iv.contains(1.0)

    def test_str(self):
        assert str(Interval(0.0, 1.0)) == "[0, 1)"
        assert str(Interval(0.0, 1.0, True)) == "[0, 1]"


class TestEqualWidth:
    def test_count_and_coverage(self):
        buckets = equal_width(0.0, 10.0, 5)
        assert len(buckets) == 5
        assert buckets.intervals[0].low == 0.0
        assert buckets.intervals[-1].high == 10.0
        assert buckets.intervals[-1].closed_right

    def test_assign(self):
        buckets = equal_width(0.0, 10.0, 5)
        assert buckets.assign(0.0) == 0
        assert buckets.assign(2.0) == 1
        assert buckets.assign(10.0) == 4

    def test_outside_domain(self):
        buckets = equal_width(0.0, 10.0, 5)
        assert buckets.assign(-0.1) is None
        assert buckets.assign(10.1) is None

    def test_degenerate_domain(self):
        buckets = equal_width(3.0, 3.0, 10)
        assert len(buckets) == 1
        assert buckets.assign(3.0) == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            equal_width(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            equal_width(1.0, 0.0, 3)


class TestDistinctValueBuckets:
    def test_each_value_isolated(self):
        buckets = distinct_value_buckets([1.0, 5.0, 3.0, 5.0])
        assert len(buckets) == 3
        assert buckets.assign(1.0) == 0
        assert buckets.assign(3.0) == 1
        assert buckets.assign(5.0) == 2

    def test_values_between_distincts_fall_left(self):
        buckets = distinct_value_buckets([1.0, 5.0])
        assert buckets.assign(3.0) == 0

    def test_single_value(self):
        buckets = distinct_value_buckets([7.0])
        assert len(buckets) == 1
        assert buckets.assign(7.0) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distinct_value_buckets([])


class TestBucketSeries:
    def test_sums_weights(self):
        buckets = equal_width(0.0, 10.0, 2)
        series = bucket_series([1.0, 2.0, 8.0], [10.0, 20.0, 5.0], buckets)
        assert series == [30.0, 5.0]

    def test_skips_none_and_outside(self):
        buckets = equal_width(0.0, 10.0, 2)
        series = bucket_series([None, 99.0, 1.0], [1.0, 1.0, 1.0], buckets)
        assert series == [1.0, 0.0]


values = st.lists(st.floats(-100, 100), min_size=1, max_size=40)


class TestProperties:
    @given(vals=values, n=st.integers(1, 20))
    @settings(max_examples=120, deadline=None)
    def test_equal_width_assign_consistent_with_contains(self, vals, n):
        lo, hi = min(vals), max(vals)
        buckets = equal_width(lo, hi, n)
        for v in vals:
            idx = buckets.assign(v)
            assert idx is not None
            assert buckets.intervals[idx].contains(v)

    @given(vals=values, n=st.integers(1, 20))
    @settings(max_examples=120, deadline=None)
    def test_mass_preserved_inside_domain(self, vals, n):
        lo, hi = min(vals), max(vals)
        buckets = equal_width(lo, hi, n)
        series = bucket_series(vals, [1.0] * len(vals), buckets)
        assert sum(series) == pytest.approx(len(vals))

    @given(vals=values)
    @settings(max_examples=120, deadline=None)
    def test_distinct_buckets_cover_all_values(self, vals):
        buckets = distinct_value_buckets(vals)
        for v in vals:
            assert buckets.assign(v) is not None
