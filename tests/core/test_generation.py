"""Candidate star-net generation (Algorithm 1)."""


from repro.core import (
    GenerationConfig,
    generate_candidates,
    generate_star_seeds,
    split_keywords,
    valid_ray_paths,
)


class TestSplitKeywords:
    def test_basic(self):
        assert split_keywords("Columbus LCD") == ["Columbus", "LCD"]

    def test_extra_whitespace(self):
        assert split_keywords("  a   b ") == ["a", "b"]

    def test_empty(self):
        assert split_keywords("") == []


class TestValidRayPaths:
    def test_fact_table_hit_is_empty_path(self, ebiz):
        options = valid_ray_paths(ebiz, "TRANSITEM", 5)
        assert len(options) == 1
        path, dim = options[0]
        assert not path.steps and dim is None

    def test_shared_table_has_multiple_dimensions(self, ebiz):
        options = valid_ray_paths(ebiz, "LOCATION", 5)
        dims = [dim for _p, dim in options]
        assert dims.count("Customer") == 2  # buyer + seller
        assert dims.count("Store") == 1

    def test_paths_end_at_fact(self, ebiz):
        for path, _dim in valid_ray_paths(ebiz, "PGROUP", 5):
            assert path.target == "TRANSITEM"

    def test_cross_dimension_paths_rejected(self, ebiz):
        # every returned path must be attributable to a single dimension
        for _path, dim in valid_ray_paths(ebiz, "LOCATION", 6):
            assert dim in ("Customer", "Store")


class TestSeeds:
    def test_one_seed_per_hit_group_combo(self, ebiz_session):
        seeds = generate_star_seeds(ebiz_session.schema, ebiz_session.index,
                                    "Columbus")
        domains = {s.hit_groups[0].domain for s in seeds}
        assert ("LOCATION", "City") in domains
        assert ("HOLIDAY", "Event") in domains

    def test_phrase_merge_applied(self, ebiz_session):
        seeds = generate_star_seeds(ebiz_session.schema, ebiz_session.index,
                                    "San Jose")
        merged = [s for s in seeds if len(s.hit_groups) == 1
                  and s.hit_groups[0].values == ("San Jose",)]
        assert merged

    def test_unmatched_keyword_fails_query(self, ebiz_session):
        assert generate_star_seeds(ebiz_session.schema, ebiz_session.index,
                                   "Columbus qqqqzz") == []

    def test_unmatched_keyword_tolerated_when_configured(self, ebiz_session):
        config = GenerationConfig(require_all_keywords=False)
        seeds = generate_star_seeds(ebiz_session.schema, ebiz_session.index,
                                    "Columbus qqqqzz", config)
        assert seeds

    def test_stopword_keywords_skipped(self, ebiz_session):
        with_stop = generate_star_seeds(ebiz_session.schema,
                                        ebiz_session.index, "the Columbus")
        without = generate_star_seeds(ebiz_session.schema,
                                      ebiz_session.index, "Columbus")
        assert {tuple(g.domain for g in s.hit_groups) for s in with_stop} \
            == {tuple(g.domain for g in s.hit_groups) for s in without}

    def test_hits_rescored_against_full_query(self, ebiz_session):
        seeds = generate_star_seeds(ebiz_session.schema, ebiz_session.index,
                                    "Columbus LCD")
        for seed in seeds:
            for group in seed.hit_groups:
                for hit in group.hits:
                    assert hit.retrieval_score is not None


class TestCandidates:
    def test_columbus_lcd_interpretations(self, ebiz_session):
        """Example 3.1: the ambiguity fan-out is fully enumerated."""
        candidates = generate_candidates(ebiz_session.schema,
                                         ebiz_session.index, "Columbus LCD")
        city_paths = {
            c.rays[0].path_to_fact.fk_names
            for c in candidates
            if c.rays[0].hit_group.domain == ("LOCATION", "City")
        }
        # store, buyer, and seller routes must all appear
        assert ("fk_store_loc", "fk_trans_store", "fk_item_trans") \
            in {tuple(reversed(p)) for p in city_paths} or \
            any("fk_trans_store" in p for p in city_paths)
        assert any("fk_trans_buyer" in p for p in city_paths)
        assert any("fk_trans_seller" in p for p in city_paths)

    def test_every_candidate_contains_fact(self, ebiz_session):
        candidates = generate_candidates(ebiz_session.schema,
                                         ebiz_session.index, "Columbus LCD")
        for candidate in candidates:
            assert candidate.fact_table == "TRANSITEM"
            for ray in candidate.rays:
                if ray.path_to_fact.steps:
                    assert ray.path_to_fact.target == "TRANSITEM"

    def test_candidates_unique(self, ebiz_session):
        candidates = generate_candidates(ebiz_session.schema,
                                         ebiz_session.index, "Columbus LCD")
        keys = [
            tuple(sorted((r.hit_group.domain, r.hit_group.values,
                          r.path_to_fact.fk_names) for r in c.rays))
            for c in candidates
        ]
        assert len(keys) == len(set(keys))

    def test_max_candidates_cap(self, ebiz_session):
        config = GenerationConfig(max_candidates=3)
        candidates = generate_candidates(ebiz_session.schema,
                                         ebiz_session.index,
                                         "Columbus LCD", config)
        assert len(candidates) == 3

    def test_no_hits_no_candidates(self, ebiz_session):
        assert generate_candidates(ebiz_session.schema, ebiz_session.index,
                                   "qqqqzz") == []
