"""StarSchema metadata: dimensions, hierarchies, resolution caches."""

import pytest

from repro.relational.errors import SchemaError
from repro.warehouse import AttributeRef


class TestLookups:
    def test_dimension_by_name(self, aw_online):
        assert aw_online.dimension("Product").name == "Product"

    def test_unknown_dimension(self, aw_online):
        with pytest.raises(SchemaError):
            aw_online.dimension("Nope")

    def test_dimensions_of_table(self, aw_online):
        dims = aw_online.dimensions_of_table("DimGeography")
        assert [d.name for d in dims] == ["Customer"]

    def test_shared_table_in_two_dimensions(self, ebiz):
        dims = {d.name for d in ebiz.dimensions_of_table("LOCATION")}
        assert dims == {"Store", "Customer"}

    def test_groupby_attribute(self, aw_online):
        gb = aw_online.groupby_attribute("DimProduct", "DealerPrice")
        assert gb.is_numerical

    def test_groupby_attribute_missing(self, aw_online):
        with pytest.raises(SchemaError):
            aw_online.groupby_attribute("DimProduct", "Nope")


class TestHierarchyPosition:
    def test_mid_level(self, aw_online):
        ref = AttributeRef("DimProductSubcategory", "ProductSubcategoryName")
        dim, hierarchy, idx = aw_online.hierarchy_position(ref)
        assert dim.name == "Product"
        assert idx == 1

    def test_top_level(self, aw_online):
        ref = AttributeRef("DimProductCategory", "ProductCategoryName")
        _dim, hierarchy, idx = aw_online.hierarchy_position(ref)
        assert idx == len(hierarchy.levels) - 1

    def test_not_a_level(self, aw_online):
        assert aw_online.hierarchy_position(
            AttributeRef("DimProduct", "Color")) is None


class TestParentMap:
    def test_cross_table_mapping(self, aw_online):
        dim = aw_online.dimension("Product")
        hierarchy = dim.hierarchies[0]
        mapping = aw_online.parent_map(hierarchy, 1)  # subcat -> category
        assert mapping["Mountain Bikes"] == "Bikes"
        assert mapping["Helmets"] == "Accessories"

    def test_same_table_mapping(self, aw_online):
        dim = aw_online.dimension("Customer")
        hierarchy = dim.hierarchies[0]
        mapping = aw_online.parent_map(hierarchy, 0)  # city -> state
        assert mapping["San Jose"] == "California"

    def test_top_level_has_no_parent(self, aw_online):
        dim = aw_online.dimension("Customer")
        hierarchy = dim.hierarchies[0]
        with pytest.raises(SchemaError):
            aw_online.parent_map(hierarchy, len(hierarchy.levels) - 1)

    def test_cached(self, aw_online):
        dim = aw_online.dimension("Product")
        hierarchy = dim.hierarchies[0]
        assert aw_online.parent_map(hierarchy, 1) is \
            aw_online.parent_map(hierarchy, 1)


class TestResolution:
    def test_fact_vector_length(self, aw_online):
        gb = aw_online.groupby_attribute("DimProductCategory",
                                         "ProductCategoryName")
        vector = aw_online.groupby_vector(gb)
        assert len(vector) == aw_online.num_fact_rows

    def test_fact_vector_values(self, aw_online):
        gb = aw_online.groupby_attribute("DimProductCategory",
                                         "ProductCategoryName")
        values = set(aw_online.groupby_vector(gb))
        assert values <= {"Bikes", "Components", "Clothing", "Accessories"}

    def test_fact_vector_cached(self, aw_online):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        assert aw_online.groupby_vector(gb) is aw_online.groupby_vector(gb)

    def test_measure_vector(self, aw_online):
        vector = aw_online.measure_vector("revenue")
        assert len(vector) == aw_online.num_fact_rows
        assert all(v > 0 for v in vector)

    def test_resolve_across_one_to_many_rejected(self, aw_online):
        gb = aw_online.groupby_attribute("DimGeography",
                                         "StateProvinceName")
        reversed_path = gb.path_from_fact.reversed()
        with pytest.raises(SchemaError):
            aw_online.resolve_column("DimGeography", reversed_path,
                                     "UnitPrice")


class TestValidation:
    def test_counts(self, aw_online, aw_reseller):
        # the shape statistics DESIGN.md promises
        assert len(aw_online.database.table_names) == 10
        assert len(aw_online.dimensions) == 6
        assert len(aw_reseller.database.table_names) == 13
        assert len(aw_reseller.dimensions) == 7

    def test_hierarchical_dimension_counts(self, aw_online, aw_reseller):
        assert sum(d.is_hierarchical for d in aw_online.dimensions) >= 3
        assert sum(d.is_hierarchical for d in aw_reseller.dimensions) >= 4

    def test_searchable_domains(self, aw_online, aw_reseller):
        for schema in (aw_online, aw_reseller):
            domains = sum(len(cols) for cols in schema.searchable.values())
            assert domains > 20
