"""Property tests: join-path enumeration cross-checked against networkx.

Random FK structures (including parallel edges) are generated with
hypothesis; our enumeration must find exactly the simple paths that
``networkx.all_simple_edge_paths`` finds on the equivalent undirected
multigraph.
"""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.relational import Database, Table, integer
from repro.warehouse import SchemaGraph


def build_random_db(edge_spec: list[tuple[int, int]], num_tables: int):
    """A database with ``num_tables`` tables and one FK per spec pair
    (parallel edges allowed via duplicate pairs)."""
    db = Database("Rand")
    for i in range(num_tables):
        db.add_table(Table(
            f"T{i}",
            [integer("Id", nullable=False)] + [
                integer(f"Ref{j}") for j in range(len(edge_spec))
            ],
            primary_key="Id",
        ))
    for idx, (child, parent) in enumerate(edge_spec):
        db.add_foreign_key(f"fk{idx}", f"T{child}", f"Ref{idx}",
                           f"T{parent}", "Id")
    return db


edges = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 4)).filter(
        lambda e: e[0] != e[1]),
    min_size=1, max_size=8,
)


@given(edge_spec=edges)
@settings(max_examples=80, deadline=None)
def test_join_paths_match_networkx(edge_spec):
    num_tables = 5
    db = build_random_db(edge_spec, num_tables)
    graph = SchemaGraph(db)

    multigraph = nx.MultiGraph()
    multigraph.add_nodes_from(f"T{i}" for i in range(num_tables))
    for idx, (child, parent) in enumerate(edge_spec):
        multigraph.add_edge(f"T{child}", f"T{parent}", key=f"fk{idx}")

    source, target = "T0", "T1"
    ours = {
        path.fk_names
        for path in graph.join_paths(source, target, max_length=6)
        if path.steps
    }
    theirs = {
        tuple(key for _u, _v, key in path)
        for path in nx.all_simple_edge_paths(multigraph, source, target,
                                             cutoff=6)
    }
    assert ours == theirs


@given(edge_spec=edges)
@settings(max_examples=60, deadline=None)
def test_paths_are_well_formed(edge_spec):
    db = build_random_db(edge_spec, 5)
    graph = SchemaGraph(db)
    for path in graph.join_paths("T0", "T2", max_length=6):
        if not path.steps:
            continue
        assert path.source == "T0"
        assert path.target == "T2"
        # steps are chained
        for left, right in zip(path.steps, path.steps[1:]):
            assert left.target == right.source
        # simple: no repeated tables
        assert len(set(path.tables)) == len(path.tables)
