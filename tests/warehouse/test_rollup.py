"""Star-join evaluation primitives and hierarchy generalisation."""

import pytest

from repro.warehouse import (
    AttributeRef,
    generalize_values,
    select_rows_by_values,
    slice_facts,
)


class TestSelectRows:
    def test_matching_rows(self, aw_online):
        ref = AttributeRef("DimGeography", "StateProvinceName")
        rows = select_rows_by_values(aw_online, ref, ["California"])
        table = aw_online.database.table("DimGeography")
        assert rows
        for rid in rows:
            assert table.value(rid, "StateProvinceName") == "California"

    def test_no_match(self, aw_online):
        ref = AttributeRef("DimGeography", "City")
        assert select_rows_by_values(aw_online, ref, ["Atlantis"]) == []


class TestSliceFacts:
    def test_semi_join_chain(self, aw_online):
        schema = aw_online
        ref = AttributeRef("DimProductSubcategory", "ProductSubcategoryName")
        rows = select_rows_by_values(schema, ref, ["Mountain Bikes"])
        gb = schema.groupby_attribute("DimProductSubcategory",
                                      "ProductSubcategoryName")
        path = gb.path_from_fact.reversed()
        facts = slice_facts(schema, "DimProductSubcategory", rows, path)
        # cross-check against the cached fact vector
        vector = schema.groupby_vector(gb)
        want = {r for r, v in enumerate(vector) if v == "Mountain Bikes"}
        assert facts == want

    def test_empty_selection_empty_facts(self, aw_online):
        gb = aw_online.groupby_attribute("DimProductSubcategory",
                                         "ProductSubcategoryName")
        path = gb.path_from_fact.reversed()
        assert slice_facts(aw_online, "DimProductSubcategory", [],
                           path) == set()

    def test_wrong_start_rejected(self, aw_online):
        gb = aw_online.groupby_attribute("DimProductSubcategory",
                                         "ProductSubcategoryName")
        path = gb.path_from_fact.reversed()
        with pytest.raises(ValueError):
            slice_facts(aw_online, "DimGeography", [0], path)

    def test_empty_path_from_fact_only(self, aw_online):
        from repro.warehouse import EMPTY_PATH
        facts = slice_facts(aw_online, aw_online.fact_table, [1, 2, 3],
                            EMPTY_PATH)
        assert facts == {1, 2, 3}
        with pytest.raises(ValueError):
            slice_facts(aw_online, "DimGeography", [0], EMPTY_PATH)


class TestGeneralizeValues:
    def test_city_to_state(self, aw_online):
        ref = AttributeRef("DimGeography", "City")
        result = generalize_values(aw_online, ref, ["San Jose", "Seattle"])
        assert result is not None
        parent_ref, parents = result
        assert parent_ref == AttributeRef("DimGeography",
                                          "StateProvinceName")
        assert parents == {"California", "Washington"}

    def test_subcategory_to_category_cross_table(self, aw_online):
        ref = AttributeRef("DimProductSubcategory",
                           "ProductSubcategoryName")
        result = generalize_values(aw_online, ref,
                                   ["Mountain Bikes", "Helmets"])
        parent_ref, parents = result
        assert parent_ref.table == "DimProductCategory"
        assert parents == {"Bikes", "Accessories"}

    def test_top_level_returns_none(self, aw_online):
        ref = AttributeRef("DimProductCategory", "ProductCategoryName")
        assert generalize_values(aw_online, ref, ["Bikes"]) is None

    def test_non_hierarchy_attribute_returns_none(self, aw_online):
        ref = AttributeRef("DimProduct", "Color")
        assert generalize_values(aw_online, ref, ["Black"]) is None

    def test_unknown_values_return_none(self, aw_online):
        ref = AttributeRef("DimGeography", "City")
        assert generalize_values(aw_online, ref, ["Atlantis"]) is None
