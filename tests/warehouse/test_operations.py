"""OLAP navigation operations: slice, dice, drill-down, roll-up, pivot."""

import pytest

from repro.warehouse import Subspace
from repro.warehouse.operations import (
    dice,
    drill_down,
    pivot,
    roll_up,
    slice_,
)


@pytest.fixture(scope="module")
def full(aw_online):
    return Subspace.full(aw_online)


class TestSlice:
    def test_slice_restricts(self, aw_online, full):
        gb = aw_online.groupby_attribute("DimProductCategory",
                                         "ProductCategoryName")
        bikes = slice_(full, gb, "Bikes")
        assert 0 < len(bikes) < len(full)
        assert bikes.domain(gb) == ["Bikes"]

    def test_slice_no_match_empty(self, aw_online, full):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        assert slice_(full, gb, "Chartreuse").is_empty

    def test_slices_partition_the_space(self, aw_online, full):
        gb = aw_online.groupby_attribute("DimProductCategory",
                                         "ProductCategoryName")
        total = sum(len(slice_(full, gb, v)) for v in full.domain(gb))
        assert total == len(full)  # category is never NULL


class TestDice:
    def test_multi_attribute(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        color = aw_online.groupby_attribute("DimProduct", "Color")
        diced = dice(full, {cat: ["Bikes"], color: ["Black", "Silver"]})
        assert diced.domain(cat) == ["Bikes"]
        assert set(diced.domain(color)) <= {"Black", "Silver"}

    def test_dice_equals_nested_slices(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        color = aw_online.groupby_attribute("DimProduct", "Color")
        diced = dice(full, {cat: ["Bikes"], color: ["Black"]})
        nested = slice_(slice_(full, cat, "Bikes"), color, "Black")
        assert diced.fact_rows == nested.fact_rows


class TestDrillDown:
    def test_descends_one_level(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        sliced, finer = drill_down(full, cat, "Bikes")
        assert finer is not None
        assert finer.ref.column == "ProductSubcategoryName"
        subs = set(sliced.domain(finer))
        assert subs == {"Mountain Bikes", "Road Bikes", "Touring Bikes"}

    def test_bottom_level_has_no_finer(self, aw_online, full):
        city = aw_online.groupby_attribute("DimGeography", "City")
        sliced, finer = drill_down(full, city, "Seattle")
        assert finer is None
        assert not sliced.is_empty

    def test_non_hierarchy_attribute(self, aw_online, full):
        color = aw_online.groupby_attribute("DimProduct", "Color")
        _sliced, finer = drill_down(full, color, "Black")
        assert finer is None


class TestRollUp:
    def test_ascends_one_level(self, aw_online, full):
        city = aw_online.groupby_attribute("DimGeography", "City")
        coarser = roll_up(full, city)
        assert coarser.ref.column == "StateProvinceName"

    def test_top_level_returns_none(self, aw_online, full):
        country = aw_online.groupby_attribute("DimGeography",
                                              "CountryRegionName")
        assert roll_up(full, country) is None

    def test_roll_up_then_drill_down_roundtrip(self, aw_online, full):
        city = aw_online.groupby_attribute("DimGeography", "City")
        state = roll_up(full, city)
        _sliced, finer = drill_down(full, state, "California")
        assert finer.ref == city.ref


class TestPivot:
    def test_cross_tab_totals(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        quarter = aw_online.groupby_attribute("DimDate", "CalendarQuarter")
        table = pivot(full, cat, quarter, "revenue")
        assert set(table.column_values) == {"Q1", "Q2", "Q3", "Q4"}
        grand_total = sum(table.row_totals().values())
        assert grand_total == pytest.approx(full.aggregate("revenue"))
        assert sum(table.column_totals().values()) == \
            pytest.approx(grand_total)

    def test_cells_match_dice(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        quarter = aw_online.groupby_attribute("DimDate", "CalendarQuarter")
        table = pivot(full, cat, quarter, "revenue")
        diced = dice(full, {cat: ["Bikes"], quarter: ["Q2"]})
        assert table.cell("Bikes", "Q2") == pytest.approx(
            diced.aggregate("revenue"))

    def test_empty_cell_is_zero(self, aw_online, full):
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        quarter = aw_online.groupby_attribute("DimDate", "CalendarQuarter")
        table = pivot(full, cat, quarter, "revenue")
        assert table.cell("Nope", "Q1") == 0.0
