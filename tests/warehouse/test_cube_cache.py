"""Aggregate cache semantics."""

import pytest

from repro.warehouse import Subspace
from repro.warehouse.cube_cache import AggregateCache


@pytest.fixture
def cache(aw_online):
    return AggregateCache(aw_online)


@pytest.fixture(scope="module")
def bikes(aw_online):
    gb = aw_online.groupby_attribute("DimProductCategory",
                                     "ProductCategoryName")
    vector = aw_online.groupby_vector(gb)
    rows = [r for r, v in enumerate(vector) if v == "Bikes"]
    return Subspace.of(aw_online, rows, label="Bikes")


class TestMemoisation:
    def test_results_match_uncached(self, aw_online, cache, bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        want = bikes.partition_aggregates(gb, "revenue")
        got = cache.partition_aggregates(bikes, gb, "revenue")
        assert got == want

    def test_second_call_hits(self, aw_online, cache, bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        cache.partition_aggregates(bikes, gb, "revenue")
        assert cache.stats.hits == 0
        cache.partition_aggregates(bikes, gb, "revenue")
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_domain_distinguishes_entries(self, aw_online, cache, bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        cache.partition_aggregates(bikes, gb, "revenue")
        cache.partition_aggregates(bikes, gb, "revenue",
                                   domain=["Black"])
        assert cache.stats.misses == 2

    def test_different_subspaces_distinguished(self, aw_online, cache,
                                               bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        cache.partition_aggregates(bikes, gb, "revenue")
        smaller = Subspace.of(aw_online, bikes.fact_rows[:10])
        cache.partition_aggregates(smaller, gb, "revenue")
        assert cache.stats.misses == 2

    def test_returned_dict_is_a_copy(self, aw_online, cache, bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        first = cache.partition_aggregates(bikes, gb, "revenue")
        first["Black"] = -1.0
        second = cache.partition_aggregates(bikes, gb, "revenue")
        assert second["Black"] != -1.0


class TestPrecompute:
    def test_full_space_materialisation(self, aw_online, cache):
        count = cache.precompute_full_space("revenue")
        assert count == sum(
            1 for dim in aw_online.dimensions
            for gb in dim.groupbys if not gb.is_numerical
        )
        full = Subspace.full(aw_online)
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        before = cache.stats.hits
        cache.partition_aggregates(full, gb, "revenue")
        assert cache.stats.hits == before + 1


class TestEviction:
    def test_lru_eviction_bounds_size(self, aw_online, bikes):
        cache = AggregateCache(aw_online, max_entries=2)
        gb_color = aw_online.groupby_attribute("DimProduct", "Color")
        gb_model = aw_online.groupby_attribute("DimProduct", "ModelName")
        gb_month = aw_online.groupby_attribute("DimDate", "MonthName")
        cache.partition_aggregates(bikes, gb_color, "revenue")
        cache.partition_aggregates(bikes, gb_model, "revenue")
        assert len(cache) == 2
        cache.partition_aggregates(bikes, gb_month, "revenue")
        assert len(cache) == 2  # LRU entry evicted, size stays bounded
        assert cache.stats.evictions == 1

    def test_lru_evicts_least_recently_used(self, aw_online, bikes):
        cache = AggregateCache(aw_online, max_entries=2)
        gb_color = aw_online.groupby_attribute("DimProduct", "Color")
        gb_model = aw_online.groupby_attribute("DimProduct", "ModelName")
        gb_month = aw_online.groupby_attribute("DimDate", "MonthName")
        cache.partition_aggregates(bikes, gb_color, "revenue")
        cache.partition_aggregates(bikes, gb_model, "revenue")
        # touch color so model becomes the LRU entry
        cache.partition_aggregates(bikes, gb_color, "revenue")
        cache.partition_aggregates(bikes, gb_month, "revenue")
        misses = cache.stats.misses
        cache.partition_aggregates(bikes, gb_color, "revenue")  # still hot
        assert cache.stats.misses == misses
        cache.partition_aggregates(bikes, gb_model, "revenue")  # evicted
        assert cache.stats.misses == misses + 1

    def test_manual_clear(self, aw_online, cache, bikes):
        gb = aw_online.groupby_attribute("DimProduct", "Color")
        cache.partition_aggregates(bikes, gb, "revenue")
        cache.clear()
        assert len(cache) == 0
        cache.partition_aggregates(bikes, gb, "revenue")
        assert cache.stats.misses == 2
