"""Schema quality checks."""

import pytest

from repro.relational import Database, Table, integer, text
from repro.warehouse import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Hierarchy,
    Measure,
    StarSchema,
    path_from_fk_names,
)
from repro.relational.expressions import Col
from repro.warehouse.validate import validate_schema


class TestCleanSchemas:
    def test_generated_warehouses_validate(self, aw_online, aw_reseller,
                                           ebiz):
        for schema in (aw_online, aw_reseller, ebiz):
            assert validate_schema(schema) == []


def broken_schema(*, bad_hierarchy=False, bad_searchable=False,
                  bad_path=False, empty_dimension=False):
    db = Database("Broken")
    dim_table = Table("Dim", [
        integer("DimKey", nullable=False),
        text("Name"),
        text("Parent"),
        integer("Number"),
    ], primary_key="DimKey")
    rows = [
        {"DimKey": 1, "Name": "a", "Parent": "P1", "Number": 1},
        {"DimKey": 2, "Name": "b", "Parent": "P1", "Number": 2},
    ]
    if bad_hierarchy:
        # value "a" maps to two different parents
        rows.append({"DimKey": 3, "Name": "a", "Parent": "P2",
                     "Number": 3})
    dim_table.insert_many(rows)
    db.add_table(dim_table)
    fact = Table("Fact", [
        integer("FactKey", nullable=False),
        integer("DimKey"),
        integer("Amount"),
    ], primary_key="FactKey")
    fact.insert_many([{"FactKey": 1, "DimKey": 1, "Amount": 10}])
    db.add_table(fact)
    db.add_foreign_key("fk", "Fact", "DimKey", "Dim", "DimKey")

    good_path = path_from_fk_names(db, "Fact", ["fk"])
    path = good_path.reversed() if bad_path else good_path
    searchable_cols = ["Name", "Number"] if bad_searchable else ["Name"]
    dimensions = [Dimension(
        name="D",
        tables=("Dim",),
        hierarchies=(Hierarchy("H", (
            AttributeRef("Dim", "Name"),
            AttributeRef("Dim", "Parent"),
        )),),
        groupbys=(GroupByAttribute(AttributeRef("Dim", "Name"),
                                   AttributeKind.CATEGORICAL, path),),
    )]
    if empty_dimension:
        dimensions.append(Dimension(name="Empty", tables=("Dim",)))
    return StarSchema(
        database=db, fact_table="Fact", dimensions=dimensions,
        measures=[Measure("amount", Col("Amount"), "sum")],
        searchable={"Dim": searchable_cols},
    )


class TestDetection:
    def test_clean_fixture_is_clean(self):
        assert validate_schema(broken_schema()) == []

    def test_non_functional_hierarchy(self):
        warnings = validate_schema(broken_schema(bad_hierarchy=True))
        assert any("not functional" in w for w in warnings)

    def test_non_text_searchable(self):
        warnings = validate_schema(broken_schema(bad_searchable=True))
        assert any("not text" in w for w in warnings)

    def test_reversed_groupby_path_rejected_at_construction(self):
        """StarSchema refuses mis-rooted paths outright; validate_schema's
        path checks cover schemas assembled by other means."""
        from repro.relational.errors import SchemaError

        with pytest.raises(SchemaError):
            broken_schema(bad_path=True)

    def test_empty_dimension(self):
        warnings = validate_schema(broken_schema(empty_dimension=True))
        assert any("no group-by candidates" in w for w in warnings)

    def test_dangling_fk_detected(self):
        schema = broken_schema()
        schema.database.table("Fact").insert(
            {"FactKey": 2, "DimKey": 99, "Amount": 5})
        warnings = validate_schema(schema)
        assert any("referential integrity" in w for w in warnings)

    def test_integrity_check_optional(self):
        schema = broken_schema()
        schema.database.table("Fact").insert(
            {"FactKey": 2, "DimKey": 99, "Amount": 5})
        assert validate_schema(schema, check_integrity=False) == []
