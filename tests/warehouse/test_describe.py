"""Schema description and statistics."""

from repro.warehouse import describe_schema, schema_statistics


class TestDescribe:
    def test_mentions_every_dimension(self, aw_online):
        text = describe_schema(aw_online)
        for dim in aw_online.dimensions:
            assert f"dimension {dim.name}" in text

    def test_mentions_fact_and_measures(self, aw_online):
        text = describe_schema(aw_online)
        assert "fact table FactInternetSales" in text
        assert "measure revenue" in text

    def test_fact_complex_listed(self, ebiz):
        text = describe_schema(ebiz)
        assert "fact complex: TRANS" in text

    def test_hierarchies_rendered_as_chains(self, aw_online):
        text = describe_schema(aw_online)
        assert ("DimGeography.City -> DimGeography.StateProvinceName -> "
                "DimGeography.CountryRegionName") in text

    def test_searchable_counts(self, aw_online):
        text = describe_schema(aw_online)
        # DimProductCategory: 1 searchable column out of 2
        assert "table DimProductCategory (1/2 searchable" in text


class TestStatistics:
    def test_online_shape(self, aw_online):
        stats = schema_statistics(aw_online)
        assert stats["tables"] == 10
        assert stats["dimensions"] == 6
        assert stats["hierarchical_dimensions"] >= 3
        assert stats["searchable_domains"] > 20
        assert stats["fact_rows"] == aw_online.num_fact_rows

    def test_reseller_shape(self, aw_reseller):
        stats = schema_statistics(aw_reseller)
        assert stats["tables"] == 13
        assert stats["dimensions"] == 7
        assert stats["hierarchical_dimensions"] >= 4

    def test_counts_consistent(self, ebiz):
        stats = schema_statistics(ebiz)
        assert stats["groupby_candidates"] == sum(
            len(d.groupbys) for d in ebiz.dimensions)
        assert stats["foreign_keys"] == len(ebiz.database.foreign_keys)
