"""Materialization tier: lattice roll-ups, maintenance, admission.

The tier's contract is *indistinguishability*: any aggregate it answers
— from an exact view, a lattice roll-up, or after incremental append
maintenance — must equal the direct fact-scan answer (floats to
re-association tolerance).  Parity is checked here property-style across
row subsets, append batches, backends, and budget truncation.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.scale import build_scale
from repro.plan.engine import QueryEngine
from repro.relational.persistence import (
    load_materialized,
    save_materialized,
)
from repro.resilience import Budget
from repro.resilience.budget import budget_scope
from repro.warehouse import MaterializationTier, Subspace

SUPPRESS = [HealthCheck.function_scoped_fixture]

N_FACTS = 4000


def approx_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        math.isclose(a[k], b[k], rel_tol=1e-9, abs_tol=1e-9) for k in a)


@pytest.fixture(scope="module")
def scale():
    """Read-only scale warehouse (mutating tests build their own)."""
    return build_scale(num_facts=N_FACTS, seed=11)


@pytest.fixture()
def fresh_scale():
    return build_scale(num_facts=N_FACTS, seed=11)


def full_rows(schema):
    return tuple(range(schema.num_fact_rows))


# ---------------------------------------------------------------------------
# answering: exact hits and lattice roll-ups
# ---------------------------------------------------------------------------
def test_exact_hit_matches_direct_scan(scale):
    tier = MaterializationTier(scale)
    gb = scale.groupby_attribute("DimProduct", "ProductName")
    tier.precompute("revenue", [gb])
    answer = tier.answer(full_rows(scale), gb, "revenue")
    direct = Subspace.full(scale).partition_aggregates(gb, "revenue")
    assert approx_equal(answer, direct)
    assert tier.stats.hits == 1 and tier.stats.rollup_hits == 0


def test_rollup_answers_coarser_level_from_finer_view(scale):
    tier = MaterializationTier(scale)
    fine = scale.groupby_attribute("DimProduct", "ProductName")
    coarse = scale.groupby_attribute("DimProduct", "CategoryName")
    tier.precompute("revenue", [fine])
    rolled = tier.answer(full_rows(scale), coarse, "revenue")
    direct = Subspace.full(scale).partition_aggregates(coarse, "revenue")
    assert rolled is not None and approx_equal(rolled, direct)
    assert tier.stats.rollup_hits == 1
    # the derived view is registered: the next ask is an exact hit
    tier.answer(full_rows(scale), coarse, "revenue")
    assert tier.stats.hits == 2 and tier.stats.rollup_hits == 1


def test_rollup_refused_across_non_functional_step(scale):
    """January belongs to several years: per-month states cannot be
    re-aggregated into per-year answers, and the tier must refuse."""
    tier = MaterializationTier(scale)
    month = scale.groupby_attribute("DimDate", "MonthName")
    year = scale.groupby_attribute("DimDate", "CalendarYearName")
    tier.precompute("revenue", [month])
    assert tier.answer(full_rows(scale), year, "revenue") is None
    # materialized directly, the coarse level answers fine
    tier.precompute("revenue", [year])
    direct = Subspace.full(scale).partition_aggregates(year, "revenue")
    assert approx_equal(tier.answer(full_rows(scale), year, "revenue"),
                        direct)


def test_rollup_respects_domain_restriction_and_fill(scale):
    tier = MaterializationTier(scale)
    fine = scale.groupby_attribute("DimProduct", "ProductName")
    coarse = scale.groupby_attribute("DimProduct", "CategoryName")
    tier.precompute("revenue", [fine])
    domain = ("Bikes", "NoSuchCategory")
    rolled = tier.answer(full_rows(scale), coarse, "revenue",
                         domain=domain)
    direct = Subspace.full(scale).partition_aggregates(
        coarse, "revenue", domain=domain)
    assert approx_equal(rolled, direct)
    assert rolled["NoSuchCategory"] == direct["NoSuchCategory"]


@given(rows=st.sets(st.integers(0, N_FACTS - 1), min_size=1,
                    max_size=400))
@settings(max_examples=25, deadline=None, suppress_health_check=SUPPRESS)
def test_rowset_scope_parity(scale, rows):
    """Views over arbitrary (subspace-shaped) row sets answer exactly
    like a direct scan of those rows, including derived roll-ups."""
    row_tuple = tuple(sorted(rows))
    tier = MaterializationTier(scale, admit_after=1)
    fine = scale.groupby_attribute("DimProduct", "ProductName")
    coarse = scale.groupby_attribute("DimProduct", "CategoryName")
    tier.note_miss(row_tuple, fine, "revenue", "fp")
    subspace = Subspace(scale, row_tuple, "sample")
    assert approx_equal(
        tier.answer(row_tuple, fine, "revenue"),
        subspace.partition_aggregates(fine, "revenue"))
    assert approx_equal(
        tier.answer(row_tuple, coarse, "revenue"),
        subspace.partition_aggregates(coarse, "revenue"))


# ---------------------------------------------------------------------------
# incremental maintenance
# ---------------------------------------------------------------------------
def append_facts(schema, rng, count):
    fact = schema.database.table("FactScaleSales")
    base = len(fact)
    fact.load_columns({
        "OrderKey": range(base + 1, base + count + 1),
        "ProductKey": [rng.randint(1, 24) for _ in range(count)],
        "DateKey": [20030101 + rng.randint(0, 27) for _ in range(count)],
        "UnitPrice": [round(rng.uniform(1, 50), 2) for _ in range(count)],
        "Quantity": [rng.randint(1, 4) for _ in range(count)],
    })


@given(batches=st.lists(st.integers(1, 300), min_size=1, max_size=4),
       seed=st.integers(0, 2**16))
@settings(max_examples=15, deadline=None)
def test_incremental_refresh_equals_from_scratch(batches, seed):
    """After randomized append batches, a view folded forward delta by
    delta answers exactly like one rebuilt from scratch."""
    schema = build_scale(num_facts=1500, seed=11)
    rng = random.Random(seed)
    tier = MaterializationTier(schema)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    tier.precompute("revenue", [gb])
    for count in batches:
        append_facts(schema, rng, count)
        answer = tier.answer(full_rows(schema), gb, "revenue")
        direct = Subspace.full(schema).partition_aggregates(gb, "revenue")
        assert approx_equal(answer, direct)
    assert tier.stats.refreshes == len(batches)
    assert tier.stats.refreshed_rows == sum(batches)
    assert tier.stats.rebuilds == 0


def test_refresh_cost_is_delta_rows_not_total(fresh_scale):
    schema = fresh_scale
    tier = MaterializationTier(schema)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    tier.precompute("revenue", [gb])
    append_facts(schema, random.Random(3), 37)
    tier.answer(full_rows(schema), gb, "revenue")
    assert tier.stats.refreshed_rows == 37  # not N_FACTS + 37


def test_dimension_mutation_triggers_full_rebuild(fresh_scale):
    """A dimension append can re-map existing fact rows — not foldable —
    so the view rebuilds (and still answers correctly)."""
    schema = fresh_scale
    tier = MaterializationTier(schema)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    tier.precompute("revenue", [gb])
    schema.database.table("DimProduct").insert({
        "ProductKey": 999, "ProductName": "Late Product",
        "Color": "Black", "CategoryName": "Bikes", "ListPrice": 9.99,
    })
    answer = tier.answer(full_rows(schema), gb, "revenue")
    direct = Subspace.full(schema).partition_aggregates(gb, "revenue")
    assert approx_equal(answer, direct)
    assert tier.stats.rebuilds == 1


def test_rowset_views_survive_unrelated_appends(fresh_scale):
    """A frozen row set never includes appended rows, so fact appends
    must not invalidate (or refresh) a rowset-scoped view."""
    schema = fresh_scale
    rows = tuple(range(0, schema.num_fact_rows, 3))
    tier = MaterializationTier(schema, admit_after=1)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    tier.note_miss(rows, gb, "revenue", "fp")
    before = tier.answer(rows, gb, "revenue")
    append_facts(schema, random.Random(5), 50)
    after = tier.answer(rows, gb, "revenue")
    assert approx_equal(before, after)
    assert tier.stats.refreshes == 0 and tier.stats.rebuilds == 0


# ---------------------------------------------------------------------------
# admission policy
# ---------------------------------------------------------------------------
def test_admission_after_k_distinct_fingerprints(scale):
    tier = MaterializationTier(scale, admit_after=2)
    gb = scale.groupby_attribute("DimDate", "CalendarYearName")
    rows = full_rows(scale)
    tier.note_miss(rows, gb, "revenue", "fp-a")
    tier.note_miss(rows, gb, "revenue", "fp-a")  # repeat: not distinct
    assert len(tier) == 0
    tier.note_miss(rows, gb, "revenue", "fp-b")
    assert len(tier) == 1
    assert tier.answer(rows, gb, "revenue") is not None


def test_admission_builds_finest_functional_ancestor(scale):
    """Misses at the coarse level materialize the finest level below it
    (one view then serves the whole hierarchy upward via roll-up)."""
    tier = MaterializationTier(scale, admit_after=1)
    fine = scale.groupby_attribute("DimProduct", "ProductName")
    coarse = scale.groupby_attribute("DimProduct", "CategoryName")
    tier.note_miss(full_rows(scale), coarse, "revenue", "fp")
    assert len(tier) == 1
    # the *fine* level answers as an exact hit — its view was built
    assert tier.answer(full_rows(scale), fine, "revenue") is not None
    assert tier.stats.rollup_hits == 0


def test_lru_eviction_bounds_views(scale):
    tier = MaterializationTier(scale, admit_after=1, max_views=2)
    gbs = [scale.groupby_attribute("DimProduct", "ProductName"),
           scale.groupby_attribute("DimProduct", "Color"),
           scale.groupby_attribute("DimDate", "MonthName")]
    for gb in gbs:
        tier.note_miss(full_rows(scale), gb, "revenue", "fp")
    assert len(tier) == 2
    assert tier.stats.evicted == 1


# ---------------------------------------------------------------------------
# budgets and deadlines
# ---------------------------------------------------------------------------
def test_tier_answers_are_untruncated_under_row_budget(scale):
    """Maintenance and answering never charge the row budget: under a
    budget that would truncate a scan, tier answers keep full fidelity
    (they equal the UNtruncated direct answers)."""
    tier = MaterializationTier(scale)
    gb = scale.groupby_attribute("DimProduct", "ProductName")
    coarse = scale.groupby_attribute("DimProduct", "CategoryName")
    direct = Subspace.full(scale).partition_aggregates(gb, "revenue")
    direct_coarse = Subspace.full(scale).partition_aggregates(
        coarse, "revenue")
    with budget_scope(Budget(max_rows=10)):
        tier.precompute("revenue", [gb])
        assert approx_equal(tier.answer(full_rows(scale), gb, "revenue"),
                            direct)
        assert approx_equal(
            tier.answer(full_rows(scale), coarse, "revenue"),
            direct_coarse)


def test_expired_deadline_skips_admission_without_corruption(scale):
    tier = MaterializationTier(scale, admit_after=1)
    gb = scale.groupby_attribute("DimProduct", "ProductName")
    with budget_scope(Budget(deadline_ms=0.0)):
        tier.note_miss(full_rows(scale), gb, "revenue", "fp")
    assert len(tier) == 0  # build aborted cleanly, no half view
    # a later unconstrained miss retries and succeeds
    tier.note_miss(full_rows(scale), gb, "revenue", "fp-2")
    assert len(tier) == 1
    assert approx_equal(
        tier.answer(full_rows(scale), gb, "revenue"),
        Subspace.full(scale).partition_aggregates(gb, "revenue"))


# ---------------------------------------------------------------------------
# engine integration (both backends)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_engine_tier_parity_and_admission(scale, backend):
    """Through the engine: distinct-fingerprint misses admit a view and
    later (fingerprint-distinct) queries are answered by the tier, equal
    to raw execution on either backend."""
    plain = QueryEngine(scale, backend=backend)
    tiered = QueryEngine(scale, backend=backend, materialize=True)
    try:
        full = Subspace.full(scale)
        gb = scale.groupby_attribute("DimProduct", "ProductName")
        coarse = scale.groupby_attribute("DimProduct", "CategoryName")
        domains = [None, ("Scale Product 001", "Scale Product 002")]
        for domain in domains:  # two distinct fingerprints → admission
            assert approx_equal(
                tiered.subspace_partition_aggregates(
                    full, gb, "revenue", domain=domain),
                plain.subspace_partition_aggregates(
                    full, gb, "revenue", domain=domain))
        assert tiered.tier is not None and len(tiered.tier) >= 1
        # a fresh fingerprint at the coarse level: lattice roll-up, no scan
        assert approx_equal(
            tiered.subspace_partition_aggregates(full, coarse, "revenue"),
            plain.subspace_partition_aggregates(full, coarse, "revenue"))
        assert tiered.tier.stats.rollup_hits >= 1
    finally:
        plain.close()
        tiered.close()


def test_engine_epoch_keys_prevent_stale_results_after_append():
    """Scan/SemiJoin fingerprints do not change when tables grow; the
    epoch-qualified cache keys must stop appends serving stale entries."""
    schema = build_scale(num_facts=1000, seed=11)
    engine = QueryEngine(schema)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    before = engine.subspace_partition_aggregates(
        Subspace.full(schema), gb, "revenue")
    append_facts(schema, random.Random(9), 40)
    after = engine.subspace_partition_aggregates(
        Subspace.full(schema), gb, "revenue")
    direct = Subspace.full(schema).partition_aggregates(gb, "revenue")
    assert approx_equal(after, direct)
    assert not approx_equal(before, after)


def test_shared_empty_tier_instance_is_adopted(scale):
    """Regression: MaterializationTier defines __len__, so an *empty*
    shared tier is falsy — truthiness-based wiring silently dropped the
    service's cross-worker tier.  Identity must decide, not len()."""
    tier = MaterializationTier(scale, admit_after=1)
    engines = [QueryEngine(scale, materialize=tier) for _ in range(2)]
    try:
        assert all(e.tier is tier for e in engines)
        gb = scale.groupby_attribute("DimProduct", "ProductName")
        full = Subspace.full(scale)
        engines[0].subspace_partition_aggregates(full, gb, "revenue")
        assert len(tier) == 1  # admitted via engine 0...
        engines[1].subspace_partition_aggregates(
            full, gb, "revenue", domain=("Scale Product 001",))
        assert tier.stats.hits >= 1  # ...answers engine 1
    finally:
        for engine in engines:
            engine.close()


def test_fused_path_reports_misses_and_hits_tier(scale):
    engine = QueryEngine(scale, materialize=True)
    full = Subspace.full(scale)
    gbs = [scale.groupby_attribute("DimProduct", "ProductName"),
           scale.groupby_attribute("DimDate", "MonthName")]
    engine.multi_partition_aggregates(full, gbs, "revenue")
    assert engine.tier.stats.misses == 2
    # distinct fingerprints for the same attributes: restricted domains
    engine.multi_partition_aggregates(
        full, gbs, "revenue",
        domains=[("Scale Product 001",), ("January",)])
    assert len(engine.tier) >= 2
    fused = engine.multi_partition_aggregates(full, gbs, "revenue",
                                              domains=None)
    plain = QueryEngine(scale)
    expected = plain.multi_partition_aggregates(full, gbs, "revenue")
    for got, want in zip(fused, expected):
        assert approx_equal(got, want)


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def test_persistence_round_trip(scale, tmp_path):
    path = str(tmp_path / "views.db")
    tier = MaterializationTier(scale)
    built = tier.precompute("revenue")
    assert tier.save(path) == built
    warm = MaterializationTier(scale)
    assert warm.load(path) == built
    gb = scale.groupby_attribute("DimProduct", "ProductName")
    assert approx_equal(
        warm.answer(full_rows(scale), gb, "revenue"),
        Subspace.full(scale).partition_aggregates(gb, "revenue"))
    assert warm.stats.restored == built


def test_persistence_skips_rowset_scopes_and_stale_views(scale, tmp_path):
    path = str(tmp_path / "views.db")
    tier = MaterializationTier(scale, admit_after=1)
    rows = tuple(range(100))
    gb = scale.groupby_attribute("DimProduct", "ProductName")
    tier.note_miss(rows, gb, "revenue", "fp")  # rowset-scoped view
    payload = tier.to_payload()
    assert payload["views"] == []  # session artifacts do not persist
    tier.precompute("revenue", [gb])
    save_materialized(path, tier.to_payload())
    # a view whose high-water mark exceeds the live table is skipped
    smaller = build_scale(num_facts=100, seed=11)
    cold = MaterializationTier(smaller)
    assert cold.restore(load_materialized(path)) == 0


def test_load_materialized_absent_table_returns_none(scale, tmp_path):
    from repro.relational.persistence import dump_database

    path = str(tmp_path / "plain.db")
    dump_database(scale.database, path)
    assert load_materialized(path) is None
    assert MaterializationTier(scale).load(path) == 0
