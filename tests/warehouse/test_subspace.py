"""Subspace algebra, aggregation, and partitioning."""

import pytest

from repro.warehouse import Subspace


@pytest.fixture(scope="module")
def spaces(aw_online):
    full = Subspace.full(aw_online)
    half = Subspace.of(aw_online, range(0, aw_online.num_fact_rows, 2),
                       label="even")
    return aw_online, full, half


class TestConstruction:
    def test_of_normalises(self, aw_online):
        subspace = Subspace.of(aw_online, [3, 1, 2, 1])
        assert subspace.fact_rows == (1, 2, 3)

    def test_full(self, spaces):
        schema, full, _half = spaces
        assert len(full) == schema.num_fact_rows

    def test_empty(self, aw_online):
        assert Subspace.of(aw_online, []).is_empty


class TestAlgebra:
    def test_intersect(self, spaces):
        schema, full, half = spaces
        assert full.intersect(half).fact_rows == half.fact_rows

    def test_union(self, spaces):
        schema, full, half = spaces
        assert half.union(full).fact_rows == full.fact_rows

    def test_contains(self, spaces):
        _schema, full, half = spaces
        assert full.contains(half)
        assert not half.contains(full)

    def test_labels_combined(self, spaces):
        _schema, full, half = spaces
        assert "AND" in full.intersect(half).label
        assert "OR" in full.union(half).label


class TestAggregation:
    def test_full_aggregate_is_total(self, spaces):
        schema, full, _half = spaces
        total = sum(schema.measure_vector("revenue"))
        assert full.aggregate("revenue") == pytest.approx(total)

    def test_additivity(self, spaces):
        schema, full, half = spaces
        other = Subspace.of(
            schema, set(full.fact_rows) - set(half.fact_rows))
        assert half.aggregate("revenue") + other.aggregate("revenue") == \
            pytest.approx(full.aggregate("revenue"))

    def test_empty_aggregate_zero(self, aw_online):
        assert Subspace.of(aw_online, []).aggregate("revenue") == 0.0


class TestPartitioning:
    def test_partition_covers_non_null_rows(self, spaces):
        schema, _full, half = spaces
        gb = schema.groupby_attribute("DimProduct", "Color")
        partition = half.partition(gb)
        covered = sorted(r for rows in partition.values() for r in rows)
        values = schema.groupby_vector(gb)
        want = [r for r in half.fact_rows if values[r] is not None]
        assert covered == want

    def test_partition_aggregates_sum_to_total(self, spaces):
        schema, _full, half = spaces
        gb = schema.groupby_attribute("DimProductCategory",
                                      "ProductCategoryName")
        parts = half.partition_aggregates(gb, "revenue")
        assert sum(parts.values()) == pytest.approx(
            half.aggregate("revenue"))

    def test_domain_sorted(self, spaces):
        schema, full, _half = spaces
        gb = schema.groupby_attribute("DimDate", "MonthName")
        domain = full.domain(gb)
        assert domain == sorted(domain)

    def test_fixed_domain_fills_zero(self, spaces):
        schema, _full, half = spaces
        gb = schema.groupby_attribute("DimProduct", "Color")
        parts = half.partition_aggregates(gb, "revenue",
                                          domain=["NoSuchColor"])
        assert parts == {"NoSuchColor": 0.0}

    def test_groupby_values_aligned(self, spaces):
        schema, _full, half = spaces
        gb = schema.groupby_attribute("DimProduct", "Color")
        values = half.groupby_values(gb)
        assert len(values) == len(half)
