"""Property tests: subspace set algebra and aggregation laws."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.warehouse import Subspace

row_sets = st.sets(st.integers(0, 799), max_size=60)

SUPPRESS = [HealthCheck.function_scoped_fixture]


@given(a=row_sets, b=row_sets)
@settings(max_examples=60, deadline=None, suppress_health_check=SUPPRESS)
def test_intersection_commutes(ebiz, a, b):
    sa, sb = Subspace.of(ebiz, a), Subspace.of(ebiz, b)
    assert sa.intersect(sb).fact_rows == sb.intersect(sa).fact_rows
    assert set(sa.intersect(sb).fact_rows) == a & b


@given(a=row_sets, b=row_sets)
@settings(max_examples=60, deadline=None, suppress_health_check=SUPPRESS)
def test_union_commutes(ebiz, a, b):
    sa, sb = Subspace.of(ebiz, a), Subspace.of(ebiz, b)
    assert sa.union(sb).fact_rows == sb.union(sa).fact_rows
    assert set(sa.union(sb).fact_rows) == a | b


@given(a=row_sets, b=row_sets)
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
def test_inclusion_exclusion_on_aggregates(ebiz, a, b):
    """sum(A) + sum(B) == sum(A|B) + sum(A&B) for the SUM measure."""
    sa, sb = Subspace.of(ebiz, a), Subspace.of(ebiz, b)
    left = sa.aggregate("revenue") + sb.aggregate("revenue")
    right = sa.union(sb).aggregate("revenue") + \
        sa.intersect(sb).aggregate("revenue")
    assert left == pytest.approx(right)


@given(rows=row_sets)
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
def test_partition_aggregates_total(ebiz, rows):
    """Partition aggregates sum to the subspace aggregate (category is a
    total, never-null attribute in EBiz)."""
    subspace = Subspace.of(ebiz, rows)
    gb = ebiz.groupby_attribute("PGROUP", "GroupName")
    parts = subspace.partition_aggregates(gb, "revenue")
    assert sum(parts.values()) == pytest.approx(
        subspace.aggregate("revenue"))


@given(rows=row_sets)
@settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
def test_contains_reflexive_and_monotone(ebiz, rows):
    subspace = Subspace.of(ebiz, rows)
    assert subspace.contains(subspace)
    half = Subspace.of(ebiz, list(rows)[: len(rows) // 2])
    assert subspace.contains(half)
