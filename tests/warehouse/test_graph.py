"""Schema graph and join-path enumeration."""

import pytest

from repro.relational import Database, Table, integer
from repro.warehouse import (
    EMPTY_PATH,
    JoinPath,
    PathStep,
    SchemaGraph,
    path_from_fk_names,
)


@pytest.fixture
def ebiz_like():
    """The paper's parallel-edge / shared-table core: Location shared by
    Store and Account, Account joined twice by Trans."""
    db = Database("Mini")
    for name, cols in [
        ("Location", [integer("LocationKey", nullable=False)]),
        ("Store", [integer("StoreKey", nullable=False),
                   integer("LocationKey")]),
        ("Account", [integer("AccountKey", nullable=False),
                     integer("LocationKey")]),
        ("Trans", [integer("TransKey", nullable=False),
                   integer("StoreKey"), integer("BuyerKey"),
                   integer("SellerKey")]),
    ]:
        db.add_table(Table(name, cols, primary_key=cols[0].name))
    db.add_foreign_key("fk_store_loc", "Store", "LocationKey", "Location",
                       "LocationKey")
    db.add_foreign_key("fk_account_loc", "Account", "LocationKey",
                       "Location", "LocationKey")
    db.add_foreign_key("fk_trans_store", "Trans", "StoreKey", "Store",
                       "StoreKey")
    db.add_foreign_key("fk_trans_buyer", "Trans", "BuyerKey", "Account",
                       "AccountKey")
    db.add_foreign_key("fk_trans_seller", "Trans", "SellerKey", "Account",
                       "AccountKey")
    return db


class TestPathStep:
    def test_orientation(self, ebiz_like):
        fk = ebiz_like.foreign_keys[0]  # Store -> Location
        up = PathStep(fk, towards_parent=True)
        assert up.source == "Store" and up.target == "Location"
        assert up.source_column == "LocationKey"
        down = up.reversed()
        assert down.source == "Location" and down.target == "Store"


class TestJoinPaths:
    def test_three_paths_location_to_trans(self, ebiz_like):
        """Example 3.1: Location joins the fact through three paths."""
        graph = SchemaGraph(ebiz_like)
        paths = graph.join_paths("Location", "Trans")
        assert len(paths) == 3
        fks = {p.fk_names for p in paths}
        assert fks == {
            ("fk_store_loc", "fk_trans_store"),
            ("fk_account_loc", "fk_trans_buyer"),
            ("fk_account_loc", "fk_trans_seller"),
        }

    def test_same_table_is_empty_path(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        assert graph.join_paths("Trans", "Trans") == [EMPTY_PATH]

    def test_max_length_respected(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        assert graph.join_paths("Location", "Trans", max_length=1) == []

    def test_paths_are_simple(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        for path in graph.join_paths("Location", "Trans"):
            tables = path.tables
            assert len(set(tables)) == len(tables)

    def test_reversed_roundtrip(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        path = graph.join_paths("Location", "Trans")[0]
        back = path.reversed()
        assert back.source == "Trans" and back.target == "Location"
        assert back.reversed() == path


class TestShortestPath:
    def test_unique_shortest(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        path = graph.shortest_path("Store", "Trans")
        assert path.fk_names == ("fk_trans_store",)

    def test_ambiguous_raises(self, ebiz_like):
        graph = SchemaGraph(ebiz_like)
        with pytest.raises(ValueError):
            graph.shortest_path("Account", "Trans")

    def test_unreachable_is_none(self, ebiz_like):
        db = ebiz_like
        db.add_table(Table("Island", [integer("Id", nullable=False)],
                           primary_key="Id"))
        graph = SchemaGraph(db)
        assert graph.shortest_path("Island", "Trans") is None


class TestPathFromFkNames:
    def test_walk(self, ebiz_like):
        path = path_from_fk_names(ebiz_like, "Trans",
                                  ["fk_trans_buyer", "fk_account_loc"])
        assert path.source == "Trans"
        assert path.target == "Location"
        assert all(s.towards_parent for s in path.steps)

    def test_unknown_fk(self, ebiz_like):
        with pytest.raises(KeyError):
            path_from_fk_names(ebiz_like, "Trans", ["nope"])

    def test_wrong_start(self, ebiz_like):
        with pytest.raises(ValueError):
            path_from_fk_names(ebiz_like, "Trans", ["fk_store_loc"])

    def test_empty_chain(self, ebiz_like):
        assert path_from_fk_names(ebiz_like, "Trans", []) == JoinPath(())
