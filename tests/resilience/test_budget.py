"""Budget/deadline semantics and the ambient budget scope."""

import pytest

from repro.relational.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ResourceExhausted,
)
from repro.resilience import (
    Budget,
    Diagnostics,
    budget_scope,
    charge_groups,
    charge_rows,
    check_deadline,
    current_budget,
)


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


class TestDeadline:
    def test_within_deadline_passes(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        clock.advance_ms(99)
        budget.check_deadline("stage")  # no raise

    def test_past_deadline_raises_typed_error(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        clock.advance_ms(150)
        with pytest.raises(DeadlineExceeded) as err:
            budget.check_deadline("scan")
        assert err.value.stage == "scan"
        assert err.value.reason == "deadline"
        assert isinstance(err.value, ResourceExhausted)

    def test_no_deadline_never_raises(self):
        budget = Budget()
        budget.check_deadline()
        assert budget.remaining_ms() is None

    def test_remaining_and_elapsed(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=100, clock=clock)
        clock.advance_ms(40)
        assert budget.elapsed_ms() == pytest.approx(40)
        assert budget.remaining_ms() == pytest.approx(60)


class TestCharges:
    def test_rows_within_budget(self):
        budget = Budget(max_rows=10)
        budget.charge_rows(4)
        budget.charge_rows(6)
        assert budget.rows_scanned == 10

    def test_rows_over_budget_raises(self):
        budget = Budget(max_rows=10)
        budget.charge_rows(8)
        with pytest.raises(BudgetExceeded) as err:
            budget.charge_rows(3, "SemiJoin")
        assert err.value.reason == "rows"
        assert err.value.stage == "SemiJoin"

    def test_groups_over_budget_raises(self):
        budget = Budget(max_groups=2)
        with pytest.raises(BudgetExceeded) as err:
            budget.charge_groups(3)
        assert err.value.reason == "groups"

    def test_interpretations_over_budget_raises(self):
        budget = Budget(max_interpretations=2)
        budget.charge_interpretations()
        budget.charge_interpretations()
        with pytest.raises(BudgetExceeded) as err:
            budget.charge_interpretations()
        assert err.value.reason == "interpretations"

    def test_unlimited_budget_charges_freely(self):
        budget = Budget()
        budget.charge_rows(10**9)
        budget.charge_groups(10**9)
        budget.charge_interpretations(10**9)
        assert not budget.truncated


class TestScope:
    def test_scope_installs_and_resets(self):
        assert current_budget() is None
        budget = Budget(max_rows=1)
        with budget_scope(budget):
            assert current_budget() is budget
        assert current_budget() is None

    def test_none_scope_is_a_noop(self):
        with budget_scope(None):
            assert current_budget() is None

    def test_scope_resets_after_error(self):
        budget = Budget(max_rows=0)
        with pytest.raises(BudgetExceeded):
            with budget_scope(budget):
                charge_rows(1)
        assert current_budget() is None

    def test_helpers_noop_without_budget(self):
        check_deadline("anywhere")
        charge_rows(10**9)
        charge_groups(10**9)

    def test_helpers_charge_ambient_budget(self):
        budget = Budget(max_rows=5)
        with budget_scope(budget):
            charge_rows(3)
            with pytest.raises(BudgetExceeded):
                charge_rows(3)
        assert budget.rows_scanned == 6

    def test_helpers_check_deadline_first(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=10, clock=clock)
        clock.advance_ms(20)
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                charge_rows(1)


class TestDiagnostics:
    def test_truncations_accumulate(self):
        budget = Budget(max_rows=1)
        assert not budget.truncated
        budget.record_truncation("generation", "rows", "stopped at 3")
        assert budget.truncated
        assert budget.events[0].stage == "generation"

    def test_snapshot_round_trip(self):
        clock = FakeClock()
        budget = Budget(deadline_ms=500, max_rows=100, clock=clock)
        budget.charge_rows(7)
        budget.charge_groups(2)
        budget.charge_interpretations(3)
        budget.record_truncation("facet:Customer", "deadline")
        clock.advance_ms(42)
        diag = Diagnostics.from_budget(budget)
        assert diag.partial
        assert diag.rows_scanned == 7
        assert diag.groups_seen == 2
        assert diag.interpretations == 3
        assert diag.elapsed_ms == pytest.approx(42)
        payload = diag.as_dict()
        assert payload["limits"] == {"deadline_ms": 500, "max_rows": 100}
        assert payload["truncations"][0]["stage"] == "facet:Customer"
        lines = diag.describe()
        assert any("facet:Customer" in line for line in lines)

    def test_clean_budget_is_not_partial(self):
        diag = Diagnostics.from_budget(Budget(max_rows=10))
        assert not diag.partial
        assert diag.truncations == ()
