"""sqlite session thread-affinity and lifetime enforcement.

A sqlite-backed session may be *used* from a foreign thread while live
(the mirror hands every thread its own connection — the ray-prefetch
pool depends on it), but a **closed** session must refuse queries with a
typed :class:`BackendError` from any thread, never a raw
``sqlite3.ProgrammingError`` and never by silently reloading the mirror.
The service layer leans on this: workers own their sessions for their
whole life, and nothing downstream ever sees an untyped sqlite error.
"""

import sqlite3
import threading

import pytest

from repro.core import KdapSession
from repro.plan import SqliteBackend
from repro.relational.errors import BackendError
from repro.relational.sqlite_backend import SqliteBackend as SqliteMirror


class TestForeignThreadUse:
    def test_live_session_serves_foreign_threads(self, ebiz):
        with KdapSession(ebiz, backend="sqlite") as session:
            net = session.differentiate("Columbus", limit=1)[0].star_net
            results = []

            def explore():
                results.append(session.explore(net))

            thread = threading.Thread(target=explore)
            thread.start()
            thread.join()
            assert len(results) == 1
            assert len(results[0].subspace) > 0


class TestClosedSession:
    def test_query_after_close_raises_backend_error(self, ebiz):
        session = KdapSession(ebiz, backend="sqlite")
        net = session.differentiate("Columbus", limit=1)[0].star_net
        session.explore(net)
        session.close()
        # the plan cache would happily serve the repeat query; clear it
        # so the explore must reach the (closed) backend
        session.engine.cache.clear()
        with pytest.raises(BackendError, match="closed"):
            session.explore(net)

    def test_closed_backend_does_not_resurrect_mirror(self, ebiz):
        backend = SqliteBackend(ebiz)
        backend.mirror  # force the lazy load
        backend.close()
        assert backend._mirror is None
        with pytest.raises(BackendError):
            backend.mirror
        assert backend._mirror is None  # still no silent reload

    def test_close_after_close_stays_idempotent(self, ebiz):
        backend = SqliteBackend(ebiz)
        backend.close()
        backend.close()  # no error

    def test_foreign_thread_sees_backend_error_after_close(self, ebiz):
        session = KdapSession(ebiz, backend="sqlite")
        net = session.differentiate("Columbus", limit=1)[0].star_net
        session.explore(net)
        session.close()
        session.engine.cache.clear()
        caught = []

        def use():
            try:
                session.explore(net)
            except BaseException as exc:  # noqa: BLE001 - asserting type
                caught.append(exc)

        thread = threading.Thread(target=use)
        thread.start()
        thread.join()
        assert len(caught) == 1
        assert isinstance(caught[0], BackendError)
        assert not isinstance(caught[0], sqlite3.ProgrammingError)


class TestMirrorErrorTranslation:
    def test_closed_mirror_execute_is_typed(self, ebiz):
        mirror = SqliteMirror(ebiz.database)
        mirror.close()
        with pytest.raises(BackendError, match="closed"):
            mirror.execute("SELECT 1")

    def test_programming_error_is_translated(self, ebiz):
        mirror = SqliteMirror(ebiz.database)
        # sabotage the creator connection behind the mirror's back: the
        # next execute hits sqlite3.ProgrammingError internally and must
        # surface it as a BackendError
        mirror.connection.close()
        with pytest.raises(BackendError, match="misuse"):
            mirror.execute("SELECT 1")
