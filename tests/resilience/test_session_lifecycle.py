"""Session lifecycle: idempotent close and context-manager use."""

import pytest

from repro.core import KdapSession
from repro.plan import SqliteBackend


class TestClose:
    def test_close_is_idempotent(self, ebiz):
        session = KdapSession(ebiz)
        assert not session.closed
        session.close()
        assert session.closed
        session.close()  # second close is a no-op, not an error
        assert session.closed

    def test_close_releases_sqlite_mirror(self, ebiz):
        session = KdapSession(ebiz, backend="sqlite")
        session.differentiate("Columbus", limit=1)
        net = session.differentiate("Columbus", limit=1)[0].star_net
        session.explore(net)
        assert session.engine.backend._mirror is not None
        session.close()
        assert session.engine.backend._mirror is None
        session.close()
        assert session.engine.backend._mirror is None


class TestContextManager:
    def test_with_block_closes_on_exit(self, ebiz):
        with KdapSession(ebiz, backend="sqlite") as session:
            assert session is not None
            assert not session.closed
        assert session.closed

    def test_with_block_closes_on_error(self, ebiz):
        with pytest.raises(RuntimeError):
            with KdapSession(ebiz) as session:
                raise RuntimeError("boom")
        assert session.closed

    def test_backend_instance_sessions_close_cleanly(self, ebiz):
        backend = SqliteBackend(ebiz)
        with KdapSession(ebiz, backend=backend) as session:
            session.differentiate("Columbus", limit=1)
        assert backend._mirror is None
