"""The fault-injecting backend: seeded, deterministic misbehavior."""

import pytest

from repro.plan import PlanCounters
from repro.relational.errors import TransientBackendError
from repro.resilience import FaultInjectingBackend


class StubBackend:
    """A trivially well-behaved backend for wrapping."""

    name = "stub"

    def __init__(self):
        self.counters = PlanCounters()
        self.materialized = 0
        self.executed = 0
        self.closed = False

    def materialize(self, plan):
        self.materialized += 1
        return (1, 2, 3)

    def execute(self, plan):
        self.executed += 1
        return {"a": 1.0}

    def close(self):
        self.closed = True


def fault_schedule(backend: FaultInjectingBackend, calls: int) -> list[bool]:
    """Which of ``calls`` consecutive calls raise."""
    outcomes = []
    for _ in range(calls):
        try:
            backend.materialize(None)
            outcomes.append(False)
        except TransientBackendError:
            outcomes.append(True)
    return outcomes


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.5, seed=11),
            50)
        second = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.5, seed=11),
            50)
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        first = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.5, seed=1),
            50)
        second = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.5, seed=2),
            50)
        assert first != second

    def test_scripted_triggers_do_not_shift_random_schedule(self):
        plain = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.4, seed=3),
            30)
        scripted = fault_schedule(
            FaultInjectingBackend(StubBackend(), error_rate=0.4, seed=3,
                                  fail_calls={1}),
            30)
        # call 1 is forced to fail; every later call keeps its fate
        assert scripted[0] is True
        assert scripted[1:] == plain[1:]


class TestTriggers:
    def test_error_rate_zero_never_fails(self):
        backend = FaultInjectingBackend(StubBackend(), error_rate=0.0,
                                        seed=4)
        assert fault_schedule(backend, 20) == [False] * 20
        assert backend.faults_injected == 0

    def test_error_rate_one_always_fails(self):
        backend = FaultInjectingBackend(StubBackend(), error_rate=1.0,
                                        seed=4)
        assert fault_schedule(backend, 5) == [True] * 5
        assert backend.faults_injected == 5

    def test_fail_nth(self):
        backend = FaultInjectingBackend(StubBackend(), fail_nth=3)
        assert fault_schedule(backend, 9) == [
            False, False, True, False, False, True, False, False, True]

    def test_fail_calls(self):
        backend = FaultInjectingBackend(StubBackend(), fail_calls={1, 4})
        assert fault_schedule(backend, 5) == [
            True, False, False, True, False]

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjectingBackend(StubBackend(), error_rate=1.5)


class TestLatencyAndDelegation:
    def test_latency_injected_via_sleep(self):
        naps = []
        backend = FaultInjectingBackend(StubBackend(), latency_s=0.25,
                                        sleep=naps.append)
        backend.materialize(None)
        backend.execute(None)
        assert naps == [0.25, 0.25]

    def test_execute_and_materialize_delegate(self):
        inner = StubBackend()
        backend = FaultInjectingBackend(inner)
        assert backend.materialize(None) == (1, 2, 3)
        assert backend.execute(None) == {"a": 1.0}
        assert backend.name == "faulty(stub)"
        assert backend.counters is inner.counters

    def test_close_never_faulted(self):
        inner = StubBackend()
        backend = FaultInjectingBackend(inner, error_rate=1.0, seed=9)
        backend.close()
        assert inner.closed

    def test_error_message_names_call_and_seed(self):
        backend = FaultInjectingBackend(StubBackend(), fail_calls={1},
                                        seed=77)
        with pytest.raises(TransientBackendError, match=r"#1.*seed=77"):
            backend.materialize(None)
