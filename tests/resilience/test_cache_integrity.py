"""PlanCache interaction with failures: errors must not poison the cache.

A backend error (or a budget/deadline abort) during evaluation must
leave the cache exactly as it was — no cached partial/None results — and
the hit/miss statistics must stay consistent so observability does not
drift under faults.
"""

import pytest

from repro.plan import (
    InMemoryBackend,
    QueryEngine,
    Scan,
    subspace_aggregate_plan,
)
from repro.relational.errors import DeadlineExceeded, TransientBackendError
from repro.resilience import Budget, FaultInjectingBackend, budget_scope


@pytest.fixture()
def engine(ebiz):
    """An engine whose backend fails on exactly its first call."""
    faulty = FaultInjectingBackend(InMemoryBackend(ebiz), fail_calls={1})
    return QueryEngine(ebiz, backend=faulty)


class TestBackendErrors:
    def test_failed_materialize_caches_nothing(self, engine, ebiz):
        plan = Scan(ebiz.fact_table)
        with pytest.raises(TransientBackendError):
            engine.materialize(plan)
        assert len(engine.cache) == 0
        assert engine.cache_stats.misses == 1
        assert engine.cache_stats.hits == 0

    def test_retry_after_failure_caches_cleanly(self, engine, ebiz):
        plan = Scan(ebiz.fact_table)
        with pytest.raises(TransientBackendError):
            engine.materialize(plan)
        rows = engine.materialize(plan)  # call 2 succeeds
        assert rows == tuple(range(ebiz.num_fact_rows))
        assert len(engine.cache) == 1
        # third lookup must be served from cache, not the backend
        backend_calls = engine.backend.calls
        assert engine.materialize(plan) == rows
        assert engine.backend.calls == backend_calls
        assert engine.cache_stats.hits == 1
        assert engine.cache_stats.misses == 2

    def test_failed_execute_caches_nothing(self, engine, ebiz):
        plan = subspace_aggregate_plan(ebiz, (0, 1, 2),
                                       ebiz.measures["revenue"])
        with pytest.raises(TransientBackendError):
            engine.execute(plan)
        assert len(engine.cache) == 0
        value = engine.execute(plan)
        assert value == pytest.approx(
            sum(ebiz.measure_vector("revenue")[r] for r in (0, 1, 2)))
        assert len(engine.cache) == 1


class TestBudgetAborts:
    def test_deadline_abort_does_not_poison_cache(self, ebiz):
        engine = QueryEngine(ebiz, backend=InMemoryBackend(ebiz))
        plan = Scan(ebiz.fact_table)
        with budget_scope(Budget(deadline_ms=0)):
            with pytest.raises(DeadlineExceeded):
                engine.materialize(plan)
        assert len(engine.cache) == 0
        # the same plan evaluates cleanly once the deadline pressure ends
        rows = engine.materialize(plan)
        assert len(rows) == ebiz.num_fact_rows
        assert len(engine.cache) == 1

    def test_row_budget_abort_does_not_poison_cache(self, ebiz):
        engine = QueryEngine(ebiz, backend=InMemoryBackend(ebiz))
        plan = Scan(ebiz.fact_table)
        budget = Budget(max_rows=10)
        with budget_scope(budget):
            with pytest.raises(Exception):
                engine.materialize(plan)
        assert len(engine.cache) == 0
        assert engine.materialize(plan)  # clean re-evaluation


class TestFusedPlans:
    """The no-poison invariant extends to fused multi-aggregate plans."""

    def _gbs(self, ebiz):
        return [ebiz.groupby_attribute("PGROUP", "GroupName"),
                ebiz.groupby_attribute("LOCATION", "City")]

    def test_failed_fused_execute_caches_nothing(self, ebiz):
        from repro.plan import multi_partition_plan
        from repro.resilience import FaultInjectingBackend

        faulty = FaultInjectingBackend(InMemoryBackend(ebiz),
                                       fail_calls={1})
        engine = QueryEngine(ebiz, backend=faulty)
        plan = multi_partition_plan(ebiz, (0, 1, 2), self._gbs(ebiz),
                                    ebiz.measures["revenue"])
        with pytest.raises(TransientBackendError):
            engine.execute(plan)
        assert len(engine.cache) == 0
        assert engine.cache_stats.misses == 1
        # the retry caches exactly one clean entry, then serves hits
        result = engine.execute(plan)
        assert len(engine.cache) == 1
        assert engine.execute(plan) == result
        assert engine.cache_stats.hits == 1

    def test_group_budget_abort_leaves_fused_plan_uncached(self, ebiz):
        from repro.relational.errors import BudgetExceeded
        from repro.warehouse import Subspace

        engine = QueryEngine(ebiz, backend=InMemoryBackend(ebiz))
        sub = Subspace.full(ebiz, engine=engine)
        gbs = self._gbs(ebiz)
        with budget_scope(Budget(max_groups=1)):
            with pytest.raises(BudgetExceeded):
                engine.multi_partition_aggregates(sub, gbs, "revenue")
        # nothing cached for the aborted fused plan (child row-set
        # materialisation may legitimately have been cached)
        fresh = QueryEngine(ebiz, backend=InMemoryBackend(ebiz))
        want = fresh.multi_partition_aggregates(
            fresh.bind(sub), gbs, "revenue")
        assert engine.multi_partition_aggregates(sub, gbs, "revenue") == want
