"""Nested budget scopes: the inner contract can never exceed the outer.

The service layer installs a fresh per-request Budget inside whatever
process-level scope is already active; these tests pin the clamp/absorb
semantics :func:`repro.resilience.budget.budget_scope` applies when two
*different* budgets nest.
"""

import pytest

from repro.relational.errors import BudgetExceeded, DeadlineExceeded
from repro.resilience.budget import (
    Budget,
    budget_scope,
    charge_rows,
    check_deadline,
    current_budget,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCeilingClamp:
    def test_inner_rows_clamped_to_outer_ceiling(self):
        outer = Budget(max_rows=100)
        with budget_scope(outer):
            inner = Budget(max_rows=1000)
            with budget_scope(inner):
                with pytest.raises(BudgetExceeded):
                    charge_rows(150)
        assert inner.max_rows == 100

    def test_inner_deadline_clamped_to_outer_remaining(self):
        clock = FakeClock()
        outer = Budget(deadline_ms=100, clock=clock)
        clock.advance(0.09)  # 10 ms of the outer deadline left
        with budget_scope(outer):
            inner = Budget(deadline_ms=60_000, clock=clock)
            with budget_scope(inner):
                assert inner.deadline_ms == pytest.approx(10, abs=1e-6)
                clock.advance(0.05)
                with pytest.raises(DeadlineExceeded):
                    check_deadline("test")

    def test_outer_unlimited_keeps_inner_limits(self):
        outer = Budget()
        with budget_scope(outer):
            inner = Budget(max_rows=5, max_groups=7,
                           max_interpretations=3, deadline_ms=50)
            with budget_scope(inner):
                pass
        assert inner.max_rows == 5
        assert inner.max_groups == 7
        assert inner.max_interpretations == 3

    def test_inner_unlimited_takes_outer_ceiling(self):
        outer = Budget(max_rows=40, max_groups=8)
        with budget_scope(outer):
            inner = Budget()
            with budget_scope(inner):
                assert inner.max_rows == 40
                assert inner.max_groups == 8

    def test_clamp_accounts_for_outer_consumption(self):
        outer = Budget(max_rows=100)
        outer.charge_rows(60)
        with budget_scope(outer):
            inner = Budget(max_rows=90)
            with budget_scope(inner):
                assert inner.max_rows == 40


class TestAbsorb:
    def test_sibling_scopes_share_the_outer_pool(self):
        outer = Budget(max_rows=100)
        with budget_scope(outer):
            with budget_scope(Budget(max_rows=100)):
                charge_rows(60)
            assert outer.rows_scanned == 60
            second = Budget(max_rows=100)
            with budget_scope(second):
                assert second.max_rows == 40
                with pytest.raises(BudgetExceeded):
                    charge_rows(60)

    def test_truncation_events_carry_over(self):
        outer = Budget(max_rows=100)
        with budget_scope(outer):
            inner = Budget()
            with budget_scope(inner):
                inner.record_truncation("facet:Store", "rows", "cut short")
        assert outer.truncated
        assert outer.events[0].stage == "facet:Store"

    def test_all_consumption_kinds_absorbed(self):
        outer = Budget()
        with budget_scope(outer):
            inner = Budget()
            with budget_scope(inner):
                inner.charge_rows(11)
                inner.charge_groups(5)
                inner.charge_interpretations(3)
        assert outer.rows_scanned == 11
        assert outer.groups_seen == 5
        assert outer.interpretations == 3


class TestSameBudgetReentry:
    def test_reinstalling_the_ambient_budget_is_a_noop(self):
        budget = Budget(max_rows=10, deadline_ms=1000)
        with budget_scope(budget):
            with budget_scope(budget):
                assert current_budget() is budget
                charge_rows(4)
        # no self-absorb: consumption is not double counted
        assert budget.rows_scanned == 4
        assert budget.max_rows == 10

    def test_explicit_budget_equal_to_ambient_via_session_path(self):
        # the session pattern: budget = budget or current_budget(), then
        # budget_scope(budget) again — must not clamp or double count
        budget = Budget(max_rows=50)
        with budget_scope(budget):
            ambient = current_budget()
            with budget_scope(ambient):
                charge_rows(20)
        assert budget.rows_scanned == 20
