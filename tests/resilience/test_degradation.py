"""Graceful degradation: budgeted sessions return partials, never raise."""

import pytest

from repro.core import KdapSession
from repro.resilience import Budget, budget_scope, current_budget


@pytest.fixture()
def session(ebiz):
    with KdapSession(ebiz) as s:
        yield s


class TestExploreDegradation:
    def test_unbudgeted_result_has_no_diagnostics(self, session):
        net = session.differentiate("Columbus", limit=1)[0].star_net
        result = session.explore(net)
        assert result.diagnostics is None
        assert not result.is_partial

    def test_generous_budget_is_complete_and_identical(self, session):
        net = session.differentiate("Columbus", limit=1)[0].star_net
        plain = session.explore(net)
        budgeted = session.explore(net, budget=Budget(max_rows=10**9))
        assert not budgeted.is_partial
        assert budgeted.diagnostics is not None
        assert budgeted.diagnostics.rows_scanned >= 0
        assert budgeted.interface.facets == plain.interface.facets
        assert budgeted.total_aggregate == plain.total_aggregate

    def test_expired_deadline_returns_partial_not_raise(self, session):
        net = session.differentiate("Columbus", limit=1)[0].star_net
        result = session.explore(net, budget=Budget(deadline_ms=0))
        assert result.is_partial
        stages = {t.stage for t in result.diagnostics.truncations}
        assert "subspace" in stages
        assert result.interface.facets == ()
        assert len(result.subspace) == 0

    def test_tiny_row_budget_returns_partial_with_diagnostics(self,
                                                              session):
        net = session.differentiate("Columbus", limit=1)[0].star_net
        result = session.explore(net, budget=Budget(max_rows=1))
        assert result.is_partial
        diag = result.diagnostics
        assert diag.truncations
        assert diag.rows_scanned >= 1
        assert diag.limits == (("max_rows", 1),)
        reasons = {t.reason for t in diag.truncations}
        assert "rows" in reasons

    def test_moderate_row_budget_keeps_subspace_drops_facets(self, ebiz):
        # enough rows to materialise the subspace, not enough for the
        # full facet build: the partial keeps the subspace and total
        with KdapSession(ebiz) as session:
            net = session.differentiate("Columbus", limit=1)[0].star_net
            full = session.explore(net)
        with KdapSession(ebiz) as session:
            net = session.differentiate("Columbus", limit=1)[0].star_net
            budget = Budget(max_rows=ebiz.num_fact_rows * 3)
            result = session.explore(net, budget=budget)
        assert result.subspace.fact_rows == full.subspace.fact_rows
        assert result.total_aggregate == pytest.approx(
            full.total_aggregate)
        if result.is_partial:
            assert len(result.interface.facets) <= \
                len(full.interface.facets)

    def test_ambient_budget_scope_is_honoured(self, session):
        net = session.differentiate("Columbus", limit=1)[0].star_net
        with budget_scope(Budget(deadline_ms=0)):
            result = session.explore(net)
        assert result.is_partial
        assert current_budget() is None


class TestDifferentiateDegradation:
    def test_interpretation_cap_truncates_not_raises(self, session):
        budget = Budget(max_interpretations=1)
        ranked = session.differentiate("Columbus LCD", limit=10,
                                       budget=budget)
        assert len(ranked) <= 1
        assert budget.truncated
        assert any(t.reason == "interpretations" for t in budget.events)

    def test_expired_deadline_yields_empty_ranking(self, session):
        budget = Budget(deadline_ms=0)
        ranked = session.differentiate("Columbus LCD", budget=budget)
        assert ranked == []
        assert budget.truncated

    def test_preview_sizes_survive_row_budget(self, session):
        budget = Budget(max_rows=1)
        ranked = session.differentiate("Columbus", limit=3,
                                       preview_sizes=True, budget=budget)
        # ranking itself needs no scans; previews stop at the budget but
        # candidates are still returned
        assert ranked
        assert budget.truncated or all(
            s.subspace_size is not None for s in ranked)


class TestSearchDegradation:
    def test_search_with_budget_never_raises(self, session):
        result = session.search("Columbus", budget=Budget(max_rows=1))
        assert result is not None
        assert result.is_partial
