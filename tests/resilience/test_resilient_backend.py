"""Retry-with-backoff and failover behavior of ResilientBackend."""

import pytest

from repro.core import KdapSession
from repro.plan import InMemoryBackend, PlanCounters, SqliteBackend
from repro.relational.errors import (
    BackendUnavailableError,
    SchemaError,
    TransientBackendError,
)
from repro.resilience import (
    Budget,
    FaultInjectingBackend,
    ResilientBackend,
    RetryPolicy,
    budget_scope,
    create_resilient_backend,
)


class FlakyBackend:
    """Fails the first ``failures`` calls, then succeeds forever."""

    name = "flaky"

    def __init__(self, failures: int, result=(1, 2)):
        self.counters = PlanCounters()
        self.failures = failures
        self.calls = 0
        self.result = result
        self.closed = False

    def materialize(self, plan):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientBackendError(f"flaky call {self.calls}")
        return self.result

    def execute(self, plan):
        return self.materialize(plan)

    def close(self):
        self.closed = True


class BrokenBackend:
    """Always fails."""

    name = "broken"

    def __init__(self, error=TransientBackendError("down")):
        self.counters = PlanCounters()
        self.calls = 0
        self.error = error
        self.closed = False

    def materialize(self, plan):
        self.calls += 1
        raise self.error

    def execute(self, plan):
        return self.materialize(plan)

    def close(self):
        self.closed = True


class GoodBackend:
    name = "good"

    def __init__(self, result=(7,)):
        self.counters = PlanCounters()
        self.calls = 0
        self.result = result
        self.closed = False

    def materialize(self, plan):
        self.calls += 1
        return self.result

    def execute(self, plan):
        return self.materialize(plan)

    def close(self):
        self.closed = True


NO_SLEEP = lambda s: None  # noqa: E731


class TestRetry:
    def test_transient_error_is_retried_to_success(self):
        primary = FlakyBackend(failures=2)
        backend = ResilientBackend(primary, sleep=NO_SLEEP)
        assert backend.materialize(None) == (1, 2)
        assert primary.calls == 3
        assert backend.resilience.retries == 2
        assert backend.resilience.failovers == 0
        assert backend.resilience.transient_errors == 2

    def test_backoff_is_exponential(self):
        naps = []
        primary = FlakyBackend(failures=3)
        backend = ResilientBackend(
            primary,
            policy=RetryPolicy(max_attempts=4, base_delay_s=0.01),
            sleep=naps.append)
        backend.materialize(None)
        assert naps == pytest.approx([0.01, 0.02, 0.04])

    def test_non_transient_error_propagates_immediately(self):
        primary = BrokenBackend(error=SchemaError("bad plan"))
        backend = ResilientBackend(primary, fallback=GoodBackend(),
                                   sleep=NO_SLEEP)
        with pytest.raises(SchemaError):
            backend.materialize(None)
        assert primary.calls == 1
        assert backend.resilience.retries == 0

    def test_exhausted_retries_without_fallback_raise(self):
        primary = BrokenBackend()
        backend = ResilientBackend(primary, sleep=NO_SLEEP)
        with pytest.raises(BackendUnavailableError):
            backend.materialize(None)
        assert primary.calls == 3  # default max_attempts

    def test_deadline_cuts_backoff_short(self):
        primary = BrokenBackend()
        naps = []
        backend = ResilientBackend(primary, sleep=naps.append)
        expired = Budget(deadline_ms=0)
        with budget_scope(expired):
            with pytest.raises(BackendUnavailableError):
                backend.materialize(None)
        # no time to back off: a single attempt, no sleeps
        assert naps == []
        assert primary.calls == 1


class TestFailover:
    def test_failover_serves_from_fallback(self):
        primary = BrokenBackend()
        fallback = GoodBackend()
        backend = ResilientBackend(primary, fallback=fallback,
                                   sleep=NO_SLEEP)
        assert backend.materialize(None) == (7,)
        assert backend.resilience.failovers == 1
        assert backend.name == "resilient(good)"

    def test_after_failover_primary_is_never_retried(self):
        primary = BrokenBackend()
        fallback = GoodBackend()
        backend = ResilientBackend(primary, fallback=fallback,
                                   sleep=NO_SLEEP)
        backend.materialize(None)
        calls_after_failover = primary.calls
        backend.materialize(None)
        backend.execute(None)
        assert primary.calls == calls_after_failover
        assert fallback.calls == 3
        assert backend.resilience.failovers == 1

    def test_lazy_fallback_factory(self):
        built = []

        def factory():
            built.append(True)
            return GoodBackend()

        backend = ResilientBackend(FlakyBackend(failures=1),
                                   fallback=factory, sleep=NO_SLEEP)
        backend.materialize(None)  # retry succeeds on the primary
        assert built == []
        assert backend.resilience.failovers == 0

    def test_failing_fallback_raises_unavailable(self):
        backend = ResilientBackend(BrokenBackend(),
                                   fallback=BrokenBackend(),
                                   sleep=NO_SLEEP)
        with pytest.raises(BackendUnavailableError):
            backend.execute(None)

    def test_close_is_idempotent_and_closes_both(self):
        primary = BrokenBackend()
        fallback = GoodBackend()
        backend = ResilientBackend(primary, fallback=fallback,
                                   sleep=NO_SLEEP)
        backend.materialize(None)
        backend.close()
        backend.close()
        assert primary.closed and fallback.closed


class TestWarehouseIntegration:
    def test_sqlite_to_memory_failover_preserves_results(self, ebiz):
        """The acid test: a sqlite primary that dies mid-session fails
        over to memory and the explore result is identical."""
        with KdapSession(ebiz) as plain:
            ranked = plain.differentiate("Columbus", limit=1)
            net = ranked[0].star_net
            expected = plain.explore(net)

        primary = FaultInjectingBackend(SqliteBackend(ebiz),
                                        error_rate=1.0, seed=5)
        resilient = ResilientBackend(
            primary, fallback=lambda: InMemoryBackend(ebiz),
            sleep=NO_SLEEP)
        with KdapSession(ebiz, backend=resilient) as session:
            result = session.explore(net)
            assert resilient.resilience.failovers == 1
            assert result.subspace.fact_rows == expected.subspace.fact_rows
            assert result.total_aggregate == expected.total_aggregate
            assert result.interface.facets == expected.interface.facets

    def test_create_resilient_backend_ladder(self, ebiz):
        backend = create_resilient_backend(ebiz, "sqlite", sleep=NO_SLEEP)
        assert backend.name == "resilient(sqlite)"
        assert backend._fallback_source is not None
        memory_only = create_resilient_backend(ebiz, "memory",
                                               sleep=NO_SLEEP)
        assert memory_only._fallback_source is None
        backend.close()
        memory_only.close()
