"""Command-line interface (exercised in-process via cli.main)."""

import json

import pytest

from repro import cli
from repro.cli import main
from repro.relational.errors import (
    BackendUnavailableError,
    BudgetExceeded,
    DeadlineExceeded,
    SchemaError,
)

SMALL = ["--facts", "2000", "--warehouse", "online"]


class TestQuery:
    def test_prints_interpretations(self, capsys):
        code = main([*SMALL, "query", "Road Bikes", "--limit", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Road Bikes" in out
        assert "score" in out

    def test_no_interpretation(self, capsys):
        code = main([*SMALL, "query", "qqqzz"])
        assert code == 1
        assert "no interpretation" in capsys.readouterr().out

    def test_method_flag(self, capsys):
        code = main([*SMALL, "query", "October", "--method", "baseline"])
        assert code == 0


class TestExplore:
    def test_facet_output(self, capsys):
        code = main([*SMALL, "explore", "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fact rows" in out
        assert "Dimension" in out

    def test_bellwether(self, capsys):
        code = main([*SMALL, "explore", "October", "--measure",
                     "bellwether"])
        assert code == 0

    def test_pick_out_of_range(self, capsys):
        code = main([*SMALL, "explore", "October", "--pick", "99"])
        assert code == 1


class TestBackend:
    def test_sqlite_backend_matches_memory(self, capsys):
        code = main([*SMALL, "explore", "Road Bikes"])
        assert code == 0
        memory_out = capsys.readouterr().out
        code = main([*SMALL, "--backend", "sqlite", "explore",
                     "Road Bikes"])
        assert code == 0
        assert capsys.readouterr().out == memory_out

    def test_stats_flag_prints_counters(self, capsys):
        code = main([*SMALL, "--backend", "sqlite", "explore",
                     "Road Bikes", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: sqlite" in out
        assert "plan cache" in out
        assert "SqlExecute" in out

    def test_unknown_backend_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([*SMALL, "--backend", "duckdb", "explore", "Road Bikes"])


class TestResilience:
    def test_resilient_flag_reports_in_stats(self, capsys):
        code = main([*SMALL, "--backend", "sqlite", "--resilient",
                     "explore", "Road Bikes", "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: resilient(sqlite)" in out
        assert "resilience: 0 retries, 0 failovers" in out

    def test_row_budget_prints_partial_diagnostics(self, capsys):
        code = main([*SMALL, "--max-rows", "1", "explore", "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "partial result" in out
        assert "scanned" in out

    def test_generous_budget_output_matches_unbudgeted(self, capsys):
        code = main([*SMALL, "explore", "Road Bikes"])
        assert code == 0
        plain = capsys.readouterr().out
        code = main([*SMALL, "--deadline-ms", "600000", "--max-rows",
                     "1000000000", "explore", "Road Bikes"])
        assert code == 0
        assert capsys.readouterr().out == plain

    def test_expired_deadline_still_exits_cleanly(self, capsys):
        code = main([*SMALL, "--deadline-ms", "0", "query", "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no interpretation" in out


class TestExitCodes:
    """The error taxonomy maps to distinct exit codes and one-line
    stderr messages — never tracebacks."""

    @pytest.mark.parametrize("error,expected", [
        (DeadlineExceeded("too slow"), cli.EXIT_DEADLINE),
        (BudgetExceeded("too much"), cli.EXIT_BUDGET),
        (BackendUnavailableError("all backends down"), cli.EXIT_BACKEND),
        (SchemaError("unknown column"), cli.EXIT_ENGINE),
    ])
    def test_taxonomy_exit_codes(self, monkeypatch, capsys, error,
                                 expected):
        def boom(args):
            raise error

        monkeypatch.setitem(cli._COMMANDS, "query", boom)
        code = main([*SMALL, "query", "whatever"])
        captured = capsys.readouterr()
        assert code == expected
        assert str(error) in captured.err
        assert "Traceback" not in captured.err

    def test_exit_codes_are_distinct(self):
        codes = {cli.EXIT_NO_RESULT, cli.EXIT_DEADLINE, cli.EXIT_BUDGET,
                 cli.EXIT_BACKEND, cli.EXIT_ENGINE}
        assert len(codes) == 5
        assert 0 not in codes and 2 not in codes  # success / usage


class TestExplain:
    def test_plan_with_actuals(self, capsys):
        code = main([*SMALL, "explain", "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "subspace plan (actual):" in out
        assert "phase breakdown:" in out
        assert "calls=" in out
        assert "differentiate" in out and "explore" in out

    def test_sqlite_marks_pushed_down_nodes(self, capsys):
        code = main([*SMALL, "--backend", "sqlite", "explain",
                     "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[in SQL]" in out

    def test_json_output(self, capsys):
        code = main([*SMALL, "explain", "Road Bikes", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "memory"
        assert payload["plan"]["calls"] >= 1
        assert payload["spans"]

    def test_pick_out_of_range(self, capsys):
        code = main([*SMALL, "explain", "Road Bikes", "--pick", "99"])
        assert code == 1
        assert "interpretations" in capsys.readouterr().out


class TestTraceOut:
    def test_writes_chrome_trace_json(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main([*SMALL, "--trace-out", str(trace_path), "explore",
                     "Road Bikes"])
        assert code == 0
        trace = json.loads(trace_path.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert {"differentiate", "explore"} <= names
        assert any(n.startswith("op.") for n in names)
        assert all("ts" in e and "dur" in e for e in events)

    def test_trace_written_even_on_error_exit(self, tmp_path,
                                              monkeypatch, capsys):
        from repro.relational.errors import DeadlineExceeded

        def boom(args):
            raise DeadlineExceeded("too slow")

        monkeypatch.setitem(cli._COMMANDS, "query", boom)
        trace_path = tmp_path / "trace.json"
        code = main([*SMALL, "--trace-out", str(trace_path), "query",
                     "whatever"])
        assert code == cli.EXIT_DEADLINE
        assert "traceEvents" in json.loads(trace_path.read_text())


class TestStatsJson:
    def test_writes_machine_readable_stats(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        code = main([*SMALL, "--backend", "sqlite", "explore",
                     "Road Bikes", "--stats-json", str(stats_path)])
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["backend"] == "sqlite"
        assert stats["plan_cache"]["misses"] >= 1
        assert "SqlExecute" in stats["operators"]
        counters = stats["metrics"]["counters"]
        assert counters["kdap.queries"] == 1
        histograms = stats["metrics"]["histograms"]
        assert histograms["kdap.explore.seconds"]["count"] == 1
        assert "p95" in histograms["kdap.explore.seconds"]

    def test_dash_writes_to_stdout(self, capsys):
        code = main([*SMALL, "explore", "Road Bikes", "--stats-json",
                     "-"])
        assert code == 0
        out = capsys.readouterr().out
        # sort_keys puts "backend" first, marking where the JSON starts
        payload = json.loads(out[out.index('{\n  "backend"'):])
        assert payload["backend"] == "memory"


class TestSlowQueryFlag:
    def test_slow_queries_reported_on_stderr(self, capsys):
        code = main([*SMALL, "--slow-query-ms", "0", "explore",
                     "Road Bikes"])
        captured = capsys.readouterr()
        assert code == 0
        assert "slow quer" in captured.err
        assert "Road Bikes" in captured.err

    def test_high_threshold_stays_silent(self, capsys):
        code = main([*SMALL, "--slow-query-ms", "1000000", "explore",
                     "Road Bikes"])
        captured = capsys.readouterr()
        assert code == 0
        assert "slow quer" not in captured.err


class TestSql:
    def test_sql_output(self, capsys):
        code = main([*SMALL, "sql", "Road Bikes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SELECT SUM" in out
        assert "FROM FactInternetSales" in out


class TestExperiment:
    def test_figure4_reseller_small(self, capsys):
        code = main(["--facts", "2000", "--warehouse", "reseller",
                     "experiment", "figure4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "top-x" in out
        assert "standard" in out

    def test_figure7_small(self, capsys):
        code = main(["--facts", "3000", "experiment", "figure7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "iteration" in out


class TestWarehouses:
    def test_ebiz_query(self, capsys):
        code = main(["--facts", "1000", "--warehouse", "ebiz",
                     "query", "Columbus LCD"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Columbus" in out


class TestExperimentFigures:
    def test_figure5_small(self, capsys):
        code = main(["--facts", "2000", "experiment", "figure5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "buckets" in out
        assert "YearlyIncome" in out

    def test_figure6_small(self, capsys):
        code = main(["--facts", "2000", "--warehouse", "reseller",
                     "experiment", "figure6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AnnualSales" in out


SCALE = ["--facts", "3000", "--warehouse", "scale"]


class TestMatchers:
    def test_hint_query_explores_via_metadata_and_pattern(self, capsys):
        code = main([*SCALE, "explore", "revenue by month top 3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "measures[revenue]" in out
        assert "DimDate.MonthName (promoted)" in out

    def test_stats_prints_per_matcher_counters(self, capsys):
        code = main([*SCALE, "explore", "revenue by month top 3",
                     "--stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "match: " in out
        assert "metadata.accepted=1" in out
        assert "pattern.accepted=2" in out

    def test_value_only_chain_restores_legacy_front_end(self, capsys):
        code = main([*SCALE, "--matchers", "value", "query",
                     "revenue by month top 3"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no interpretation found" in out
        # satellite: dropped keywords are explained, not silent
        assert "note: keyword 'revenue' matched no enabled matcher" in out

    def test_unknown_matcher_is_usage_error(self, capsys):
        code = main([*SCALE, "--matchers", "value,bogus", "query",
                     "October"])
        assert code == 2
        assert "usage error" in capsys.readouterr().err

    def test_explain_reports_matcher_breakdown(self, capsys):
        code = main([*SCALE, "explain", "revenue by month top 3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matcher breakdown:" in out
        assert "kdap.match.metadata.accepted: 1" in out

    def test_sql_uses_hinted_measure(self, capsys):
        code = main([*SCALE, "sql", "December sales"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SELECT SUM" in out


class TestWarehouseGenerate:
    def test_synonyms_sidecar_round_trips(self, tmp_path, capsys):
        from repro.core import SynonymRegistry
        from repro.datasets.scale import SCALE_SYNONYMS

        out_db = tmp_path / "scale.sqlite"
        out_json = tmp_path / "synonyms.json"
        code = main(["warehouse", "generate", "--scale", "2000",
                     "--days", "60", "--out", str(out_db),
                     "--synonyms", str(out_json)])
        assert code == 0
        message = capsys.readouterr().out
        assert "synonym terms" in message
        loaded = SynonymRegistry.load(str(out_json))
        assert loaded.as_dict() == \
            SynonymRegistry(SCALE_SYNONYMS).as_dict()
