"""Shared fixtures: small, session-scoped warehouses.

Tests use reduced-size datasets (a few thousand facts) so the suite stays
fast; the benchmarks run the paper-scale versions.
"""

from __future__ import annotations

import pytest

from repro.core import KdapSession
from repro.datasets import build_aw_online, build_aw_reseller, build_ebiz


@pytest.fixture(scope="session")
def aw_online():
    """A small AW_ONLINE warehouse (shared across the whole test session)."""
    return build_aw_online(num_customers=300, num_facts=8000, seed=42)


@pytest.fixture(scope="session")
def aw_reseller():
    """A small AW_RESELLER warehouse."""
    return build_aw_reseller(num_resellers=120, num_employees=40,
                             num_facts=8000, seed=43)


@pytest.fixture(scope="session")
def ebiz():
    """A small EBiz warehouse (the paper's running example)."""
    return build_ebiz(num_customers=80, num_stores=10, num_trans=1200,
                      seed=7)


@pytest.fixture(scope="session")
def online_session(aw_online):
    """A KDAP session over the small AW_ONLINE warehouse."""
    return KdapSession(aw_online)


@pytest.fixture(scope="session")
def reseller_session(aw_reseller):
    """A KDAP session over the small AW_RESELLER warehouse."""
    return KdapSession(aw_reseller)


@pytest.fixture(scope="session")
def ebiz_session(ebiz):
    """A KDAP session over the EBiz warehouse."""
    return KdapSession(ebiz)
