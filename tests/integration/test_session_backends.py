"""Acceptance: sessions on both backends return identical explore results.

`KdapSession(..., backend="sqlite")` and `backend="memory"` must produce
identical `ExploreResult` facets on the AdventureWorks and EBiz example
queries, and the plan-fingerprint cache must show a non-zero hit rate on
repeated exploration.
"""

import pytest

from repro.core import KdapSession


def _assert_same_result(mem_result, sq_result):
    assert mem_result.subspace.fact_rows == sq_result.subspace.fact_rows
    assert mem_result.total_aggregate == pytest.approx(
        sq_result.total_aggregate)
    mem_facets, sq_facets = (mem_result.interface.facets,
                             sq_result.interface.facets)
    assert [f.dimension for f in mem_facets] \
        == [f.dimension for f in sq_facets]
    for mem_facet, sq_facet in zip(mem_facets, sq_facets):
        assert [a.attribute for a in mem_facet.attributes] \
            == [a.attribute for a in sq_facet.attributes]
        for mem_attr, sq_attr in zip(mem_facet.attributes,
                                     sq_facet.attributes):
            assert [e.label for e in mem_attr.entries] \
                == [e.label for e in sq_attr.entries]
            for mem_entry, sq_entry in zip(mem_attr.entries,
                                           sq_attr.entries):
                assert mem_entry.aggregate == pytest.approx(
                    sq_entry.aggregate)
                assert mem_entry.score == pytest.approx(sq_entry.score)


@pytest.fixture(scope="module")
def ebiz_sqlite_session(ebiz, ebiz_session):
    session = KdapSession(ebiz, index=ebiz_session.index,
                          backend="sqlite")
    yield session
    session.close()


@pytest.fixture(scope="module")
def online_sqlite_session(aw_online, online_session):
    session = KdapSession(aw_online, index=online_session.index,
                          backend="sqlite")
    yield session
    session.close()


class TestBackendEquivalence:
    @pytest.mark.parametrize("query", ["Columbus LCD", "camera",
                                       "Seattle DVD Players"])
    def test_ebiz_queries(self, ebiz_session, ebiz_sqlite_session, query):
        mem = ebiz_session.search(query)
        sq = ebiz_sqlite_session.search(query)
        assert (mem is None) == (sq is None)
        if mem is not None:
            _assert_same_result(mem, sq)

    @pytest.mark.parametrize("query", ["Sport-100", "October Bikes"])
    def test_adventureworks_queries(self, online_session,
                                    online_sqlite_session, query):
        mem = online_session.search(query)
        sq = online_sqlite_session.search(query)
        assert (mem is None) == (sq is None)
        if mem is not None:
            _assert_same_result(mem, sq)

    def test_drill_down_parity(self, aw_online, online_session,
                               online_sqlite_session):
        mem = online_session.search("Bikes")
        sq = online_sqlite_session.search("Bikes")
        if mem is None:
            pytest.skip("no interpretation for 'Bikes'")
        gb = aw_online.groupby_attribute("DimProductCategory",
                                         "ProductCategoryName")
        domain = mem.subspace.domain(gb)
        if not domain:
            pytest.skip("empty drill-down domain")
        mem_drilled = online_session.drill_down(mem, gb, domain[0])
        sq_drilled = online_sqlite_session.drill_down(sq, gb, domain[0])
        _assert_same_result(mem_drilled, sq_drilled)


class TestPlanCache:
    def test_repeated_exploration_hits(self, ebiz, ebiz_session):
        session = KdapSession(ebiz, index=ebiz_session.index)
        first = session.search("Columbus LCD")
        assert first is not None
        hits_before = session.engine.cache_stats.hits
        second = session.search("Columbus LCD")
        stats = session.engine.cache_stats
        assert stats.hits > hits_before
        assert stats.hit_rate > 0.0
        assert first.total_aggregate == pytest.approx(
            second.total_aggregate)

    def test_sqlite_backend_also_caches(self, ebiz, ebiz_session):
        session = KdapSession(ebiz, index=ebiz_session.index,
                              backend="sqlite")
        try:
            session.search("Columbus LCD")
            sql_calls = session.engine.counters.as_dict().get(
                "SqlExecute", {}).get("calls", 0)
            session.search("Columbus LCD")
            after = session.engine.counters.as_dict()["SqlExecute"]["calls"]
            assert session.engine.cache_stats.hits > 0
            # repeats are served from the plan cache, not re-run as SQL
            assert after == sql_calls
        finally:
            session.close()
