"""Acceptance: "revenue by month top 3" end to end.

No keyword of that query hits a cell value on the scale warehouse —
the whole interpretation comes from the metadata matcher ("revenue" →
measure, via synonym) and the pattern matcher ("by month" → group-by
hint, "top 3" → order+limit).  The explore phase must promote the
hinted attribute, aggregate the hinted measure, and reshape its facet
entries — identically on both backends and through the HTTP service.
"""

import pytest

from repro.core import KdapSession
from repro.datasets.scale import build_scale
from repro.service import KdapService, ServiceConfig
from tests.service.conftest import ServiceClient

QUERY = "revenue by month top 3"


@pytest.fixture(scope="module")
def scale():
    return build_scale(num_facts=4000, seed=7)


def month_facet(result):
    for facet in result.interface.facets:
        for attr in facet.attributes:
            if str(attr.attribute.ref) == "DimDate.MonthName":
                return attr
    raise AssertionError("DimDate.MonthName facet missing")


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_hint_query_explores_on_both_backends(scale, backend):
    with KdapSession(scale, backend=backend) as session:
        ranked = session.differentiate(QUERY)
        assert ranked, "hint-only query must produce an interpretation"
        top = ranked[0].interpretation
        assert top.measure_hint == "revenue"
        assert top.modifier.order == "desc"
        assert top.modifier.limit == 3

        result = session.explore(ranked[0])
        # empty-ray star net = the whole dataspace
        assert len(result.subspace) == scale.num_fact_rows
        attr = month_facet(result)
        assert attr.promoted
        aggregates = [entry.aggregate for entry in attr.entries]
        assert len(aggregates) == 3
        assert aggregates == sorted(aggregates, reverse=True)

        # counters flowed into the session metrics
        snapshot = session.metrics.snapshot()
        assert snapshot["counters"]["kdap.match.metadata.accepted"] >= 1
        assert snapshot["counters"]["kdap.match.pattern.accepted"] >= 2


def test_backends_agree_on_hinted_aggregates(scale):
    def run(backend):
        with KdapSession(scale, backend=backend) as session:
            result = session.search(QUERY)
            attr = month_facet(result)
            return [(e.label, round(e.aggregate, 6))
                    for e in attr.entries]

    assert run("memory") == run("sqlite")


def test_explore_endpoint_serves_hint_query(scale):
    service = KdapService(scale, ServiceConfig(workers=2))
    with service:
        client = ServiceClient(service.port)
        status, body, _ = client.post("/v1/explore", {"query": QUERY})
        assert status == 200
        assert "measures[revenue]" in body["interpretation"]
        month = next(
            attr
            for facet in body["facets"]
            for attr in facet["attributes"]
            if attr["column"] == "MonthName")
        assert month["promoted"]
        assert len(month["entries"]) == 3

        # matchers selection over the wire: value-only finds nothing
        # and explains why per keyword
        status, body, _ = client.post(
            "/v1/explore", {"query": QUERY, "matchers": ["value"]})
        assert status == 404
        assert any("revenue" in note
                   for note in body["error"]["notes"])

        # invalid matcher name is a 400, not a 500
        status, body, _ = client.post(
            "/v1/explore", {"query": QUERY, "matchers": ["bogus"]})
        assert status == 400
        assert body["error"]["field"] == "matchers"
