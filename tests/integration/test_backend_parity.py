"""Randomized three-way backend parity (property tests).

For arbitrary star nets and group-by choices over EBiz, three evaluation
paths must agree exactly:

* the legacy path — unbound :class:`Subspace` loops over fact-aligned
  vectors (no plan layer at all);
* :class:`InMemoryBackend` through a :class:`QueryEngine`;
* :class:`SqliteBackend` through a :class:`QueryEngine`.

Covers subspace materialisation, whole-subspace aggregation, partition
aggregates (with and without domain restriction), empty subspaces, and
groups whose keys or measures resolve to NULL (exercised separately in
tests/plan/test_backends.py on a schema that actually contains NULLs).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.plan import QueryEngine
from repro.warehouse import Subspace

from .test_engine_agreement import CITIES, GROUPS, build_net

GB_CHOICES = [
    ("PGROUP", "GroupName"),
    ("LOCATION", "City"),
    ("TIMEMONTH", "Quarter"),
    ("STORE", "StoreName"),
]


@pytest.fixture(scope="module")
def engines(ebiz):
    memory = QueryEngine(ebiz, backend="memory")
    sqlite = QueryEngine(ebiz, backend="sqlite")
    yield memory, sqlite
    sqlite.close()


@given(
    groups=st.lists(st.sampled_from(GROUPS), min_size=0, max_size=3,
                    unique=True),
    cities=st.lists(st.sampled_from(CITIES), min_size=0, max_size=3,
                    unique=True),
    gb_choice=st.sampled_from(GB_CHOICES),
    restrict_domain=st.booleans(),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_three_way_backend_parity(ebiz, engines, groups, cities,
                                  gb_choice, restrict_domain):
    memory, sqlite = engines
    net = build_net(ebiz, groups, cities)
    gb = ebiz.groupby_attribute(*gb_choice)

    legacy = net.evaluate(ebiz)
    via_memory = memory.evaluate(net)
    via_sqlite = sqlite.evaluate(net)
    assert via_memory.fact_rows == legacy.fact_rows
    assert via_sqlite.fact_rows == legacy.fact_rows

    want_total = legacy.aggregate("revenue")
    assert via_memory.aggregate("revenue") == pytest.approx(want_total)
    assert via_sqlite.aggregate("revenue") == pytest.approx(want_total)

    domain = None
    if restrict_domain:
        # mix present values with one that selects nothing
        domain = legacy.domain(gb)[:3] + ["__no_such_value__"]
    want = legacy.partition_aggregates(gb, "revenue", domain=domain)
    got_memory = via_memory.partition_aggregates(gb, "revenue",
                                                 domain=domain)
    got_sqlite = via_sqlite.partition_aggregates(gb, "revenue",
                                                 domain=domain)
    assert set(got_memory) == set(want)
    assert set(got_sqlite) == set(want)
    for key, value in want.items():
        assert got_memory[key] == pytest.approx(value), key
        assert got_sqlite[key] == pytest.approx(value), key


def test_empty_subspace_three_ways(ebiz, engines):
    """A net whose rays select disjoint regions yields the empty DS'."""
    memory, sqlite = engines
    empty = Subspace.of(ebiz, (), label="empty")
    gb = ebiz.groupby_attribute("LOCATION", "City")
    want_groups = empty.partition_aggregates(gb, "revenue")
    want_total = empty.aggregate("revenue")
    for engine in (memory, sqlite):
        bound = engine.bind(empty)
        assert bound.aggregate("revenue") == want_total == 0
        assert bound.partition_aggregates(gb, "revenue") == want_groups
        assert bound.partition_aggregates(
            gb, "revenue", domain=["Seattle", "Columbus"],
        ) == {"Seattle": 0, "Columbus": 0}
