"""End-to-end scenarios lifted directly from the paper's narrative."""

import pytest

from repro.core import ExploreConfig, build_facets


class TestExample31ColumbusLcd:
    """Example 3.1: the 'Columbus LCD' ambiguity fan-out on EBiz."""

    @pytest.fixture(scope="class")
    def ranked(self, ebiz_session):
        return ebiz_session.differentiate("Columbus LCD", limit=20)

    def test_multiple_interpretations(self, ranked):
        assert len(ranked) >= 4

    def test_columbus_ambiguity_covered(self, ranked):
        columbus_domains = set()
        for scored in ranked:
            for ray in scored.star_net.rays:
                if "Columbus" in " ".join(ray.hit_group.values):
                    columbus_domains.add(
                        (ray.hit_group.domain, ray.dimension))
        # city via customer, city via store, and the holiday reading
        assert (("LOCATION", "City"), "Customer") in columbus_domains
        assert (("LOCATION", "City"), "Store") in columbus_domains
        assert any(domain == ("HOLIDAY", "Event")
                   for domain, _d in columbus_domains)

    def test_lcd_attribute_instance_ambiguity(self, ranked):
        lcd_domains = set()
        for scored in ranked:
            for ray in scored.star_net.rays:
                if any("LCD" in v for v in ray.hit_group.values):
                    lcd_domains.add(ray.hit_group.domain)
        # LCD hits both the group level and the product level
        assert ("PGROUP", "GroupName") in lcd_domains
        assert ("PRODUCT", "ProductName") in lcd_domains


class TestTable1CaliforniaMountainBikes:
    """Table 1: top star nets for 'California Mountain Bikes'."""

    @pytest.fixture(scope="class")
    def ranked(self, online_session):
        return online_session.differentiate("California Mountain Bikes",
                                            limit=10)

    def test_intended_interpretation_is_top1(self, ranked):
        top = ranked[0].star_net
        domains = {r.hit_group.domain for r in top.rays}
        assert domains == {
            ("DimGeography", "StateProvinceName"),
            ("DimProductSubcategory", "ProductSubcategoryName"),
        }
        values = {v for r in top.rays for v in r.hit_group.values}
        assert values == {"California", "Mountain Bikes"}

    def test_california_street_interpretation_present(self, ranked):
        """Table 1 row 2: the street-address reading of 'California'."""
        assert any(
            any(r.hit_group.domain == ("DimCustomer", "AddressLine1")
                for r in scored.star_net.rays)
            for scored in ranked
        )

    def test_scores_strictly_ordered(self, ranked):
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestTable2Facets:
    """Table 2: the Product-dimension facet for the chosen star net."""

    @pytest.fixture(scope="class")
    def product_facet(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=1)
        config = ExploreConfig(top_k_attributes=4, display_intervals=3)
        ui = build_facets(online_session.schema, ranked[0].star_net,
                          config=config)
        return ui.facet("Product")

    def test_subcategory_always_selected(self, product_facet):
        columns = [a.attribute.ref.column for a in product_facet.attributes]
        assert "ProductSubcategoryName" in columns

    def test_mix_of_categorical_and_numerical(self, product_facet):
        from repro.warehouse import AttributeKind
        kinds = {a.attribute.kind for a in product_facet.attributes}
        assert AttributeKind.CATEGORICAL in kinds

    def test_mountain_models_surface(self, product_facet):
        model_attr = [a for a in product_facet.attributes
                      if a.attribute.ref.column == "ModelName"]
        if model_attr:
            labels = {e.label for e in model_attr[0].entries}
            assert any(label.startswith("Mountain-") for label in labels)


class TestSydneyWorstCase:
    """§6.3: 'Sydney Helmet Discount' — Sydney collides with a customer
    first name, the paper's hardest query."""

    def test_both_readings_generated(self, online_session):
        ranked = online_session.differentiate("Sydney Helmet Discount",
                                              limit=20)
        sydney_domains = {
            ray.hit_group.domain
            for scored in ranked
            for ray in scored.star_net.rays
            if "Sydney" in ray.hit_group.values
        }
        assert ("DimGeography", "City") in sydney_domains
        assert ("DimCustomer", "FirstName") in sydney_domains


class TestSeattlePortland:
    """§4.2: 'Seattle Portland TV'-style cross-role interpretation exists
    (customers from one city buying in stores of another) on EBiz."""

    def test_cross_role_candidate(self, ebiz_session):
        ranked = ebiz_session.differentiate("Seattle Portland", limit=30)
        combos = {
            tuple(sorted((r.dimension or "") for r in s.star_net.rays))
            for s in ranked
        }
        assert ("Customer", "Store") in combos
