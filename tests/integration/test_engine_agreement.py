"""Property test: three-way engine agreement on random star nets.

For arbitrary value selections over the EBiz product-group and store-city
domains, the star net built from them must produce the same aggregate
through all three execution paths:

* subspace evaluation (semi-join chains over fact-row sets),
* the in-memory JoinQuery executor (hash-join trees),
* sqlite running the generated SQL.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import HitGroup, Ray, StarNet
from repro.relational import SqliteBackend
from repro.relational.executor import execute_join_query
from repro.textindex import SearchHit
from repro.warehouse import path_from_fk_names

GROUPS = ["LCD Projectors", "DLP Projectors", "Flat Panel(LCD)",
          "CRT Monitors", "LCD TVs", "Plasma TVs", "VCR", "DVD Players"]
CITIES = ["Columbus", "Seattle", "San Jose", "Portland", "Denver"]


@pytest.fixture(scope="module")
def backend(ebiz):
    with SqliteBackend(ebiz.database) as b:
        yield b


def build_net(schema, group_values, city_values):
    rays = []
    if group_values:
        hits = tuple(SearchHit("PGROUP", "GroupName", v, 1.0)
                     for v in group_values)
        path = path_from_fk_names(
            schema.database, "TRANSITEM",
            ["fk_item_product", "fk_product_group"]).reversed()
        rays.append(Ray(HitGroup("PGROUP", "GroupName", hits, ("k1",)),
                        path, "Product"))
    if city_values:
        hits = tuple(SearchHit("LOCATION", "City", v, 1.0)
                     for v in city_values)
        path = path_from_fk_names(
            schema.database, "TRANSITEM",
            ["fk_item_trans", "fk_trans_store", "fk_store_loc"]).reversed()
        rays.append(Ray(HitGroup("LOCATION", "City", hits, ("k2",)),
                        path, "Store"))
    return StarNet("TRANSITEM", tuple(rays))


@given(
    groups=st.lists(st.sampled_from(GROUPS), min_size=1, max_size=4,
                    unique=True),
    cities=st.lists(st.sampled_from(CITIES), min_size=0, max_size=3,
                    unique=True),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_three_way_agreement(ebiz, backend, groups, cities):
    net = build_net(ebiz, groups, cities)
    want = net.evaluate(ebiz).aggregate("revenue")
    query = net.to_join_query(ebiz, "revenue")
    in_memory = execute_join_query(ebiz.database, query)[0][0]
    via_sqlite = backend.execute(query.to_sql())[0][0] or 0.0
    assert in_memory == pytest.approx(want)
    assert via_sqlite == pytest.approx(want, rel=1e-9)
