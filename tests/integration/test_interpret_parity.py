"""Pipeline-vs-legacy parity (property tests).

The staged pipeline's value-only chain must reproduce the pre-refactor
front end *exactly*: same candidate star nets, same scores, same order.
The legacy path (:func:`generate_candidates` + :func:`rank_candidates`)
is kept in the tree as the pinned reference, so any drift in phrase
merging, enumeration caps, dedup, or ranking shows up here.

Also pins the fallback guarantee: with the full default chain enabled,
a query whose keywords all hit cell values never changes — metadata and
pattern matchers only ever *add* interpretations for keywords the value
matcher rejects.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    KdapSession,
    RankingMethod,
    generate_candidates,
    interpret_query,
    rank_candidates,
    rank_interpretations,
)
from repro.core.generation import DEFAULT_CONFIG

# keyword pool mixing cell values (several attribute domains, phrase
# fragments, fuzzy-adjacent words) with junk that matches nothing
KEYWORDS = [
    "Road", "Bikes", "Mountain", "France", "Germany", "October",
    "December", "Silver", "Touring", "Europe", "Clothing", "Manager",
    "qqqzz",
]

METHODS = [RankingMethod.STANDARD, RankingMethod.BASELINE]


def _shape(ranked):
    """The observable output: interpretation text + rounded score."""
    return [(str(s.star_net), round(s.score, 9)) for s in ranked]


@given(
    words=st.lists(st.sampled_from(KEYWORDS), min_size=1, max_size=3),
    method=st.sampled_from(METHODS),
)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_value_only_pipeline_matches_legacy(aw_online, online_session,
                                            words, method):
    query = " ".join(words)
    index = online_session.index

    legacy = rank_candidates(
        generate_candidates(aw_online, index, query, DEFAULT_CONFIG),
        method)
    interps, _report = interpret_query(
        aw_online, index, query, DEFAULT_CONFIG, matchers=("value",),
        chain=online_session.chain)
    staged = rank_interpretations(interps, method)

    assert _shape(staged) == _shape(legacy)
    for scored in staged:
        assert scored.interpretation.confidence == 1.0
        assert not scored.interpretation.has_hints


@given(words=st.lists(st.sampled_from(
    [w for w in KEYWORDS if w != "qqqzz"]), min_size=1, max_size=2))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_full_chain_is_identity_on_value_queries(aw_online,
                                                 online_session, words):
    """Fallback semantics: when every keyword value-matches, enabling
    metadata+pattern changes nothing."""
    query = " ".join(words)
    index = online_session.index

    value_only, _ = interpret_query(
        aw_online, index, query, DEFAULT_CONFIG, matchers=("value",),
        chain=online_session.chain)
    full_chain, report = interpret_query(
        aw_online, index, query, DEFAULT_CONFIG,
        chain=online_session.chain)

    if report.counters["value.accepted"] == len(set(
            report.keywords) - set(report.skipped)):
        assert _shape(rank_interpretations(full_chain)) == \
            _shape(rank_interpretations(value_only))


@pytest.mark.parametrize("backend", ["memory", "sqlite"])
def test_differentiate_previews_agree_across_backends(aw_online,
                                                      backend):
    """The refactored differentiate (sizes included) is backend-stable."""
    with KdapSession(aw_online, backend=backend) as session:
        ranked = session.differentiate("France Touring",
                                       preview_sizes=True)
        assert ranked
        baseline = [(str(s.star_net), round(s.score, 9),
                     s.subspace_size) for s in ranked]
    with KdapSession(aw_online, backend="memory") as session:
        ranked = session.differentiate("France Touring",
                                       preview_sizes=True)
        assert [(str(s.star_net), round(s.score, 9), s.subspace_size)
                for s in ranked] == baseline
