"""Navigation and robustness: drill-down loops, empty subspaces."""

import pytest

from repro.core import ExploreConfig


class TestDrillDown:
    @pytest.fixture(scope="class")
    def base(self, online_session):
        return online_session.search("Mountain Bikes")

    def test_drill_restricts_subspace(self, online_session, base):
        gb = online_session.schema.groupby_attribute(
            "DimGeography", "StateProvinceName")
        finer = online_session.drill_down(base, gb, "California")
        assert base.subspace.contains(finer.subspace)
        assert len(finer.subspace) < len(base.subspace)

    def test_star_net_carried_over(self, online_session, base):
        gb = online_session.schema.groupby_attribute(
            "DimGeography", "StateProvinceName")
        finer = online_session.drill_down(base, gb, "California")
        assert finer.star_net is base.star_net

    def test_background_is_parent_space(self, online_session, base):
        """After drilling, instance scores measure deviation from the
        parent subspace, so shares are comparable against it."""
        gb = online_session.schema.groupby_attribute(
            "DimGeography", "StateProvinceName")
        finer = online_session.drill_down(base, gb, "California")
        assert finer.total_aggregate <= base.total_aggregate

    def test_repeated_drill(self, online_session, base):
        state = online_session.schema.groupby_attribute(
            "DimGeography", "StateProvinceName")
        color = online_session.schema.groupby_attribute(
            "DimProduct", "Color")
        step1 = online_session.drill_down(base, state, "California")
        step2 = online_session.drill_down(step1, color, "Silver")
        assert step1.subspace.contains(step2.subspace)
        assert not step2.subspace.is_empty

    def test_drill_to_empty_is_graceful(self, online_session, base):
        gb = online_session.schema.groupby_attribute(
            "DimProduct", "Color")
        finer = online_session.drill_down(base, gb, "Chartreuse")
        assert finer.subspace.is_empty
        assert finer.total_aggregate == 0.0


class TestEmptySubspaces:
    def test_contradictory_query_explores_gracefully(self, online_session):
        """'Sydney California Promotion': an Australian city AND a US
        state — a valid interpretation with an empty subspace."""
        result = online_session.search("Sydney California Promotion")
        assert result is not None
        assert result.subspace.is_empty
        assert result.total_aggregate == 0.0
        assert result.interface.facets == ()

    def test_empty_measure_filter(self, online_session):
        result = online_session.search("Road Bikes revenue>999999999")
        assert result is not None
        assert result.subspace.is_empty


class TestExploreConfigBudget:
    def test_zero_instances(self, online_session):
        result = online_session.search(
            "Road Bikes",
            explore_config=ExploreConfig(top_k_instances=0),
        )
        # numerical attributes may still render intervals; categorical
        # facets collapse, but nothing crashes
        assert result is not None
