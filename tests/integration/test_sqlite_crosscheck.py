"""Cross-validation: the in-memory engine vs sqlite3 on generated SQL.

For a spread of keyword queries, the star net's generated SQL executed on
a sqlite mirror must produce exactly the aggregate that the in-memory
subspace evaluation computes.  This is the repo's substitute for running
against the paper's commercial RDBMS.
"""

import pytest

from repro.relational import SqliteBackend

ONLINE_QUERIES = [
    "California Mountain Bikes",
    "Road Bikes",
    "October",
    "Sydney Helmet Discount",
    "Brakes Chains",
    "Europe",
]

EBIZ_QUERIES = [
    "Columbus LCD",
    "LCD",
    "Seattle",
    "Home Electronics",
]


@pytest.fixture(scope="module")
def online_backend(aw_online):
    with SqliteBackend(aw_online.database) as backend:
        yield backend


@pytest.fixture(scope="module")
def ebiz_backend(ebiz):
    with SqliteBackend(ebiz.database) as backend:
        yield backend


def check(session, backend, query, top_k=3):
    ranked = session.differentiate(query, limit=top_k)
    assert ranked, f"no interpretation for {query!r}"
    for scored in ranked:
        subspace = scored.star_net.evaluate(session.schema)
        want = subspace.aggregate("revenue")
        sql = scored.star_net.to_sql(session.schema, "revenue")
        got = backend.execute(sql)[0][0] or 0.0
        assert got == pytest.approx(want, rel=1e-9), \
            f"mismatch for {query!r}: {scored.star_net}\n{sql}"


@pytest.mark.parametrize("query", ONLINE_QUERIES)
def test_online_star_nets_match_sqlite(online_session, online_backend,
                                       query):
    check(online_session, online_backend, query)


@pytest.mark.parametrize("query", EBIZ_QUERIES)
def test_ebiz_star_nets_match_sqlite(ebiz_session, ebiz_backend, query):
    check(ebiz_session, ebiz_backend, query)


def test_groupby_breakdown_matches_sqlite(online_session, online_backend):
    """Facet partition aggregates equal a SQL GROUP BY over the mirror."""
    schema = online_session.schema
    ranked = online_session.differentiate("Road Bikes", limit=1)
    net = ranked[0].star_net
    subspace = net.evaluate(schema)
    gb = schema.groupby_attribute("DimProduct", "Color")
    want = subspace.partition_aggregates(gb, "revenue")

    query = net.to_join_query(schema, "revenue")
    # extend the join query with the group-by attribute's path
    alias = "f"
    existing = {(e.left_alias, e.right_table): e.right_alias
                for e in query.edges}
    for step in gb.path_from_fact.steps:
        key = (alias, step.target)
        if key in existing:
            alias = existing[key]
            continue
        from repro.relational import JoinEdge
        new_alias = f"g{len(query.edges)}"
        query.edges.append(JoinEdge(alias, step.source_column, step.target,
                                    new_alias, step.target_column))
        alias = new_alias
    query.group_by.append((alias, gb.ref.column))

    rows = online_backend.execute(query.to_sql())
    got = {value: agg for value, agg in rows}
    assert set(got) == set(want)
    for value, agg in want.items():
        assert got[value] == pytest.approx(agg, rel=1e-9)
