"""The ``repro serve`` subcommand: flag mapping and SIGTERM drain.

Flag mapping is tested through :func:`repro.cli._serve_config` without
binding a socket; the signal test runs the real
:func:`serve_until_signalled` loop on the main thread (signal handlers
require it) and delivers a genuine SIGTERM from a helper thread.
"""

import os
import signal
import threading

from repro.cli import _build_parser, _serve_config
from repro.service import KdapService, ServiceConfig, serve_until_signalled

from .conftest import ServiceClient


class TestFlagMapping:
    def test_top_level_flags_become_server_ceilings(self):
        args = _build_parser().parse_args([
            "--deadline-ms", "1500", "--max-rows", "99",
            "--max-interpretations", "3", "--backend", "sqlite",
            "--resilient", "--workers", "2",
            "serve", "--pool-workers", "3", "--queue-depth", "5",
            "--enqueue-deadline-ms", "250", "--drain-deadline-s", "1.5",
            "--chaos-error-rate", "0.2", "--chaos-seed", "7",
            "--trace-dir", "traces",
        ])
        config = _serve_config(args)
        assert config.max_deadline_ms == 1500.0
        assert config.max_rows == 99
        assert config.max_interpretations == 3
        assert config.backend == "sqlite"
        assert config.resilient is True
        assert config.session_workers == 2
        assert config.workers == 3
        assert config.queue_depth == 5
        assert config.enqueue_deadline_ms == 250.0
        assert config.drain_deadline_s == 1.5
        assert config.chaos_error_rate == 0.2
        assert config.chaos_seed == 7
        assert config.trace_dir == "traces"

    def test_defaults_always_give_a_finite_deadline_ceiling(self):
        args = _build_parser().parse_args(["serve"])
        config = _serve_config(args)
        assert config.max_deadline_ms == 30_000.0  # never unbounded
        assert config.session_workers == 1
        assert config.workers == 4


class TestSignalDrain:
    def test_sigterm_serves_then_drains_cleanly(self, ebiz, ebiz_index):
        service = KdapService(
            ebiz, ServiceConfig(workers=1, queue_depth=4),
            index=ebiz_index)
        results = []

        def poke_then_sigterm():
            client = ServiceClient(service.port)
            results.append(client.post("/v1/explore",
                                       {"query": "Columbus"},
                                       timeout=30.0))
            os.kill(os.getpid(), signal.SIGTERM)

        timer = threading.Timer(0.2, poke_then_sigterm)
        timer.start()
        try:
            rc = serve_until_signalled(service, "127.0.0.1", 0)
        finally:
            timer.cancel()
        assert rc == 0
        assert service.state == "stopped"
        status, body, _ = results[0]
        assert status == 200
        assert body["rows"] > 0
