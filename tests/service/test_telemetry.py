"""The always-on telemetry pipeline, end to end over real sockets.

Covers the PR's acceptance surfaces: the structured event timeline on
``/v1/eventz``, tail-based trace sampling under ``--trace-dir`` (errored
and deadline requests always persisted, healthy fast ones at the head
rate), the Prometheus exposition on ``/v1/metricz`` (strict-parser
round-trip against live output), the merged slow-query log on
``/v1/slowlogz``, SLO state in ``/v1/statz``, statz rollup correctness
under concurrent workers (counters sum, histogram buckets merge, no
double-count with the shared materialization tier), and the atomic
trace-write fix for drain.
"""

import glob
import json
import os
import threading
import time

import pytest

from repro.obs.promexport import parse_prometheus
from repro.relational.errors import DeadlineExceeded
from repro.service import KdapService, ServiceConfig

from .conftest import ServiceClient


def _service(ebiz, ebiz_index, **overrides) -> KdapService:
    defaults = dict(workers=2, queue_depth=8, max_deadline_ms=30_000.0)
    defaults.update(overrides)
    return KdapService(ebiz, ServiceConfig(**defaults), index=ebiz_index)


class DeadlineService(KdapService):
    """Every request dies on the worker with a deadline expiry — the
    deterministic 504 the sampling/SLO tests need (a tiny client
    deadline hint degrades gracefully to 404/partial instead)."""

    def _dispatch(self, session, spec, budget):
        raise DeadlineExceeded("injected deadline expiry")


class SlowTelemetryService(KdapService):
    """Requests take a fixed wall time, so a drain reliably overlaps an
    in-flight request."""

    sleep_s = 0.5

    def _dispatch(self, session, spec, budget):
        time.sleep(self.sleep_s)
        return 200, {"slept": self.sleep_s}


def _wait_for(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestEventz:
    def test_lifecycle_events_for_one_request(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post("/v1/explore",
                                          {"query": "Columbus"})
            assert status == 200
            status, payload = client.get("/v1/eventz?n=50")
            assert status == 200
            events = [event for event in payload["events"]
                      if event.get("request_id") == body["request_id"]]
            kinds = [event["kind"] for event in events]
            assert kinds == ["admitted", "started", "finished"]
            finished = events[-1]
            assert finished["op"] == "explore"
            assert finished["status"] == 200
            assert finished["elapsed_ms"] > 0
            assert "interpretation_fp" in finished
            assert payload["log"]["emitted"] >= 3

    def test_eventz_n_caps_the_tail(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            for _ in range(2):
                client.post("/v1/explore", {"query": "Columbus"})
            status, payload = client.get("/v1/eventz?n=2")
            assert status == 200
            assert len(payload["events"]) == 2
            # newest last: seq strictly increasing
            seqs = [event["seq"] for event in payload["events"]]
            assert seqs == sorted(seqs)

    def test_eventz_rejects_bad_n(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, payload = client.get("/v1/eventz?n=potato")
            assert status == 400
            assert payload["error"]["type"] == "bad_request"

    def test_shed_emits_event(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index, workers=1,
                      queue_depth=1) as service:
            # bypass HTTP: fill the queue directly so the next submit
            # sheds deterministically
            service.queue.drain()
            client = ServiceClient(service.port)
            status, _, _ = client.post("/v1/explore",
                                       {"query": "Columbus"})
            assert status == 503
            kinds = [event["kind"] for event
                     in service.events.tail(10)]
            assert "rejected" in kinds

    def test_event_sink_file(self, ebiz, ebiz_index, tmp_path):
        sink = tmp_path / "events.jsonl"
        with _service(ebiz, ebiz_index,
                      event_path=str(sink)) as service:
            client = ServiceClient(service.port)
            client.post("/v1/explore", {"query": "Columbus"})
            service.shutdown()  # flushes the sink
        lines = [json.loads(line) for line
                 in sink.read_text().splitlines()]
        assert any(line["kind"] == "finished" for line in lines)

    def test_telemetry_off_disables_eventz(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index, telemetry=False) as service:
            client = ServiceClient(service.port)
            status, payload = client.get("/v1/eventz")
            assert status == 404
            assert payload["error"]["type"] == "telemetry_disabled"


class TestTailSampling:
    def test_errored_traces_always_persist(self, ebiz, ebiz_index,
                                           tmp_path):
        trace_dir = str(tmp_path / "traces")
        config = ServiceConfig(workers=1, queue_depth=8,
                               trace_dir=trace_dir, trace_head_n=0)
        with DeadlineService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post(
                "/v1/explore", {"query": "Columbus"})
            assert status == 504
            path = os.path.join(trace_dir,
                                f"trace-{body['request_id']}.json")
            assert os.path.exists(path)
            json.load(open(path, encoding="utf-8"))  # complete JSON
            snapshot = service.sampler.snapshot()
            assert snapshot["persisted"]["error"] == 1

    def test_healthy_fast_traces_follow_head_rate(self, ebiz,
                                                  ebiz_index, tmp_path):
        trace_dir = str(tmp_path / "traces")
        total = 9
        with _service(ebiz, ebiz_index, workers=1, trace_dir=trace_dir,
                      trace_head_n=4,
                      trace_slow_ms=60_000.0) as service:
            client = ServiceClient(service.port)
            for _ in range(total):
                status, _, _ = client.post("/v1/explore",
                                           {"query": "Columbus"})
                assert status == 200
            snapshot = service.sampler.snapshot()
        written = glob.glob(os.path.join(trace_dir, "trace-*.json"))
        # 1-in-4 of nine requests: requests 1, 5, 9
        assert snapshot["considered"] == total
        assert snapshot["persisted"]["head"] == 3
        assert snapshot["dropped"] == total - 3
        assert len(written) == 3

    def test_truncated_requests_persist(self, ebiz, ebiz_index,
                                        tmp_path):
        trace_dir = str(tmp_path / "traces")
        with _service(ebiz, ebiz_index, workers=1, trace_dir=trace_dir,
                      trace_head_n=0) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post(
                "/v1/explore",
                {"query": "Columbus", "budget": {"max_rows": 40}})
            assert status == 200 and body["partial"] is True
            path = os.path.join(trace_dir,
                                f"trace-{body['request_id']}.json")
            assert os.path.exists(path)
            assert service.sampler.snapshot()["persisted"][
                "truncated"] == 1

    def test_telemetry_off_writes_every_trace(self, ebiz, ebiz_index,
                                              tmp_path):
        trace_dir = str(tmp_path / "traces")
        with _service(ebiz, ebiz_index, workers=1, trace_dir=trace_dir,
                      telemetry=False) as service:
            client = ServiceClient(service.port)
            for _ in range(3):
                client.post("/v1/explore", {"query": "Columbus"})
        assert len(glob.glob(os.path.join(trace_dir,
                                          "trace-*.json"))) == 3


class TestAtomicTraceWrites:
    def test_failed_write_leaves_no_partial_file(self, ebiz, ebiz_index,
                                                 tmp_path, monkeypatch):
        """The drain regression: an interrupted trace write must never
        leave truncated JSON at the final path (tmp + os.replace)."""
        trace_dir = str(tmp_path / "traces")
        with _service(ebiz, ebiz_index, workers=1,
                      trace_dir=trace_dir) as service:

            class ExplodingTracer:
                def to_chrome_trace(self):
                    raise OSError("disk full mid-serialisation")

            service._write_trace(ExplodingTracer(), "r999999")
            assert os.listdir(trace_dir) == []  # no final, no tmp

    def test_drained_in_flight_trace_is_complete_json(self, ebiz,
                                                      ebiz_index,
                                                      tmp_path):
        """A request in flight when drain starts still lands a complete,
        parseable trace file."""
        trace_dir = str(tmp_path / "traces")
        config = ServiceConfig(workers=1, queue_depth=8,
                               trace_dir=trace_dir, trace_head_n=1,
                               drain_deadline_s=30.0)
        service = SlowTelemetryService(ebiz, config, index=ebiz_index)
        service.start()
        try:
            client = ServiceClient(service.port)
            result = {}

            def request():
                result["response"] = client.post(
                    "/v1/explore", {"query": "Columbus"})

            thread = threading.Thread(target=request)
            thread.start()
            # drain only once the request is actually executing; the
            # drain must then wait it out and land a complete trace
            assert _wait_for(lambda: service.pool.in_flight >= 1)
            service.drain()
            thread.join(timeout=60.0)
            assert not thread.is_alive()
            status, body, _ = result["response"]
            assert status == 200
            path = os.path.join(trace_dir,
                                f"trace-{body['request_id']}.json")
            assert os.path.exists(path)
            trace = json.load(open(path, encoding="utf-8"))
            assert trace["traceEvents"]
            assert not glob.glob(os.path.join(trace_dir, "*.tmp"))
        finally:
            service.shutdown()


class TestMetricz:
    def test_round_trip_through_strict_parser(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            client.post("/v1/explore", {"query": "Columbus"})
            status, text, content_type = client.get_text("/v1/metricz")
            assert status == 200
            assert content_type.startswith("text/plain")
            families = parse_prometheus(text)  # strict: raises on defect
            assert families["kdap_service_admitted"]["samples"] == [
                ("kdap_service_admitted", {}, 1.0)]
            histogram = families["kdap_service_seconds_explore"]
            assert histogram["type"] == "histogram"
            count = [value for name, _labels, value
                     in histogram["samples"]
                     if name.endswith("_count")]
            assert count == [1.0]

    def test_runtime_gauges_present(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, text, _ = client.get_text("/v1/metricz")
            families = parse_prometheus(text)
            for gauge in ("kdap_runtime_queue_depth",
                          "kdap_runtime_in_flight",
                          "kdap_runtime_worker_utilization",
                          "kdap_runtime_shed_rate"):
                assert gauge in families, gauge

    def test_worker_metrics_roll_into_exposition(self, ebiz,
                                                 ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            for _ in range(3):
                client.post("/v1/explore", {"query": "Columbus"})
            status, text, _ = client.get_text("/v1/metricz")
            families = parse_prometheus(text)
            # kdap.explore.seconds lives in per-worker session
            # registries, not the server registry — its presence proves
            # the rollup crossed registries
            explore = families["kdap_explore_seconds"]
            count = [value for name, _labels, value in explore["samples"]
                     if name.endswith("_count")]
            assert count == [3.0]


class TestStatzRollup:
    def test_concurrent_workers_sum_without_double_count(self, ebiz,
                                                         ebiz_index):
        with _service(ebiz, ebiz_index, workers=2) as service:
            client = ServiceClient(service.port)
            total = 8
            threads = [threading.Thread(target=client.post, args=(
                "/v1/explore", {"query": "Columbus"}))
                for _ in range(total)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            status, statz = client.get("/v1/statz")
            assert status == 200
            # counters: rollup equals the sum over workers, exactly
            per_worker = [worker["metrics"]["counters"]
                          for worker in statz["workers"]]
            for name, value in statz["rollup"]["counters"].items():
                assert value == sum(counters.get(name, 0)
                                    for counters in per_worker), name
            # histograms: merged count equals the per-worker sum
            explore = statz["rollup"]["histograms"][
                "kdap.explore.seconds"]
            assert explore["count"] == total
            per_worker_counts = sum(
                worker["metrics"]["histograms"]
                .get("kdap.explore.seconds", {}).get("count", 0)
                for worker in statz["workers"])
            assert per_worker_counts == total
            # the shared materialization tier reports once, not per
            # worker: its snapshot is the tier's own accounting, and
            # the kdap.materialize.* counters in the rollup come only
            # from per-worker registries
            tier = statz["rollup"]["materialize"]
            hits = statz["rollup"]["counters"].get(
                "kdap.materialize.hit", 0)
            assert tier["hits"] == hits

    def test_statz_has_telemetry_sections(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            client.post("/v1/explore", {"query": "Columbus"})
            _, statz = client.get("/v1/statz")
            assert statz["config"]["telemetry"] is True
            assert statz["slo"]["observed"] == 1
            assert statz["slo"]["windows"]["short"]["total"] == 1
            assert statz["events"]["emitted"] >= 3
            assert statz["slowlog"]["observed"] >= 1

    def test_telemetry_off_statz_omits_sections(self, ebiz,
                                                ebiz_index):
        with _service(ebiz, ebiz_index, telemetry=False) as service:
            client = ServiceClient(service.port)
            client.post("/v1/explore", {"query": "Columbus"})
            _, statz = client.get("/v1/statz")
            assert "slo" not in statz
            assert "events" not in statz
            assert "sampling" not in statz


class TestSlowlogz:
    def test_slow_queries_surface_with_request_ids(self, ebiz,
                                                   ebiz_index):
        # threshold 0.0: every explore is "slow", so the log fills
        # deterministically
        with _service(ebiz, ebiz_index, workers=1,
                      slow_query_ms=0.0) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post("/v1/explore",
                                          {"query": "Columbus"})
            assert status == 200
            status, payload = client.get("/v1/slowlogz")
            assert status == 200
            assert payload["threshold_ms"] == 0.0
            assert payload["recorded"] >= 1
            record = payload["records"][-1]
            assert record["request_id"] == body["request_id"]
            assert record["elapsed_ms"] > 0
            assert "span_tree" not in record
            assert isinstance(record["has_span_tree"], bool)

    def test_slowlog_disabled(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index, slow_query_ms=None) as service:
            client = ServiceClient(service.port)
            client.post("/v1/explore", {"query": "Columbus"})
            status, payload = client.get("/v1/slowlogz")
            assert status == 200
            assert payload["records"] == []
            assert payload["threshold_ms"] is None


class TestSloIntegration:
    def test_deadline_errors_burn_the_budget(self, ebiz, ebiz_index):
        config = ServiceConfig(workers=1, queue_depth=8,
                               slo_error_budget=0.5)
        with DeadlineService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            status, _, _ = client.post(
                "/v1/explore", {"query": "Columbus"})
            assert status == 504
            _, statz = client.get("/v1/statz")
            short = statz["slo"]["windows"]["short"]
            assert short["errors"] == 1
            assert short["bad"] == 1
            assert short["burn_rate"] == pytest.approx(2.0)  # 1/1 / 0.5
