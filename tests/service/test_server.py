"""End-to-end service behaviour over real sockets.

Covers the acceptance scenarios: a healthy request path with request-id
propagation, graceful budget degradation (200 + partial + diagnostics),
overload shedding (429, never a hang or a 500), drain semantics
(in-flight completes, late arrivals get 503), chaos mode (injected
faults absorbed by retry/failover, failover counters visible in statz),
and per-request trace files.
"""

import json
import os
import threading
import time

import pytest

from repro.service import KdapService, ServiceConfig

from .conftest import ServiceClient


def _service(ebiz, ebiz_index, **overrides) -> KdapService:
    defaults = dict(workers=2, queue_depth=8, max_deadline_ms=30_000.0)
    defaults.update(overrides)
    return KdapService(ebiz, ServiceConfig(**defaults), index=ebiz_index)


class SlowService(KdapService):
    """A service whose requests take a fixed wall time (admission tests
    must control duration without caring about query cost)."""

    sleep_s = 0.3

    def _dispatch(self, session, spec, budget):
        time.sleep(self.sleep_s)
        return 200, {"slept": self.sleep_s}


class TestRequestPath:
    def test_explore_round_trip(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, headers = client.post(
                "/v1/explore", {"query": "Columbus"})
            assert status == 200
            assert body["rows"] > 0
            assert body["facets"]
            assert body["partial"] is False
            assert body["request_id"] == headers["X-Request-Id"]

    def test_budget_exhaustion_degrades_to_200_partial(self, ebiz,
                                                       ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post(
                "/v1/explore",
                {"query": "Columbus", "budget": {"max_rows": 40}})
            assert status == 200
            assert body["partial"] is True
            assert body["diagnostics"]["truncations"]
            assert body["diagnostics"]["limits"]["max_rows"] == 40

    def test_server_ceiling_clamps_client_hint(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index, max_rows=40) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post(
                "/v1/explore",
                {"query": "Columbus", "budget": {"max_rows": 10 ** 12}})
            assert status == 400  # absurd hint is rejected outright
            status, body, _ = client.post(
                "/v1/explore",
                {"query": "Columbus", "budget": {"max_rows": 100_000}})
            assert status == 200
            assert body["partial"] is True  # ceiling 40 still bit

    def test_no_interpretation_is_404(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post(
                "/v1/explore", {"query": "xyzzy unmatchable token"})
            assert status == 404
            assert body["error"]["type"] == "no_result"

    def test_malformed_body_is_typed_400(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post("/v1/explore", None,
                                          raw=b"{nope")
            assert status == 400
            assert body["error"]["type"] == "bad_request"
            status, body, _ = client.post(
                "/v1/explore", {"query": "Columbus", "limit": 5})
            assert status == 400  # limit belongs to differentiate

    def test_unknown_path_is_404(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post("/v1/drop", {"query": "q"})
            assert status == 404

    def test_statz_and_healthz(self, ebiz, ebiz_index):
        with _service(ebiz, ebiz_index) as service:
            client = ServiceClient(service.port)
            client.post("/v1/differentiate", {"query": "Columbus"})
            status, health = client.get("/v1/healthz")
            assert status == 200
            assert health["state"] == "serving"
            status, stats = client.get("/v1/statz")
            assert status == 200
            counters = stats["service"]["counters"]
            assert counters["kdap.service.admitted"] >= 1
            assert counters["kdap.service.completed"] >= 1
            assert stats["service"]["histograms"][
                "kdap.service.seconds.differentiate"]["count"] >= 1
            # per-worker sessions surface their own isolated registries
            assert len(stats["workers"]) == 2
            assert stats["rollup"]["counters"]["kdap.queries"] >= 1


class TestOverload:
    def test_queue_full_sheds_429_never_500(self, ebiz, ebiz_index):
        config = ServiceConfig(workers=1, queue_depth=1,
                               enqueue_deadline_ms=60_000.0)
        with SlowService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            results = []

            def fire():
                results.append(client.post(
                    "/v1/explore", {"query": "Columbus"}, timeout=30.0))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(results) == 6  # nothing hung
            statuses = sorted(status for status, _, _ in results)
            assert statuses.count(429) >= 1
            assert statuses.count(200) >= 1
            assert all(status in (200, 429) for status in statuses)
            for status, body, headers in results:
                if status == 429:
                    assert headers["Retry-After"]
                    assert body["error"]["type"] == "overloaded"

    def test_enqueue_deadline_sheds_stale_work(self, ebiz, ebiz_index):
        config = ServiceConfig(workers=1, queue_depth=8,
                               enqueue_deadline_ms=50.0)
        with SlowService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            results = []

            def fire():
                results.append(client.post(
                    "/v1/explore", {"query": "Columbus"}, timeout=30.0))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
                time.sleep(0.01)  # ensure one is running, two queue
            for thread in threads:
                thread.join(timeout=30.0)
            statuses = sorted(status for status, _, _ in results)
            # the first runs; the queued ones outlive their 50 ms
            # enqueue deadline behind a 300 ms request and are shed
            assert statuses == [200, 429, 429]
            _, stats = client.get("/v1/statz")
            assert stats["service"]["counters"][
                "kdap.service.shed.queue_timeout"] == 2


class TestDrain:
    def test_in_flight_completes_and_new_requests_get_503(self, ebiz,
                                                          ebiz_index):
        config = ServiceConfig(workers=1, queue_depth=8,
                               drain_deadline_s=5.0)
        with SlowService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            results = {}

            def fire(name):
                results[name] = client.post(
                    "/v1/explore", {"query": "Columbus"}, timeout=30.0)

            in_flight = threading.Thread(target=fire, args=("early",))
            in_flight.start()
            time.sleep(0.1)  # the worker has picked it up

            drainer = threading.Thread(target=service.shutdown)
            drainer.start()
            time.sleep(0.05)  # drain has started, listener still up
            fire("late")
            drainer.join(timeout=30.0)
            in_flight.join(timeout=30.0)

            assert results["early"][0] == 200  # finished, not dropped
            status, body, headers = results["late"]
            assert status == 503
            assert body["error"]["type"] == "draining"
            assert headers["Retry-After"]
            assert service.state == "stopped"

    def test_drain_deadline_aborts_queued_work(self, ebiz, ebiz_index):
        config = ServiceConfig(workers=1, queue_depth=8,
                               enqueue_deadline_ms=60_000.0,
                               drain_deadline_s=0.05)
        with SlowService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            results = []

            def fire():
                results.append(client.post(
                    "/v1/explore", {"query": "Columbus"}, timeout=30.0))

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
                time.sleep(0.01)
            time.sleep(0.05)  # one in flight, two queued
            service.shutdown()
            for thread in threads:
                thread.join(timeout=30.0)
            statuses = sorted(status for status, _, _ in results)
            # the in-flight request finishes; the queued ones are
            # aborted by the 50 ms drain deadline
            assert statuses == [200, 503, 503]


class TestChaos:
    def test_injected_faults_are_absorbed_and_counted(self, ebiz,
                                                      ebiz_index):
        config = ServiceConfig(workers=2, chaos_error_rate=0.4,
                               chaos_seed=11)
        with KdapService(ebiz, config, index=ebiz_index) as service:
            client = ServiceClient(service.port)
            for _ in range(4):
                status, body, _ = client.post(
                    "/v1/explore", {"query": "Columbus"}, timeout=60.0)
                assert status == 200  # retry/failover hide the faults
                assert body["rows"] > 0
            _, stats = client.get("/v1/statz")
            resilience = stats["rollup"]["resilience"]
            assert resilience["transient_errors"] > 0
            assert resilience["retries"] + resilience["failovers"] > 0
            backends = {w["backend"] for w in stats["workers"]}
            assert any(b.startswith("resilient(") for b in backends)


class TestTracing:
    def test_per_request_trace_files(self, ebiz, ebiz_index, tmp_path):
        trace_dir = str(tmp_path / "traces")
        with _service(ebiz, ebiz_index, workers=1,
                      trace_dir=trace_dir) as service:
            client = ServiceClient(service.port)
            status, body, _ = client.post("/v1/explore",
                                          {"query": "Columbus"})
            assert status == 200
            path = os.path.join(trace_dir,
                                f"trace-{body['request_id']}.json")
            assert os.path.exists(path)
            with open(path, encoding="utf-8") as fh:
                trace = json.load(fh)
            names = {e["name"] for e in trace["traceEvents"]}
            assert "request" in names
            assert "explore" in names
            # engine spans carry the request id for attribution
            tagged = [e for e in trace["traceEvents"]
                      if e.get("args", {}).get("request")
                      == body["request_id"]]
            assert tagged
