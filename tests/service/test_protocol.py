"""Wire-protocol hardening: strict parsing, clamping, taxonomy mapping.

The fuzz section feeds arbitrary bytes and arbitrary JSON objects to
:func:`parse_request` and asserts the only two outcomes are a valid
:class:`RequestSpec` or a typed :class:`RequestError` — never any other
exception, which is what guarantees the server's 400 path is total.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    EXIT_TO_HTTP,
    RequestError,
    RequestSpec,
    ServiceConfig,
    make_budget,
    parse_request,
)


def _parse(kind: str, payload) -> RequestSpec:
    return parse_request(kind, json.dumps(payload).encode())


class TestParseHappyPath:
    def test_minimal_explore(self):
        spec = _parse("explore", {"query": "  Columbus  "})
        assert spec.kind == "explore"
        assert spec.query == "Columbus"
        assert spec.pick == 1
        assert spec.budget_hints == {}

    def test_full_differentiate(self):
        spec = _parse("differentiate", {
            "query": "Road Bikes", "limit": 7, "method": "baseline",
            "preview_sizes": True,
            "budget": {"deadline_ms": 1500.5, "max_rows": 10},
        })
        assert spec.limit == 7
        assert spec.method == "baseline"
        assert spec.preview_sizes is True
        assert spec.budget_hints == {"deadline_ms": 1500.5,
                                     "max_rows": 10}


class TestParseRejections:
    @pytest.mark.parametrize("body", [
        b"", b"not json", b"\xff\xfe", b"[1, 2]", b'"a string"',
        b"null", b"42",
    ])
    def test_non_object_bodies(self, body):
        with pytest.raises(RequestError):
            parse_request("explore", body)

    def test_unknown_field(self):
        with pytest.raises(RequestError, match="buget"):
            _parse("explore", {"query": "q", "buget": {}})

    def test_field_from_other_endpoint(self):
        # "limit" belongs to differentiate, not explore
        with pytest.raises(RequestError, match="limit"):
            _parse("explore", {"query": "q", "limit": 5})

    @pytest.mark.parametrize("query", [None, 12, "", "   ", ["q"],
                                       "x" * 10_001])
    def test_bad_query(self, query):
        with pytest.raises(RequestError):
            _parse("explore", {"query": query})

    @pytest.mark.parametrize("pick", [0, -1, 1001, 1.5, True, "2"])
    def test_bad_pick(self, pick):
        with pytest.raises(RequestError):
            _parse("explore", {"query": "q", "pick": pick})

    def test_bad_method(self):
        with pytest.raises(RequestError, match="method"):
            _parse("differentiate", {"query": "q", "method": "best"})

    def test_unknown_endpoint_kind(self):
        with pytest.raises(RequestError, match="endpoint"):
            parse_request("drop_tables", b"{}")


class TestBudgetHintRejections:
    @pytest.mark.parametrize("budget", [
        [], "fast", 5,                      # not an object
        {"rows": 5},                        # unknown hint name
        {"max_rows": -1},                   # negative
        {"max_rows": 0},                    # zero
        {"max_rows": 10 ** 18},             # absurd
        {"deadline_ms": 1e19},              # absurd deadline
        {"max_rows": 1.5},                  # count must be an int
        {"max_rows": True},                 # bool is not a count
        {"deadline_ms": "100"},             # string number
        {"deadline_ms": float("nan")},
        {"deadline_ms": float("inf")},
    ])
    def test_rejected(self, budget):
        payload = json.dumps({"query": "q", "budget": budget},
                             allow_nan=True).encode()
        with pytest.raises(RequestError):
            parse_request("explore", payload)

    def test_error_names_the_field(self):
        with pytest.raises(RequestError) as excinfo:
            _parse("explore", {"query": "q", "budget": {"max_rows": -5}})
        assert excinfo.value.field == "budget.max_rows"
        assert excinfo.value.payload()["error"]["type"] == "bad_request"


class TestMakeBudget:
    def test_hint_clamped_by_ceiling(self):
        config = ServiceConfig(max_deadline_ms=1000.0, max_rows=100)
        spec = RequestSpec(kind="explore", query="q", budget_hints={
            "deadline_ms": 60_000.0, "max_rows": 10_000})
        budget = make_budget(spec, config)
        assert budget.deadline_ms == 1000.0
        assert budget.max_rows == 100

    def test_modest_hint_survives(self):
        config = ServiceConfig(max_deadline_ms=30_000.0, max_rows=100)
        spec = RequestSpec(kind="explore", query="q", budget_hints={
            "deadline_ms": 500.0, "max_rows": 7})
        budget = make_budget(spec, config)
        assert budget.deadline_ms == 500.0
        assert budget.max_rows == 7

    def test_no_hints_get_server_ceilings(self):
        config = ServiceConfig(max_deadline_ms=2000.0)
        budget = make_budget(RequestSpec(kind="explore", query="q"),
                             config)
        assert budget.deadline_ms == 2000.0  # always finite
        assert budget.max_rows is None


class TestTaxonomy:
    def test_every_cli_exit_code_is_mapped(self):
        assert set(EXIT_TO_HTTP) == {0, 1, 2, 3, 4, 5, 6}
        assert EXIT_TO_HTTP[3] == 504   # deadline
        assert EXIT_TO_HTTP[4] == 200   # budget -> partial, not an error
        assert EXIT_TO_HTTP[5] == 502   # backend


# ----------------------------------------------------------------------
# fuzz: parse_request is total over arbitrary input
# ----------------------------------------------------------------------
_JSON_VALUES = st.recursive(
    st.none() | st.booleans() | st.integers() |
    st.floats(allow_nan=False) | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12,
)


@settings(max_examples=150, deadline=None)
@given(body=st.binary(max_size=200))
def test_fuzz_raw_bytes_never_crash(body):
    try:
        spec = parse_request("explore", body)
    except RequestError:
        return
    assert isinstance(spec, RequestSpec)


@settings(max_examples=150, deadline=None)
@given(payload=st.dictionaries(st.text(max_size=12), _JSON_VALUES,
                               max_size=6),
       kind=st.sampled_from(["explore", "differentiate", "explain"]))
def test_fuzz_json_objects_parse_or_reject_typed(payload, kind):
    try:
        spec = parse_request(kind, json.dumps(payload).encode())
    except RequestError as exc:
        assert exc.payload()["error"]["type"] == "bad_request"
        return
    # anything accepted must be fully normalised and in range
    assert spec.query.strip() == spec.query and spec.query
    assert 1 <= spec.pick <= 1000
    assert 1 <= spec.limit <= 1000
    for name, value in spec.budget_hints.items():
        assert value > 0 and math.isfinite(value)


@settings(max_examples=100, deadline=None)
@given(hints=st.fixed_dictionaries({}, optional={
    # ranges chosen to pass validation, so the property under test is
    # the clamping, not the rejection path
    "deadline_ms": st.integers(min_value=1, max_value=3_600_000),
    "max_rows": st.integers(min_value=1, max_value=10 ** 9),
    "max_groups": st.integers(min_value=1, max_value=10 ** 9),
    "max_interpretations": st.integers(min_value=1, max_value=10 ** 9),
}))
def test_fuzz_accepted_hints_always_clamp_under_ceilings(hints):
    config = ServiceConfig(max_deadline_ms=5000.0, max_rows=500,
                           max_groups=50, max_interpretations=5)
    spec = _parse("explore", {"query": "q", "budget": hints})
    budget = make_budget(spec, config)
    assert budget.deadline_ms <= 5000.0
    assert budget.max_rows <= 500
    assert budget.max_groups <= 50
    assert budget.max_interpretations <= 5


class TestMatchersField:
    @pytest.mark.parametrize("kind", ["explore", "differentiate",
                                      "explain"])
    def test_accepted_on_every_endpoint(self, kind):
        spec = _parse(kind, {"query": "q",
                             "matchers": ["value", "pattern"]})
        assert spec.matchers == ("value", "pattern")

    def test_defaults_to_none(self):
        assert _parse("explore", {"query": "q"}).matchers is None

    @pytest.mark.parametrize("matchers", [
        [], "value", ["value", "value"], ["bogus"], [1], None,
    ])
    def test_rejections(self, matchers):
        with pytest.raises(RequestError) as exc:
            _parse("explore", {"query": "q", "matchers": matchers})
        assert exc.value.field == "matchers"
