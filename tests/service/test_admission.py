"""Admission queue and job mechanics, clock-controlled (no sockets)."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionQueue, Draining, Job, QueueFull
from repro.service.protocol import RequestSpec


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _spec() -> RequestSpec:
    return RequestSpec(kind="explore", query="q")


def _job(request_id: str, clock: FakeClock,
         deadline_s: float = 10.0) -> Job:
    return Job(_spec(), request_id, clock.now, clock.now + deadline_s)


class TestJob:
    def test_first_finish_wins(self):
        job = _job("r1", FakeClock())
        assert job.finish(200, {"ok": True})
        assert not job.finish(503, {"late": True})
        assert job.status == 200
        assert job.body == {"ok": True}
        assert job.wait(0.1)


class TestSubmit:
    def test_fifo_order(self):
        clock = FakeClock()
        queue = AdmissionQueue(4, MetricsRegistry(), clock=clock)
        jobs = [_job(f"r{i}", clock) for i in range(3)]
        for job in jobs:
            queue.submit(job)
        taken = [queue.take(0.01, lambda j: None) for _ in range(3)]
        assert [j.request_id for j in taken] == ["r0", "r1", "r2"]

    def test_full_queue_sheds(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        queue = AdmissionQueue(2, registry, clock=clock)
        queue.submit(_job("r0", clock))
        queue.submit(_job("r1", clock))
        with pytest.raises(QueueFull):
            queue.submit(_job("r2", clock))
        assert registry.counter("kdap.service.shed.queue_full").value == 1
        assert registry.counter("kdap.service.admitted").value == 2

    def test_draining_rejects_submission(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        queue = AdmissionQueue(2, registry, clock=clock)
        queue.submit(_job("r0", clock))
        queue.drain()
        with pytest.raises(Draining):
            queue.submit(_job("r1", clock))
        assert registry.counter(
            "kdap.service.rejected.draining").value == 1
        # already-admitted work stays consumable during drain
        assert queue.take(0.01, lambda j: None).request_id == "r0"


class TestTake:
    def test_expired_jobs_are_shed_at_dequeue(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        queue = AdmissionQueue(4, registry, clock=clock)
        stale = _job("stale", clock, deadline_s=1.0)
        fresh = _job("fresh", clock, deadline_s=60.0)
        queue.submit(stale)
        queue.submit(fresh)
        clock.advance(5.0)
        shed = []
        taken = queue.take(0.01, shed.append)
        assert taken.request_id == "fresh"
        assert [j.request_id for j in shed] == ["stale"]
        assert registry.counter(
            "kdap.service.shed.queue_timeout").value == 1

    def test_take_times_out_empty(self):
        queue = AdmissionQueue(2, MetricsRegistry())
        assert queue.take(0.01, lambda j: None) is None

    def test_stop_wakes_blocked_takers(self):
        queue = AdmissionQueue(2, MetricsRegistry())
        out = []

        def taker():
            out.append(queue.take(5.0, lambda j: None))

        thread = threading.Thread(target=taker)
        thread.start()
        queue.stop()
        thread.join(timeout=2.0)
        assert not thread.is_alive()
        assert out == [None]


class TestAbort:
    def test_abort_pending_completes_leftovers(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        queue = AdmissionQueue(4, registry, clock=clock)
        jobs = [_job(f"r{i}", clock) for i in range(3)]
        for job in jobs:
            queue.submit(job)
        aborted = queue.abort_pending(
            lambda j: j.finish(503, {"aborted": True}))
        assert aborted == 3
        assert all(j.status == 503 for j in jobs)
        assert len(queue) == 0
        assert registry.counter("kdap.service.aborted.drain").value == 3
        assert registry.gauge("kdap.service.queued").value == 0
