"""Service-test helpers: a tiny urllib client and shared text index."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.textindex.index import AttributeTextIndex


class ServiceClient:
    """Blocking JSON-over-HTTP client against one running service."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def post(self, path: str, payload, timeout: float = 60.0,
             raw: bytes | None = None):
        """(status, body, headers) for one POST; HTTP errors are returns,
        not raises."""
        data = raw if raw is not None else json.dumps(payload).encode()
        request = urllib.request.Request(
            self.base + path, data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read()), resp.headers
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), exc.headers

    def get(self, path: str, timeout: float = 10.0):
        try:
            with urllib.request.urlopen(self.base + path,
                                        timeout=timeout) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def get_text(self, path: str, timeout: float = 10.0):
        """(status, body_text, content_type) for non-JSON endpoints
        (``/v1/metricz`` serves Prometheus text format)."""
        with urllib.request.urlopen(self.base + path,
                                    timeout=timeout) as resp:
            return (resp.status, resp.read().decode("utf-8"),
                    resp.headers.get("Content-Type"))


@pytest.fixture(scope="session")
def ebiz_index(ebiz):
    """One shared text index so every test server skips the rebuild."""
    index = AttributeTextIndex()
    index.index_database(ebiz.database, ebiz.searchable)
    return index
