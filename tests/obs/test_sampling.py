"""TailSampler: decision priority, head cadence, accounting."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import SamplingPolicy, TailSampler


class TestSamplingPolicy:
    def test_defaults(self):
        policy = SamplingPolicy()
        assert policy.slow_ms == 1_000.0
        assert policy.head_n == 10

    @pytest.mark.parametrize("kwargs", [
        {"slow_ms": -1.0}, {"head_n": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SamplingPolicy(**kwargs)


class TestTailSampler:
    def test_first_request_is_always_head_sampled(self):
        sampler = TailSampler(SamplingPolicy(head_n=10))
        decision = sampler.decide(status=200, elapsed_ms=1.0)
        assert decision.persist and decision.reason == "head"

    def test_head_cadence_is_one_in_n(self):
        sampler = TailSampler(SamplingPolicy(head_n=5))
        kept = [sampler.decide(status=200, elapsed_ms=1.0).persist
                for _ in range(20)]
        assert kept == [True, False, False, False, False] * 4

    def test_head_zero_disables_head_sampling(self):
        sampler = TailSampler(SamplingPolicy(head_n=0))
        assert not sampler.decide(status=200, elapsed_ms=1.0).persist

    def test_errors_always_persist(self):
        sampler = TailSampler(SamplingPolicy(head_n=0))
        for status in (500, 502, 504):
            decision = sampler.decide(status=status, elapsed_ms=1.0)
            assert decision.persist and decision.reason == "error"

    def test_truncated_persists(self):
        sampler = TailSampler(SamplingPolicy(head_n=0))
        decision = sampler.decide(status=200, elapsed_ms=1.0,
                                  truncated=True)
        assert decision.persist and decision.reason == "truncated"

    def test_slow_persists(self):
        sampler = TailSampler(SamplingPolicy(slow_ms=100.0, head_n=0))
        decision = sampler.decide(status=200, elapsed_ms=150.0)
        assert decision.persist and decision.reason == "slow"
        assert not sampler.decide(status=200, elapsed_ms=99.0).persist

    def test_priority_error_over_truncated_over_slow_over_head(self):
        sampler = TailSampler(SamplingPolicy(slow_ms=10.0, head_n=1))
        assert sampler.decide(status=504, elapsed_ms=500.0,
                              truncated=True).reason == "error"
        assert sampler.decide(status=200, elapsed_ms=500.0,
                              truncated=True).reason == "truncated"
        assert sampler.decide(status=200,
                              elapsed_ms=500.0).reason == "slow"
        assert sampler.decide(status=200, elapsed_ms=1.0).reason == "head"

    def test_registry_counters(self):
        registry = MetricsRegistry()
        sampler = TailSampler(SamplingPolicy(head_n=0),
                              registry=registry)
        sampler.decide(status=500, elapsed_ms=1.0)
        sampler.decide(status=200, elapsed_ms=1.0)
        counters = registry.snapshot()["counters"]
        assert counters["kdap.trace.sampled.error"] == 1
        assert counters["kdap.trace.dropped"] == 1

    def test_snapshot_accounting(self):
        sampler = TailSampler(SamplingPolicy(slow_ms=100.0, head_n=3))
        for _ in range(6):
            sampler.decide(status=200, elapsed_ms=1.0)
        sampler.decide(status=502, elapsed_ms=1.0)
        snapshot = sampler.snapshot()
        assert snapshot["considered"] == 7
        assert snapshot["persisted"]["head"] == 2
        assert snapshot["persisted"]["error"] == 1
        assert snapshot["persisted_total"] == 3
        assert snapshot["dropped"] == 4
        assert snapshot["policy"] == {"slow_ms": 100.0, "head_n": 3}

    def test_concurrent_decisions_count_exactly_once(self):
        sampler = TailSampler(SamplingPolicy(head_n=10))

        def hammer():
            for _ in range(100):
                sampler.decide(status=200, elapsed_ms=1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = sampler.snapshot()
        assert snapshot["considered"] == 800
        # exactly 1-in-10 head sampled regardless of interleaving
        assert snapshot["persisted"]["head"] == 80
        assert snapshot["dropped"] == 720
