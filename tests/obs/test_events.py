"""EventLog: bounded ring semantics, JSONL sink, failure isolation."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.events import Event, EventLog


class TestEvent:
    def test_as_dict_envelope(self):
        event = Event(7, 123.456789, "finished",
                      {"request_id": "r000007", "status": 200})
        assert event.as_dict() == {
            "seq": 7, "ts": 123.456789, "kind": "finished",
            "request_id": "r000007", "status": 200,
        }

    def test_describe_skips_empty_fields(self):
        event = Event(1, 0.0, "shed",
                      {"reason": "queue_full", "notes": [], "op": None})
        line = event.describe()
        assert line.startswith("#1 shed")
        assert "reason=queue_full" in line
        assert "notes" not in line and "op" not in line


class TestEventLog:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog(capacity=8, clock=lambda: 1.0)
        first = log.emit("admitted", request_id="r1")
        second = log.emit("started", request_id="r1")
        assert (first.seq, second.seq) == (1, 2)
        assert log.emitted == 2

    def test_kind_is_positional_only(self):
        log = EventLog(capacity=4)
        event = log.emit("finished", op="explore")
        assert event.kind == "finished"
        assert event.fields["op"] == "explore"

    def test_ring_drops_oldest(self):
        log = EventLog(capacity=3, clock=lambda: 0.0)
        for index in range(5):
            log.emit("e", n=index)
        assert len(log) == 3
        assert log.dropped == 2
        tail = log.tail(10)
        assert [event["n"] for event in tail] == [2, 3, 4]

    def test_tail_is_newest_n_oldest_first(self):
        log = EventLog(capacity=16, clock=lambda: 0.0)
        for index in range(6):
            log.emit("e", n=index)
        assert [event["n"] for event in log.tail(3)] == [3, 4, 5]
        assert log.tail(0) == []
        with pytest.raises(ValueError):
            log.tail(-1)

    def test_snapshot_accounting(self):
        log = EventLog(capacity=2, clock=lambda: 0.0)
        for _ in range(3):
            log.emit("e")
        assert log.snapshot() == {
            "capacity": 2, "retained": 2, "emitted": 3, "dropped": 1,
            "sink": None,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_jsonl_sink_mirrors_every_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=2, sink_path=str(path),
                       clock=lambda: 10.5)
        for index in range(4):  # ring keeps 2; the sink keeps all 4
            log.emit("e", n=index)
        log.close()
        lines = [json.loads(line) for line
                 in path.read_text().splitlines()]
        assert [line["n"] for line in lines] == [0, 1, 2, 3]
        assert all(line["kind"] == "e" and line["ts"] == 10.5
                   for line in lines)

    def test_sink_failure_disables_sink_not_emit(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, sink_path=str(path))
        log.emit("ok")
        log._sink.close()  # simulate the fd dying under the log
        log.emit("after-failure")  # must not raise
        assert log._sink is None
        assert len(log) == 2  # the ring kept both

    def test_unserialisable_fields_fall_back_to_str(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, sink_path=str(path))
        log.emit("e", payload=object())
        log.close()
        assert "object object" in path.read_text()

    def test_concurrent_emit_keeps_unique_seqs(self):
        log = EventLog(capacity=1000)

        def hammer():
            for _ in range(100):
                log.emit("e")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        seqs = [event["seq"] for event in log.tail(1000)]
        assert len(seqs) == 800
        assert len(set(seqs)) == 800
