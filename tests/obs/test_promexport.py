"""Prometheus exposition: rendering, strict parsing, rollup, poller."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.promexport import (
    RuntimeStatsPoller,
    merge_histogram_states,
    metric_name,
    parse_prometheus,
    render_prometheus,
    rollup_registries,
)


class TestMetricName:
    def test_dots_become_underscores(self):
        assert metric_name("kdap.service.seconds.explore") == \
            "kdap_service_seconds_explore"

    def test_invalid_chars_sanitised(self):
        assert metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert metric_name("9lives") == "_9lives"


class TestMergeHistogramStates:
    def test_elementwise_merge(self):
        a = Histogram("h", boundaries=(1.0, 2.0))
        b = Histogram("h", boundaries=(1.0, 2.0))
        for value in (0.5, 1.5, 5.0):
            a.observe(value)
        b.observe(0.2)
        merged = merge_histogram_states([a.state(), b.state()])
        assert merged["counts"] == [2, 1, 1]
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(7.2)
        assert merged["min"] == 0.2
        assert merged["max"] == 5.0

    def test_boundary_mismatch_raises(self):
        a = Histogram("h", boundaries=(1.0, 2.0))
        b = Histogram("h", boundaries=(1.0, 3.0))
        with pytest.raises(ValueError, match="boundary mismatch"):
            merge_histogram_states([a.state(), b.state()])

    def test_empty_iterable_is_none(self):
        assert merge_histogram_states([]) is None

    def test_empty_histogram_extremes_stay_none(self):
        a = Histogram("h", boundaries=(1.0,))
        merged = merge_histogram_states([a.state()])
        assert merged["min"] is None and merged["max"] is None


class TestRollupRegistries:
    def test_counters_sum_and_gauges_sum(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("c").inc(3)
        second.counter("c").inc(4)
        first.gauge("g").set(1.5)
        second.gauge("g").set(2.5)
        rolled = rollup_registries([first, second])
        assert rolled["counters"]["c"] == 7
        assert rolled["gauges"]["g"] == 4.0

    def test_histograms_merge_across_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.histogram("h", boundaries=(1.0, 2.0)).observe(0.5)
        second.histogram("h", boundaries=(1.0, 2.0)).observe(1.5)
        rolled = rollup_registries([first, second])
        assert rolled["histograms"]["h"]["count"] == 2
        assert rolled["histograms"]["h"]["counts"] == [1, 1, 0]


class TestRenderParseRoundTrip:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("kdap.service.admitted").inc(12)
        registry.gauge("kdap.runtime.queue_depth").set(3.0)
        histogram = registry.histogram("kdap.service.seconds.explore",
                                       boundaries=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 20.0):
            histogram.observe(value)
        return registry

    def test_counter_and_gauge_lines(self):
        text = render_prometheus(self._registry())
        assert "# TYPE kdap_service_admitted counter" in text
        assert "kdap_service_admitted 12" in text
        assert "# TYPE kdap_runtime_queue_depth gauge" in text
        assert "kdap_runtime_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self._registry())
        name = "kdap_service_seconds_explore"
        assert f'{name}_bucket{{le="0.1"}} 1' in text
        assert f'{name}_bucket{{le="1"}} 3' in text
        assert f'{name}_bucket{{le="10"}} 3' in text
        assert f'{name}_bucket{{le="+Inf"}} 4' in text
        assert f"{name}_count 4" in text

    def test_round_trip_through_strict_parser(self):
        text = render_prometheus(self._registry())
        families = parse_prometheus(text)
        assert families["kdap_service_admitted"]["type"] == "counter"
        samples = families["kdap_service_admitted"]["samples"]
        assert samples == [("kdap_service_admitted", {}, 12.0)]
        histogram = families["kdap_service_seconds_explore"]
        assert histogram["type"] == "histogram"
        buckets = {labels["le"]: value for name, labels, value
                   in histogram["samples"] if name.endswith("_bucket")}
        assert buckets["+Inf"] == 4.0
        assert buckets["0.1"] == 1.0

    def test_multi_registry_rollup_renders_totals(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("c").inc(1)
        second.counter("c").inc(2)
        families = parse_prometheus(render_prometheus([first, second]))
        assert families["c"]["samples"] == [("c", {}, 3.0)]

    def test_render_ends_with_newline(self):
        assert render_prometheus(MetricsRegistry()).endswith("\n")


class TestStrictParser:
    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE x counter\nx one two three\n")

    def test_sample_without_type_raises(self):
        with pytest.raises(ValueError, match="precedes its TYPE"):
            parse_prometheus("orphan 1\n")

    def test_duplicate_type_raises(self):
        with pytest.raises(ValueError, match="duplicate TYPE"):
            parse_prometheus("# TYPE x counter\n# TYPE x counter\n")

    def test_malformed_type_line_raises(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE x nonsense\n")

    def test_bad_value_raises(self):
        with pytest.raises(ValueError, match="invalid sample value"):
            parse_prometheus("# TYPE x counter\nx abc\n")

    def test_special_values_parse(self):
        families = parse_prometheus(
            "# TYPE x gauge\nx +Inf\n# TYPE y gauge\ny NaN\n")
        assert families["x"]["samples"][0][2] == math.inf
        assert math.isnan(families["y"]["samples"][0][2])

    def test_label_escapes_decode(self):
        families = parse_prometheus(
            '# TYPE x counter\nx{path="a\\"b"} 1\n')
        assert families["x"]["samples"][0][1] == {"path": 'a"b'}


class _StubQueue:
    def __init__(self, depth):
        self._depth = depth

    def __len__(self):
        return self._depth


class _StubPool:
    def __init__(self, in_flight):
        self.in_flight = in_flight


class _StubConfig:
    workers = 4


class _StubService:
    """The poller's protocol: registry + queue + pool + config."""

    def __init__(self):
        self.registry = MetricsRegistry()
        self.queue = _StubQueue(3)
        self.pool = _StubPool(2)
        self.config = _StubConfig()


class TestRuntimeStatsPoller:
    def test_poll_once_publishes_gauges(self):
        service = _StubService()
        poller = RuntimeStatsPoller(service, interval_s=60.0)
        sample = poller.poll_once()
        assert sample["queue_depth"] == 3.0
        assert sample["in_flight"] == 2.0
        assert sample["worker_utilization"] == 0.5
        gauges = service.registry.snapshot()["gauges"]
        assert gauges["kdap.runtime.queue_depth"] == 3.0
        assert gauges["kdap.runtime.worker_utilization"] == 0.5

    def test_shed_rate_is_interval_delta(self):
        service = _StubService()
        poller = RuntimeStatsPoller(service, interval_s=60.0)
        poller.poll_once()  # baseline
        service.registry.counter("kdap.service.admitted").inc(6)
        service.registry.counter("kdap.service.shed.queue_full").inc(2)
        sample = poller.poll_once()
        assert sample["shed_rate"] == 0.25  # 2 shed of 8 arrivals
        # a quiet interval reports 0.0, not a stale rate
        assert poller.poll_once()["shed_rate"] == 0.0

    def test_start_stop_lifecycle(self):
        service = _StubService()
        poller = RuntimeStatsPoller(service, interval_s=0.01)
        poller.start()
        try:
            assert poller.polls >= 1  # start() primes the gauges
        finally:
            poller.stop()
        polls_after_stop = poller.polls
        assert poller._thread is None
        assert poller.polls == polls_after_stop

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            RuntimeStatsPoller(_StubService(), interval_s=0.0)
