"""EXPLAIN ANALYZE: plan trees annotated with actual execution stats."""

import json

import pytest

from repro.core import KdapSession
from repro.datasets import build_aw_online
from repro.obs import Tracer, tracing_scope
from repro.obs.explain import render_plan, render_span_tree


@pytest.fixture(scope="module")
def schema():
    return build_aw_online(num_facts=2000, seed=42)


class TestExplainMemory:
    def test_annotates_every_plan_node_with_actuals(self, schema):
        with KdapSession(schema) as session:
            result = session.explain("Road Bikes")
        assert result is not None
        assert result.backend == "memory"
        assert "Road" in result.interpretation
        # the subspace plan bottoms out at a fact-table scan, and every
        # node on the spine actually ran
        node, kinds = result.plan, []
        while True:
            kinds.append(node.kind)
            assert node.profile.calls >= 1, f"{node.kind} never ran"
            assert not node.profile.pushed_to_sql
            if not node.children:
                break
            (node,) = node.children
        assert kinds[0] == "SemiJoin" and kinds[-1] == "Scan"
        assert node.profile.rows > 0

    def test_total_aggregate_plan_present(self, schema):
        with KdapSession(schema) as session:
            result = session.explain("Road Bikes")
        assert result.total_plan is not None
        assert result.total_plan.kind == "GroupAggregate"
        assert result.total_plan.profile.calls >= 1

    def test_render_contains_tree_and_phases(self, schema):
        with KdapSession(schema) as session:
            text = session.explain("Road Bikes").render()
        assert "subspace plan (actual):" in text
        assert "phase breakdown:" in text
        assert "calls=" in text and "rows=" in text
        assert "differentiate" in text and "explore" in text

    def test_as_dict_is_json_serialisable(self, schema):
        with KdapSession(schema) as session:
            payload = session.explain("Road Bikes").as_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["backend"] == "memory"
        assert encoded["plan"]["calls"] >= 1
        assert encoded["spans"], "span tree missing"

    def test_pick_selects_interpretation(self, schema):
        with KdapSession(schema) as session:
            first = session.explain("Road Bikes", pick=1)
            second = session.explain("Road Bikes", pick=2)
        assert first.interpretation != second.interpretation

    def test_pick_out_of_range_returns_none(self, schema):
        with KdapSession(schema) as session:
            assert session.explain("Road Bikes", pick=99) is None
        with KdapSession(schema) as session:
            with pytest.raises(ValueError):
                session.explain("Road Bikes", pick=0)

    def test_reuses_ambient_tracer(self, schema):
        tracer = Tracer()
        with KdapSession(schema) as session:
            with tracing_scope(tracer):
                result = session.explain("Road Bikes")
        assert result.tracer is tracer
        names = {span.name for span in tracer.spans()}
        assert {"query", "differentiate", "explore"} <= names


class TestExplainSqlite:
    def test_pushed_down_nodes_are_marked(self, schema):
        with KdapSession(schema, backend="sqlite") as session:
            result = session.explain("Road Bikes")
        assert result.backend == "sqlite"
        # the root ran as one statement; nodes below it were compiled
        # into the SQL rather than executed individually
        assert result.plan.profile.calls >= 1
        descendants = []
        stack = list(result.plan.children)
        while stack:
            node = stack.pop()
            descendants.append(node)
            stack.extend(node.children)
        assert descendants
        assert all(node.profile.pushed_to_sql for node in descendants)
        rendered = render_plan(result.plan)
        assert "[in SQL]" in rendered

    def test_backends_agree_on_plan_shape(self, schema):
        with KdapSession(schema) as memory_session:
            memory_plan = memory_session.explain("Road Bikes").plan
        with KdapSession(schema, backend="sqlite") as sqlite_session:
            sqlite_plan = sqlite_session.explain("Road Bikes").plan

        def shape(node):
            return (node.kind, tuple(shape(c) for c in node.children))

        assert shape(memory_plan) == shape(sqlite_plan)


class TestRenderSpanTree:
    def test_elides_long_sibling_lists(self):
        tree = [{
            "name": "parent", "seconds": 0.1, "thread": 0,
            "children": [{"name": f"child{i}", "seconds": 0.001,
                          "thread": 0} for i in range(15)],
        }]
        text = render_span_tree(tree, max_children=10)
        assert "child0" in text
        assert "child14" not in text
        assert "(+5 more spans)" in text

    def test_tags_render_without_fp_noise(self):
        tree = [{"name": "op.Scan", "seconds": 0.002, "thread": 0,
                 "tags": {"fp": "abcdef", "rows": 42}}]
        text = render_span_tree(tree)
        assert "rows=42" in text
        assert "abcdef" not in text
