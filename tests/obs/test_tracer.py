"""Hierarchical spans: nesting, error tags, no-op path, Chrome export."""

import pytest

from repro.obs.tracer import (
    NOOP,
    NOOP_SPAN,
    Tracer,
    current_span,
    current_tracer,
    op_span,
    plan_digest,
    tracing_scope,
)
from repro.plan.nodes import Scan, SemiJoin
from repro.warehouse.graph import EMPTY_PATH


class TestNesting:
    def test_spans_nest_by_lexical_scope(self):
        tracer = Tracer()
        with tracing_scope(tracer):
            with tracer.span("outer") as outer:
                with tracer.span("inner", depth=2) as inner:
                    assert current_span() is inner
                assert current_span() is outer
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["inner"]
        assert inner.parent is outer
        assert inner.tags["depth"] == 2

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracing_scope(tracer):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_are_inclusive(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert parent.duration_s >= child.duration_s

    def test_to_tree_round_trips_structure(self):
        tracer = Tracer()
        with tracing_scope(tracer):
            with tracer.span("a", q="x"):
                with tracer.span("b"):
                    pass
        (root,) = tracer.to_tree()
        assert root["name"] == "a"
        assert root["tags"] == {"q": "x"}
        assert [c["name"] for c in root["children"]] == ["b"]

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.error == "ValueError: boom"
        assert "boom" in span.tags["error"]
        assert span.duration_s > 0  # closed despite the exception

    def test_nested_scope_with_new_tracer_reroots(self):
        """A span opened under an inner tracing scope must not leak into
        the outer tracer's tree (the EXPLAIN-inside-traced-CLI case)."""
        outer, inner = Tracer(), Tracer()
        with tracing_scope(outer), outer.span("outer"):
            with tracing_scope(inner), inner.span("inner"):
                pass
        assert [r.name for r in outer.roots] == ["outer"]
        assert not outer.roots[0].children
        assert [r.name for r in inner.roots] == ["inner"]


class TestNoopPath:
    def test_ambient_tracer_defaults_to_noop(self):
        assert current_tracer() is NOOP
        assert not NOOP.enabled

    def test_noop_span_is_a_shared_singleton(self):
        first = NOOP.span("anything", key="value")
        assert first is NOOP_SPAN
        with first as span:
            span.set_tag("k", 1)  # must be accepted and dropped
        assert NOOP.to_tree() == []
        assert NOOP.to_chrome_trace()["traceEvents"] == []

    def test_op_span_skips_digest_when_disabled(self):
        node = Scan("FactInternetSales")
        assert op_span(node) is NOOP_SPAN

    def test_op_span_records_digest_when_enabled(self):
        node = Scan("FactInternetSales")
        tracer = Tracer()
        with tracing_scope(tracer):
            with op_span(node):
                pass
        (span,) = tracer.roots
        assert span.name == "op.Scan"
        assert span.tags["fp"] == plan_digest(node)

    def test_tracing_scope_none_is_passthrough(self):
        with tracing_scope(None):
            assert current_tracer() is NOOP


class TestPlanDigest:
    def test_digest_is_stable_and_short(self):
        node = Scan("FactInternetSales")
        assert plan_digest(node) == plan_digest(Scan("FactInternetSales"))
        assert len(plan_digest(node)) == 12

    def test_digest_distinguishes_nodes(self):
        scan = Scan("FactInternetSales")
        semi = SemiJoin(scan, "DimProduct", "Color", ("Red",), EMPTY_PATH)
        assert plan_digest(scan) != plan_digest(semi)


class TestChromeExport:
    def test_complete_events_with_thread_metadata(self):
        tracer = Tracer()
        with tracing_scope(tracer):
            with tracer.span("query", q="bikes"):
                with tracer.span("op.Scan", fp="abc", rows=7):
                    pass
        trace = tracer.to_chrome_trace()
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"query", "op.Scan"}
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
        assert metadata and metadata[0]["name"] == "thread_name"
        # the one thread in play got the compact tid 0
        assert {e["tid"] for e in complete} == {0}
        args = {e["name"]: e["args"] for e in complete}
        assert args["op.Scan"]["rows"] == 7

    def test_child_ts_within_parent_window(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        by_name = {e["name"]: e
                   for e in tracer.to_chrome_trace()["traceEvents"]
                   if e["ph"] == "X"}
        parent, child = by_name["parent"], by_name["child"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1
