"""Slow-query log: thresholding, bounded capacity, session integration."""

import pytest

from repro.core import KdapSession
from repro.datasets import build_aw_online
from repro.obs.slowlog import SlowQueryLog


class TestSlowQueryLog:
    def test_records_only_over_threshold(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.observe("q1", "net1", "aaa", 5.0)
        assert log.observe("q2", "net2", "bbb", 15.0)
        assert log.observed == 2
        assert log.recorded == 1
        (record,) = log.records
        assert record.query == "q2"
        assert record.plan_fp == "bbb"
        assert record.threshold_ms == 10.0

    def test_threshold_is_strict(self):
        log = SlowQueryLog(threshold_ms=10.0)
        assert not log.observe("q", "net", "fp", 10.0)

    def test_capacity_is_a_ring(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for index in range(5):
            log.observe(f"q{index}", "net", "fp", 1.0)
        assert len(log) == 3
        assert [r.query for r in log.records] == ["q2", "q3", "q4"]
        assert log.recorded == 5  # counter keeps counting past the ring

    def test_as_dict_and_describe(self):
        log = SlowQueryLog(threshold_ms=1.0)
        log.observe("bikes", "Net", "abc123", 42.0,
                    span_tree={"name": "explore"})
        snapshot = log.as_dict()
        assert snapshot["threshold_ms"] == 1.0
        assert snapshot["records"][0]["span_tree"] == {"name": "explore"}
        described = log.records[0].describe()
        assert "bikes" in described and "abc123" in described

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1.0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=1.0, capacity=0)


class TestSessionSlowLog:
    def test_slow_explore_is_recorded_with_span_tree(self):
        schema = build_aw_online(num_facts=2000, seed=42)
        with KdapSession(schema, slow_query_ms=0.0) as session:
            ranked = session.differentiate("Road Bikes", limit=1)
            session.explore(ranked[0].star_net)
        (record,) = session.slow_log.records
        assert record.query == "Road Bikes"
        assert "Road" in record.interpretation
        assert len(record.plan_fp) == 12
        # no ambient tracer was installed, so the session traced the
        # explore locally just for the record
        assert record.span_tree is not None
        assert record.span_tree["name"] == "explore"

    def test_fast_queries_stay_out(self):
        schema = build_aw_online(num_facts=2000, seed=42)
        with KdapSession(schema, slow_query_ms=10 ** 6) as session:
            ranked = session.differentiate("Road Bikes", limit=1)
            session.explore(ranked[0].star_net)
            assert session.slow_log.observed == 1
            assert len(session.slow_log) == 0

    def test_disabled_by_default(self):
        schema = build_aw_online(num_facts=2000, seed=42)
        with KdapSession(schema) as session:
            assert session.slow_log is None
