"""SloTracker: burn-rate math, multi-window alerting, event emission."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.obs.slo import SloPolicy, SloTracker


class FakeClock:
    def __init__(self, start: float = 1_000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(clock, *, target_p95_ms=100.0, error_budget=0.1,
                 short_window_s=10.0, long_window_s=60.0,
                 burn_alert=2.0, event_log=None):
    policy = SloPolicy(target_p95_ms=target_p95_ms,
                       error_budget=error_budget,
                       short_window_s=short_window_s,
                       long_window_s=long_window_s,
                       burn_alert=burn_alert)
    return SloTracker(policy, clock=clock, event_log=event_log)


class TestSloPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"target_p95_ms": 0.0},
        {"error_budget": 0.0},
        {"error_budget": 1.5},
        {"short_window_s": 0.0},
        {"short_window_s": 100.0, "long_window_s": 10.0},
        {"burn_alert": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SloPolicy(**kwargs)


class TestBurnRate:
    def test_no_traffic_burn_is_none(self):
        tracker = make_tracker(FakeClock())
        status = tracker.status()
        assert status["windows"]["short"]["burn_rate"] is None
        assert status["observed"] == 0

    def test_all_good_burn_is_zero(self):
        clock = FakeClock()
        tracker = make_tracker(clock)
        for _ in range(10):
            tracker.observe(elapsed_ms=10.0)
        short = tracker.status()["windows"]["short"]
        assert short == {**short, "total": 10, "bad": 0,
                         "burn_rate": 0.0}

    def test_burn_is_bad_rate_over_budget(self):
        clock = FakeClock()
        tracker = make_tracker(clock, error_budget=0.1)
        # 2 bad of 10 → bad_rate 0.2 → burn 2.0
        for index in range(10):
            tracker.observe(elapsed_ms=10.0, error=index < 2)
        short = tracker.status()["windows"]["short"]
        assert short["bad"] == 2
        assert short["burn_rate"] == pytest.approx(2.0)

    def test_slow_requests_burn_like_errors(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target_p95_ms=100.0)
        tracker.observe(elapsed_ms=500.0)  # over target: bad
        assert tracker.status()["windows"]["short"]["bad"] == 1
        assert tracker.status()["windows"]["short"]["errors"] == 0

    def test_old_slots_age_out_of_the_window(self):
        clock = FakeClock()
        tracker = make_tracker(clock, short_window_s=10.0,
                               long_window_s=60.0)
        tracker.observe(elapsed_ms=10.0, error=True)
        clock.advance(30.0)
        tracker.observe(elapsed_ms=10.0)
        windows = tracker.status()["windows"]
        assert windows["short"]["total"] == 1  # the error aged out
        assert windows["short"]["bad"] == 0
        assert windows["long"]["total"] == 2  # still inside long
        assert windows["long"]["bad"] == 1

    def test_window_p95(self):
        clock = FakeClock()
        tracker = make_tracker(clock, target_p95_ms=10_000.0)
        for _ in range(99):
            tracker.observe(elapsed_ms=10.0)
        tracker.observe(elapsed_ms=5_000.0)
        p95 = tracker.status()["windows"]["short"]["p95_ms"]
        assert p95 is not None and p95 <= 5_000.0
        assert p95 >= 10.0


class TestBurnAlerting:
    def test_alert_requires_both_windows(self):
        clock = FakeClock()
        log = EventLog(capacity=16, clock=clock)
        tracker = make_tracker(clock, error_budget=0.1, burn_alert=2.0,
                               event_log=log)
        # 100% errors: burn = 10 > 2 in both windows → alert
        for _ in range(5):
            tracker.observe(elapsed_ms=10.0, error=True)
        assert tracker.burning
        assert tracker.alerts == 1
        kinds = [event["kind"] for event in log.tail(10)]
        assert kinds.count("slo.burn") == 1

    def test_alert_recovers_and_emits(self):
        clock = FakeClock()
        log = EventLog(capacity=64, clock=clock)
        tracker = make_tracker(clock, error_budget=0.1, burn_alert=2.0,
                               short_window_s=10.0, long_window_s=60.0,
                               event_log=log)
        for _ in range(5):
            tracker.observe(elapsed_ms=10.0, error=True)
        assert tracker.burning
        # healthy traffic after the short window ages the errors out
        clock.advance(15.0)
        for _ in range(200):
            tracker.observe(elapsed_ms=10.0)
        assert not tracker.burning
        kinds = [event["kind"] for event in log.tail(64)]
        assert "slo.burn" in kinds and "slo.recovered" in kinds
        burn = next(event for event in log.tail(64)
                    if event["kind"] == "slo.burn")
        assert burn["burn_short"] > 2.0
        assert burn["threshold"] == 2.0

    def test_no_realert_while_still_burning(self):
        clock = FakeClock()
        tracker = make_tracker(clock, error_budget=0.1, burn_alert=2.0)
        for _ in range(50):
            tracker.observe(elapsed_ms=10.0, error=True)
        assert tracker.alerts == 1

    def test_short_blip_inside_long_window_does_not_alert(self):
        clock = FakeClock()
        tracker = make_tracker(clock, error_budget=0.1, burn_alert=2.0,
                               short_window_s=10.0, long_window_s=60.0)
        # a long stretch of good traffic dilutes the long window
        for _ in range(200):
            tracker.observe(elapsed_ms=10.0)
        clock.advance(20.0)
        for _ in range(3):
            tracker.observe(elapsed_ms=10.0, error=True)
        # short window burns hot but the long window holds under 2x
        assert not tracker.burning


class TestStatus:
    def test_status_shape(self):
        tracker = make_tracker(FakeClock())
        tracker.observe(elapsed_ms=1.0)
        status = tracker.status()
        assert status["policy"]["target_p95_ms"] == 100.0
        assert status["observed"] == 1
        assert set(status["windows"]) == {"short", "long"}
        for window in status["windows"].values():
            assert set(window) == {"window_s", "total", "bad", "errors",
                                   "bad_rate", "burn_rate", "p95_ms"}
