"""Metrics registry: instruments, quantiles, scoping, truncation routing."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_REGISTRY,
    Histogram,
    MetricsRegistry,
    current_registry,
    metrics_scope,
    runs_summary,
)
from repro.resilience.budget import Budget


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge_set_and_add(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10.0)
        gauge.add(-3.0)
        assert gauge.value == 7.0

    def test_name_binds_to_first_type(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_threaded_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("n").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("n").value == 4000


class TestHistogram:
    def test_empty_histogram(self):
        histogram = Histogram("lat")
        assert histogram.quantile(0.5) is None
        assert histogram.mean is None
        assert histogram.summary() == {"count": 0}

    def test_single_observation_is_every_percentile(self):
        histogram = Histogram("lat")
        histogram.observe(0.2)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.2)

    def test_quantiles_track_the_distribution(self):
        histogram = Histogram("lat")
        for ms in range(1, 101):  # 1ms .. 100ms uniform
            histogram.observe(ms / 1000.0)
        p50 = histogram.quantile(0.50)
        p95 = histogram.quantile(0.95)
        assert 0.035 <= p50 <= 0.065
        assert 0.080 <= p95 <= 0.105
        assert p50 <= p95 <= histogram.max

    def test_overflow_bucket_clamps_to_observed_max(self):
        histogram = Histogram("lat", boundaries=(0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == pytest.approx(50.0)

    def test_summary_fields(self):
        histogram = Histogram("lat")
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.007)
        assert set(summary) == {"count", "sum", "mean", "min", "max",
                                "p50", "p95", "p99"}

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("bad", boundaries=(1.0, 0.5))


class TestRegistryScoping:
    def test_default_registry_is_ambient_fallback(self):
        assert current_registry() is DEFAULT_REGISTRY

    def test_metrics_scope_installs_and_restores(self):
        mine = MetricsRegistry()
        with metrics_scope(mine):
            assert current_registry() is mine
            current_registry().counter("scoped").inc()
        assert current_registry() is DEFAULT_REGISTRY
        assert mine.counter("scoped").value == 1

    def test_snapshot_groups_by_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_unbinds_names(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        registry.gauge("x")  # no TypeError: the name is free again


class TestTruncationCounters:
    def test_record_truncation_counts_per_cause(self):
        registry = MetricsRegistry()
        budget = Budget(max_rows=10)
        with metrics_scope(registry):
            budget.record_truncation("preview", "rows", "stopped early")
            budget.record_truncation("facet:Date", "deadline", "slow")
            budget.record_truncation("generation", "rows", "capped")
        counters = registry.snapshot()["counters"]
        assert counters["kdap.truncations.rows"] == 2
        assert counters["kdap.truncations.deadline"] == 1
        assert counters["kdap.truncations.total"] == 3
        assert len(budget.events) == 3

    def test_session_truncations_reach_the_session_registry(self):
        """End to end: a budget-truncated explore shows up in the
        session's own metrics registry, not the process default."""
        from repro.core import KdapSession
        from repro.datasets import build_aw_online

        schema = build_aw_online(num_facts=2000, seed=42)
        with KdapSession(schema) as session:
            budget = Budget(max_rows=50)
            ranked = session.differentiate("Road Bikes", limit=1,
                                           budget=budget)
            result = session.explore(ranked[0].star_net, budget=budget)
        assert result.is_partial
        counters = session.metrics.snapshot()["counters"]
        assert counters["kdap.truncations.total"] >= 1
        assert any(name.startswith("kdap.truncations.")
                   for name in counters if name != "kdap.truncations.total")


class TestRunsSummary:
    def test_p50_p95_fields(self):
        summary = runs_summary([0.010, 0.011, 0.012, 0.013, 0.100])
        assert set(summary) == {"p50_s", "p95_s"}
        assert summary["p50_s"] <= summary["p95_s"] <= 0.1
