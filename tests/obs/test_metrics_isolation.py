"""Concurrent per-session metrics isolation.

Two sessions exploring simultaneously on different threads must never
bleed counters into each other's registry (or into the process-wide
default): ``metrics_scope`` rides a context variable, so each thread's
deep layers resolve their own session's registry even while interleaved.
This is the invariant the service layer's per-worker sessions (and its
``/v1/statz`` per-worker breakdown) stand on.
"""

import threading

from repro.core import KdapSession
from repro.obs.metrics import DEFAULT_REGISTRY
from repro.textindex.index import AttributeTextIndex


def _explore_n(session: KdapSession, query: str, times: int,
               barrier: threading.Barrier, errors: list) -> None:
    try:
        barrier.wait(timeout=10.0)
        for _ in range(times):
            net = session.differentiate(query, limit=1)[0].star_net
            session.explore(net)
    except BaseException as exc:  # noqa: BLE001 - surfaced in the test
        errors.append(exc)


def test_concurrent_sessions_never_bleed_counters(ebiz):
    index = AttributeTextIndex()
    index.index_database(ebiz.database, ebiz.searchable)
    first = KdapSession(ebiz, index=index)
    second = KdapSession(ebiz, index=index)
    default_before = DEFAULT_REGISTRY.snapshot()["counters"].get(
        "kdap.queries", 0)

    barrier = threading.Barrier(2)
    errors: list = []
    threads = [
        threading.Thread(target=_explore_n,
                         args=(first, "Columbus", 3, barrier, errors)),
        threading.Thread(target=_explore_n,
                         args=(second, "Seattle", 5, barrier, errors)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors

    # each registry saw exactly its own session's work
    assert first.metrics.counter("kdap.queries").value == 3
    assert second.metrics.counter("kdap.queries").value == 5
    assert first.metrics.histogram("kdap.explore.seconds").count == 3
    assert second.metrics.histogram("kdap.explore.seconds").count == 5
    # and nothing leaked to the process-wide default registry
    default_after = DEFAULT_REGISTRY.snapshot()["counters"].get(
        "kdap.queries", 0)
    assert default_after == default_before
