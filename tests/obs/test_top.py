"""`repro top`: pure renderer over canned snapshots, loop wiring."""

from __future__ import annotations

import io

from repro.obs.top import render_dashboard, run_top

STATZ = {
    "state": "serving",
    "uptime_s": 12.5,
    "workers": [{"worker": 0}, {"worker": 1}],
    "config": {"workers": 4},
    "service": {
        "counters": {
            "kdap.service.admitted": 42,
            "kdap.service.status.200": 39,
            "kdap.service.status.404": 1,
            "kdap.service.status.504": 2,
            "kdap.service.shed.queue_full": 3,
            "kdap.service.shed.queue_timeout": 1,
        },
    },
    "slo": {
        "policy": {"target_p95_ms": 1000.0, "error_budget": 0.01},
        "burning": False,
        "alerts": 0,
        "windows": {
            "short": {"window_s": 60.0, "total": 10, "bad": 0,
                      "burn_rate": 0.0, "p95_ms": 42.0},
            "long": {"window_s": 600.0, "total": 100, "bad": 1,
                     "burn_rate": 1.25, "p95_ms": 55.0},
        },
    },
    "sampling": {
        "considered": 40, "persisted_total": 7, "dropped": 33,
        "persisted": {"error": 2, "truncated": 1, "slow": 0, "head": 4},
    },
    "events": {"emitted": 120, "retained": 120, "dropped": 0},
    "slowlog": {"observed": 40, "retained": 2, "threshold_ms": 1000.0},
}

METRICS = {
    "kdap_runtime_queue_depth": {
        "type": "gauge",
        "samples": [("kdap_runtime_queue_depth", {}, 3.0)]},
    "kdap_runtime_in_flight": {
        "type": "gauge",
        "samples": [("kdap_runtime_in_flight", {}, 2.0)]},
    "kdap_runtime_worker_utilization": {
        "type": "gauge",
        "samples": [("kdap_runtime_worker_utilization", {}, 0.5)]},
    "kdap_runtime_shed_rate": {
        "type": "gauge",
        "samples": [("kdap_runtime_shed_rate", {}, 0.125)]},
}


class TestRenderDashboard:
    def test_header_and_load_line(self):
        frame = render_dashboard(STATZ, METRICS)
        assert "state=serving" in frame
        assert "workers=4" in frame  # config echo, not the detail list
        assert "queue=3" in frame
        assert "in_flight=2" in frame
        assert "shed_rate=0.125" in frame

    def test_requests_line_folds_service_counters(self):
        frame = render_dashboard(STATZ, METRICS)
        assert "admitted=42" in frame
        assert "ok=39" in frame
        assert "4xx=1" in frame
        assert "5xx=2" in frame
        assert "shed=4" in frame  # queue_full + queue_timeout

    def test_worker_count_falls_back_to_detail_list(self):
        statz = {key: value for key, value in STATZ.items()
                 if key != "config"}
        assert "workers=2" in render_dashboard(statz, METRICS)

    def test_slo_section(self):
        frame = render_dashboard(STATZ, METRICS)
        assert "state=ok" in frame
        assert "burn=1.25" in frame  # long window
        burning = {**STATZ, "slo": {**STATZ["slo"], "burning": True}}
        assert "BURNING" in render_dashboard(burning, METRICS)

    def test_sampling_and_slowlog_sections(self):
        frame = render_dashboard(STATZ, METRICS)
        assert "considered=40" in frame
        assert "err=2" in frame
        assert "threshold=1000.0ms" in frame

    def test_missing_sections_are_skipped(self):
        bare = {"state": "serving", "uptime_s": 1.0}
        frame = render_dashboard(bare, {})
        assert "slo" not in frame
        assert "reqs" not in frame
        assert "queue=-" in frame  # missing gauges render as '-'

    def test_recent_events_render(self):
        events = [{"seq": 9, "ts": 1.0, "kind": "finished",
                   "request_id": "r000009", "status": 200}]
        frame = render_dashboard(STATZ, METRICS, events)
        assert "#9 finished" in frame
        assert "request_id=r000009" in frame


class TestRunTop:
    def test_renders_requested_frames(self):
        out = io.StringIO()
        fetches = []

        def fetch(url):
            fetches.append(url)
            return {"statz": STATZ, "metrics": METRICS}

        code = run_top("http://x", interval_s=0.0, iterations=3,
                       out=out, clock=lambda _s: None, fetch=fetch)
        assert code == 0
        assert len(fetches) == 3
        assert out.getvalue().count("kdap top") == 3

    def test_scrape_failure_renders_error_frame(self):
        out = io.StringIO()

        def fetch(url):
            raise OSError("connection refused")

        code = run_top("http://x", interval_s=0.0, iterations=1,
                       out=out, clock=lambda _s: None, fetch=fetch)
        assert code == 0
        assert "scrape failed" in out.getvalue()
