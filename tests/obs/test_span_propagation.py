"""Spans must survive worker threads and the retry/failover ladder.

The tracer and current-span context variables ride
``contextvars.copy_context().run`` into the ray-prefetch pool, and the
resilience wrapper opens ``retry.attempt`` / ``backend.failover`` spans
inline — both must parent under the originating query's span tree.
"""

from repro.core import KdapSession
from repro.datasets import build_aw_online
from repro.obs import Tracer, tracing_scope
from repro.plan import PlanCounters
from repro.relational.errors import TransientBackendError
from repro.resilience import ResilientBackend, RetryPolicy


def _find_all(tree: list[dict], name: str) -> list[dict]:
    found: list[dict] = []

    def walk(node: dict) -> None:
        if node["name"] == name:
            found.append(node)
        for child in node.get("children", []):
            walk(child)

    for root in tree:
        walk(root)
    return found


def _span_names(node: dict) -> set[str]:
    names = {node["name"]}
    for child in node.get("children", []):
        names |= _span_names(child)
    return names


class TestWorkerThreadPropagation:
    def test_prefetch_spans_parent_under_the_query_span(self):
        schema = build_aw_online(num_facts=2000, seed=42)
        tracer = Tracer()
        with KdapSession(schema, workers=4) as session:
            with tracing_scope(tracer):
                session.differentiate("bikes australia",
                                      preview_sizes=True)
        tree = tracer.to_tree()
        assert [root["name"] for root in tree] == ["differentiate"]
        preview = _find_all(tree, "preview.sizes")
        assert preview, "preview.sizes span missing"
        prefetches = _find_all(preview, "ray.prefetch")
        assert len(prefetches) >= 2
        # prefetch tasks really ran on other threads, yet their spans
        # sit inside the single differentiate root
        main_thread = tree[0]["thread"]
        assert any(span["thread"] != main_thread for span in prefetches)

    def test_worker_operator_spans_nest_under_prefetch(self):
        schema = build_aw_online(num_facts=2000, seed=42)
        tracer = Tracer()
        with KdapSession(schema, workers=4) as session:
            with tracing_scope(tracer):
                session.differentiate("bikes australia",
                                      preview_sizes=True)
        prefetches = _find_all(tracer.to_tree(), "ray.prefetch")
        # at least one prefetch did real work: its engine evaluation
        # (plan.materialize -> op.*) hangs below the prefetch span
        nested = set().union(*(_span_names(p) for p in prefetches))
        assert "plan.materialize" in nested


class _FlakyThenGood:
    """Fails the first ``failures`` calls, then succeeds forever."""

    name = "flaky"

    def __init__(self, failures: int):
        self.counters = PlanCounters()
        self.failures = failures
        self.calls = 0

    def materialize(self, plan):
        self.calls += 1
        if self.calls <= self.failures:
            raise TransientBackendError(f"flaky call {self.calls}")
        return (1, 2, 3)

    def execute(self, plan):
        return self.materialize(plan)

    def close(self):
        pass


class _AlwaysBroken(_FlakyThenGood):
    name = "broken"

    def __init__(self):
        super().__init__(failures=10 ** 9)


class _Good(_FlakyThenGood):
    name = "good"

    def __init__(self):
        super().__init__(failures=0)


class TestRetrySpans:
    def test_each_attempt_is_a_child_span_with_error_tags(self):
        backend = ResilientBackend(_FlakyThenGood(failures=2),
                                   policy=RetryPolicy(max_attempts=3),
                                   sleep=lambda _s: None)
        tracer = Tracer()
        with tracing_scope(tracer), tracer.span("query", q="test"):
            assert backend.materialize(object()) == (1, 2, 3)
        (query,) = tracer.to_tree()
        attempts = _find_all([query], "retry.attempt")
        assert [a["tags"]["attempt"] for a in attempts] == [1, 2, 3]
        # the two failures carry error tags; the final success does not
        assert "error" in attempts[0]
        assert "error" in attempts[1]
        assert "error" not in attempts[2]
        assert attempts[0]["tags"]["backend"] == "flaky"
        assert attempts[0]["tags"]["op"] == "materialize"

    def test_failover_span_names_both_backends(self):
        backend = ResilientBackend(
            _AlwaysBroken(), fallback=_Good,
            policy=RetryPolicy(max_attempts=2),
            sleep=lambda _s: None)
        tracer = Tracer()
        with tracing_scope(tracer), tracer.span("query"):
            assert backend.materialize(object()) == (1, 2, 3)
        (query,) = tracer.to_tree()
        (failover,) = _find_all([query], "backend.failover")
        assert failover["tags"]["from_backend"] == "broken"
        assert failover["tags"]["to_backend"] == "good"
        attempts = _find_all([query], "retry.attempt")
        backends = [a["tags"]["backend"] for a in attempts]
        assert backends == ["broken", "broken", "good"]

    def test_untraced_retries_still_work(self):
        backend = ResilientBackend(_FlakyThenGood(failures=1),
                                   policy=RetryPolicy(max_attempts=2),
                                   sleep=lambda _s: None)
        assert backend.materialize(object()) == (1, 2, 3)
        assert backend.resilience.retries == 1
