"""Inverted index: postings, statistics, phrase matching."""

from hypothesis import given, settings, strategies as st

from repro.textindex import InvertedIndex


def make_index(*docs):
    index = InvertedIndex()
    for doc in docs:
        index.add_document(doc.split())
    return index


class TestConstruction:
    def test_doc_ids_sequential(self):
        index = InvertedIndex()
        assert index.add_document(["a"]) == 0
        assert index.add_document(["b"]) == 1
        assert index.num_docs == 2

    def test_doc_length(self):
        index = make_index("a b c", "a")
        assert index.doc_length(0) == 3
        assert index.doc_length(1) == 1

    def test_doc_freq(self):
        index = make_index("a b", "a c", "d")
        assert index.doc_freq("a") == 2
        assert index.doc_freq("d") == 1
        assert index.doc_freq("nope") == 0

    def test_vocabulary(self):
        index = make_index("a b", "b c")
        assert set(index.vocabulary()) == {"a", "b", "c"}


class TestPostings:
    def test_frequency_and_positions(self):
        index = make_index("a b a a")
        posting = index.postings("a")[0]
        assert posting.freq == 3
        assert posting.positions == (0, 2, 3)

    def test_missing_term_empty(self):
        assert make_index("a").postings("z") == []


class TestPrefixExpansion:
    def test_expansion(self):
        index = make_index("mountain", "mount", "motor")
        assert index.expand_prefix("moun") == ["mount", "mountain"]

    def test_limit(self):
        index = make_index(*[f"term{i}" for i in range(60)])
        assert len(index.expand_prefix("term", limit=10)) == 10

    def test_sorted_for_determinism(self):
        index = make_index("zebra", "zeal", "zest")
        assert index.expand_prefix("ze") == ["zeal", "zebra", "zest"]


class TestCandidateDocs:
    def test_or_semantics(self):
        index = make_index("a b", "b c", "d")
        assert index.candidate_docs(["a", "d"]) == {0, 2}

    def test_empty_terms(self):
        assert make_index("a").candidate_docs([]) == set()


class TestTermFreqs:
    def test_per_doc(self):
        index = make_index("a a b", "a")
        assert index.term_freqs(0, ["a", "b", "z"]) == {"a": 2, "b": 1}


class TestPhraseMatch:
    def test_contiguous(self):
        index = make_index("san jose metal plate")
        assert index.phrase_match(0, ["san", "jose"])
        assert index.phrase_match(0, ["metal", "plate"])

    def test_non_contiguous_rejected(self):
        index = make_index("san antonio jose")
        assert not index.phrase_match(0, ["san", "jose"])

    def test_single_term(self):
        index = make_index("alpha beta")
        assert index.phrase_match(0, ["beta"])

    def test_missing_term(self):
        index = make_index("alpha beta")
        assert not index.phrase_match(0, ["beta", "gamma"])

    def test_empty_phrase(self):
        index = make_index("alpha")
        assert not index.phrase_match(0, [])

    def test_three_term_phrase(self):
        index = make_index("new south wales professional")
        assert index.phrase_match(0, ["new", "south", "wales"])
        assert not index.phrase_match(0, ["south", "new", "wales"])


words = st.lists(st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1,
                 max_size=12)


class TestProperties:
    @given(doc=words, phrase=st.lists(
        st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_phrase_match_iff_sublist(self, doc, phrase):
        index = InvertedIndex()
        doc_id = index.add_document(doc)
        want = any(doc[i:i + len(phrase)] == phrase
                   for i in range(len(doc) - len(phrase) + 1))
        assert index.phrase_match(doc_id, phrase) == want

    @given(doc=words)
    @settings(max_examples=100, deadline=None)
    def test_freqs_sum_to_length(self, doc):
        index = InvertedIndex()
        doc_id = index.add_document(doc)
        freqs = index.term_freqs(doc_id, set(doc))
        assert sum(freqs.values()) == index.doc_length(doc_id)


class TestFuzzyExpansion:
    def test_one_edit_matches(self):
        index = make_index("columbus seattle")
        assert index.expand_fuzzy("colombus") == ["columbus"]

    def test_two_edits_rejected_at_max_one(self):
        index = make_index("columbus")
        assert index.expand_fuzzy("colunbos", max_edits=1) == []

    def test_exact_included(self):
        index = make_index("columbus")
        assert index.expand_fuzzy("columbus") == ["columbus"]

    def test_short_terms_exact_only(self):
        index = make_index("tv tb")
        assert index.expand_fuzzy("tv") == ["tv"]

    def test_insertion_and_deletion(self):
        index = make_index("mountain")
        assert index.expand_fuzzy("mountainn") == ["mountain"]
        assert index.expand_fuzzy("mountan") == ["mountain"]

    def test_limit(self):
        index = make_index(" ".join(f"term{i}" for i in range(10)))
        assert len(index.expand_fuzzy("term0", limit=3)) == 3
