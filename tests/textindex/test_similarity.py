"""TF-IDF similarity scoring."""


from hypothesis import given, settings, strategies as st

from repro.textindex import DEFAULT_SIMILARITY, Similarity


class TestComponents:
    def test_tf_sqrt(self):
        assert DEFAULT_SIMILARITY.tf(4) == 2.0

    def test_idf_decreases_with_df(self):
        sim = DEFAULT_SIMILARITY
        assert sim.idf(1, 100) > sim.idf(50, 100)

    def test_length_norm(self):
        assert DEFAULT_SIMILARITY.length_norm(4) == 0.5

    def test_length_norm_disabled(self):
        sim = Similarity(use_length_norm=False)
        assert sim.length_norm(4) == 1.0

    def test_coord(self):
        assert DEFAULT_SIMILARITY.coord(1, 2) == 0.5
        assert DEFAULT_SIMILARITY.coord(2, 2) == 1.0

    def test_coord_disabled(self):
        assert Similarity(use_coord=False).coord(1, 2) == 1.0


class TestScore:
    def score(self, term_freqs, doc_len, terms, dfs, n=100):
        return DEFAULT_SIMILARITY.score(term_freqs, doc_len, terms, dfs, n)

    def test_no_match_is_zero(self):
        assert self.score({}, 3, ["a"], {"a": 1}) == 0.0

    def test_full_match_beats_partial(self):
        dfs = {"san": 5, "jose": 5}
        full = self.score({"san": 1, "jose": 1}, 2, ["san", "jose"], dfs)
        partial = self.score({"san": 1}, 2, ["san", "jose"], dfs)
        assert full > partial

    def test_rare_term_beats_common(self):
        rare = self.score({"t": 1}, 1, ["t"], {"t": 1})
        common = self.score({"t": 1}, 1, ["t"], {"t": 50})
        assert rare > common

    def test_short_doc_beats_long(self):
        dfs = {"t": 5}
        short = self.score({"t": 1}, 1, ["t"], dfs)
        long_ = self.score({"t": 1}, 9, ["t"], dfs)
        assert short > long_

    def test_empty_query(self):
        assert self.score({"a": 1}, 1, [], {}) == 0.0


class TestProperties:
    @given(freq=st.integers(1, 20), doc_len=st.integers(1, 50),
           df=st.integers(0, 99))
    @settings(max_examples=100, deadline=None)
    def test_score_positive_on_match(self, freq, doc_len, df):
        score = DEFAULT_SIMILARITY.score(
            {"t": freq}, doc_len, ["t"], {"t": df}, 100)
        assert score > 0.0

    @given(freq=st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_tf(self, freq):
        low = DEFAULT_SIMILARITY.score({"t": freq}, 10, ["t"], {"t": 3}, 100)
        high = DEFAULT_SIMILARITY.score({"t": freq + 1}, 10, ["t"],
                                        {"t": 3}, 100)
        assert high > low
