"""Attribute-level text index: search, phrases, value scoring."""

import pytest

from repro.relational import Database, Table, integer, text
from repro.textindex import AttributeTextIndex, TupleTextIndex


@pytest.fixture
def index():
    idx = AttributeTextIndex()
    idx.add_value("Loc", "City", "Columbus")
    idx.add_value("Loc", "City", "San Jose")
    idx.add_value("Loc", "City", "San Antonio")
    idx.add_value("Holiday", "Event", "Columbus Day")
    idx.add_value("PGroup", "GroupName", "LCD Projectors")
    idx.add_value("PGroup", "GroupName", "Flat Panel(LCD)")
    idx.add_value("PGroup", "GroupName", "Plasma TVs")
    idx.add_value("Product", "Name", "Mountain Bikes Deluxe")
    return idx


class TestSearch:
    def test_ambiguous_keyword_hits_multiple_domains(self, index):
        hits = index.search("Columbus")
        domains = {h.domain for h in hits}
        assert ("Loc", "City") in domains
        assert ("Holiday", "Event") in domains

    def test_exact_match_outscores_longer(self, index):
        hits = index.search("Columbus")
        assert hits[0].value == "Columbus"  # shorter doc, same idf

    def test_substring_token_matches(self, index):
        values = {h.value for h in index.search("LCD")}
        assert values == {"LCD Projectors", "Flat Panel(LCD)"}

    def test_stemming(self, index):
        values = {h.value for h in index.search("bike")}
        assert "Mountain Bikes Deluxe" in values

    def test_prefix_expansion(self, index):
        values = {h.value for h in index.search("Colum")}
        assert "Columbus" in values

    def test_prefix_expansion_disabled(self, index):
        assert index.search("Colum", prefix_expansion=False) == []

    def test_limit(self, index):
        assert len(index.search("san", limit=1)) == 1

    def test_no_hits(self, index):
        assert index.search("zzzz") == []

    def test_empty_query(self, index):
        assert index.search("") == []

    def test_deterministic_order(self, index):
        assert index.search("san") == index.search("san")


class TestPhraseSearch:
    def test_phrase_filters_non_contiguous(self, index):
        values = {h.value for h in index.search_phrase("San Jose")}
        assert values == {"San Jose"}

    def test_phrase_no_match(self, index):
        assert index.search_phrase("Jose San") == []


class TestScoreValue:
    def test_full_query_scoring(self, index):
        both = index.score_value("Loc", "City", "San Jose", "San Jose")
        one = index.score_value("Loc", "City", "San Antonio", "San Jose")
        assert both > one > 0.0

    def test_unknown_value_is_zero(self, index):
        assert index.score_value("Loc", "City", "Atlantis", "San") == 0.0

    def test_no_overlap_is_zero(self, index):
        assert index.score_value("Loc", "City", "Columbus", "plasma") == 0.0


class TestIndexDatabase:
    def test_distinct_values_indexed(self):
        db = Database("D")
        t = Table("Dim", [integer("Id"), text("Name")])
        t.insert_many([
            {"Id": 1, "Name": "Alpha"},
            {"Id": 2, "Name": "Alpha"},   # duplicate value: one document
            {"Id": 3, "Name": "Beta"},
            {"Id": 4, "Name": None},
        ])
        db.add_table(t)
        idx = AttributeTextIndex()
        idx.index_database(db, {"Dim": ["Name"]})
        assert idx.num_documents == 2
        assert idx.domains() == {("Dim", "Name")}


class TestTupleIndex:
    def test_rows_as_documents(self):
        db = Database("D")
        t = Table("Dim", [integer("Id"), text("A"), text("B")])
        t.insert_many([
            {"Id": 1, "A": "mountain", "B": "bike"},
            {"Id": 2, "A": "road", "B": "bike"},
        ])
        db.add_table(t)
        idx = TupleTextIndex()
        idx.index_database(db, {"Dim": ["A", "B"]})
        hits = idx.search("mountain")
        assert [(t, r) for t, r, _s in hits] == [("Dim", 0)]

    def test_cannot_tell_attribute_apart(self):
        """The §3 motivating example: tuple-level indexing cannot
        distinguish which attribute matched."""
        db = Database("D")
        t = Table("Product", [integer("Id"), text("Product"),
                              text("Category")])
        t.insert_many([
            {"Id": 1, "Product": "ABC EFG", "Category": "TGS SDF"},
            {"Id": 2, "Product": "ERT EFG", "Category": "ABC"},
        ])
        db.add_table(t)
        idx = TupleTextIndex()
        idx.index_database(db, {"Product": ["Product", "Category"]})
        hits = idx.search("ABC")
        # both tuples match and nothing in the result separates a product
        # match from a category match
        assert {(t, r) for t, r, _s in hits} == {("Product", 0),
                                                 ("Product", 1)}


class TestFuzzySearch:
    def test_typo_still_hits(self, index):
        hits = index.search("Colombus", fuzzy=True,
                            prefix_expansion=False)
        values = {h.value for h in hits}
        assert "Columbus" in values

    def test_fuzzy_off_by_default(self, index):
        assert index.search("Colombus", prefix_expansion=False) == []

    def test_exact_match_outranks_fuzzy(self, index):
        idx = AttributeTextIndex()
        idx.add_value("T", "A", "Columbus")
        idx.add_value("T", "A", "Columbia")
        hits = idx.search("Columbus", fuzzy=True)
        assert hits[0].value == "Columbus"
