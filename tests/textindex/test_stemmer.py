"""Porter stemmer: reference vectors and robustness properties."""

import string

from hypothesis import given, settings, strategies as st

from repro.textindex import stem

# Reference pairs from Porter's published vocabulary and the algorithm
# description itself.
REFERENCE = {
    # step 1a
    "caresses": "caress",
    "ponies": "poni",
    "caress": "caress",
    "cats": "cat",
    # step 1b
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "fizzed": "fizz",
    "failing": "fail",
    "filing": "file",
    # step 1c
    "happy": "happi",
    "sky": "sky",
    # step 2
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "conformabli": "conform",
    "radicalli": "radic",
    "differentli": "differ",
    "vileli": "vile",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    # step 3
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    # step 4
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "homologou": "homolog",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    # step 5
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
}


class TestReferenceVectors:
    def test_reference_pairs(self):
        failures = {
            word: (stem(word), want)
            for word, want in REFERENCE.items()
            if stem(word) != want
        }
        assert not failures, failures


class TestDomainWords:
    """Stemming behaviour the KDAP queries rely on."""

    def test_bikes_matches_bike(self):
        assert stem("bikes") == stem("bike")

    def test_tires_matches_tire(self):
        assert stem("tires") == stem("tire")

    def test_headlights_matches_headlight(self):
        assert stem("headlights") == stem("headlight")

    def test_saddles_matches_saddle(self):
        assert stem("saddles") == stem("saddle")

    def test_bolts_matches_bolt(self):
        assert stem("bolts") == stem("bolt")

    def test_short_words_unchanged(self):
        assert stem("tv") == "tv"
        assert stem("us") == "us"
        assert stem("a") == "a"


ascii_words = st.text(alphabet=string.ascii_lowercase, min_size=1,
                      max_size=20)


class TestProperties:
    @given(word=ascii_words)
    @settings(max_examples=200, deadline=None)
    def test_never_longer_than_input(self, word):
        assert len(stem(word)) <= len(word)

    @given(word=ascii_words)
    @settings(max_examples=200, deadline=None)
    def test_output_nonempty_and_lowercase(self, word):
        result = stem(word)
        assert result
        assert result == result.lower()

    @given(word=ascii_words)
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, word):
        assert stem(word) == stem(word)
