"""Tokenization and the analysis pipeline."""

from repro.textindex import Analyzer, DEFAULT_ANALYZER, STOPWORDS


class TestTokenize:
    def test_basic(self):
        assert DEFAULT_ANALYZER.tokenize("Mountain Bikes") == \
            ["mountain", "bikes"]

    def test_hyphenated_product_codes_split(self):
        assert DEFAULT_ANALYZER.tokenize("Sport-100") == ["sport", "100"]

    def test_email(self):
        tokens = DEFAULT_ANALYZER.tokenize("fernando35@adventure-works.com")
        assert tokens == ["fernando35", "adventure", "works", "com"]

    def test_parentheses(self):
        assert DEFAULT_ANALYZER.tokenize("Flat Panel(LCD)") == \
            ["flat", "panel", "lcd"]

    def test_empty(self):
        assert DEFAULT_ANALYZER.tokenize("") == []

    def test_punctuation_only(self):
        assert DEFAULT_ANALYZER.tokenize("!!! --- ...") == []


class TestAnalyze:
    def test_stopwords_removed(self):
        assert DEFAULT_ANALYZER.analyze("the bar for on or road") == \
            ["bar", "road"]

    def test_stemming_applied(self):
        assert DEFAULT_ANALYZER.analyze("Mountain Bikes") == \
            ["mountain", "bike"]

    def test_stopword_only_input_is_empty(self):
        assert DEFAULT_ANALYZER.analyze("the of and") == []

    def test_no_stemming_option(self):
        analyzer = Analyzer(use_stemming=False)
        assert analyzer.analyze("bikes") == ["bikes"]

    def test_no_stopwords_option(self):
        analyzer = Analyzer(use_stopwords=False)
        assert "the" in analyzer.analyze("the bike")

    def test_stopword_list_is_classic_lucene(self):
        for word in ("a", "and", "the", "of", "for", "on", "or"):
            assert word in STOPWORDS
        assert "bike" not in STOPWORDS
