"""Figures 5 & 6 harness: bucket-count convergence."""

import pytest

from repro.evalkit import (
    evaluate_buckets_online,
    evaluate_buckets_reseller,
    rollup_cases,
)
from repro.evalkit.bucket_eval import _hierarchy_parent_map, case_error


@pytest.fixture(scope="module")
def online_eval(aw_online):
    return evaluate_buckets_online(aw_online, bucket_counts=(5, 20, 80))


@pytest.fixture(scope="module")
def reseller_eval(aw_reseller):
    return evaluate_buckets_reseller(aw_reseller,
                                     bucket_counts=(5, 20, 80))


class TestRollupCases:
    def test_subspace_inside_rollup(self, aw_online):
        state = aw_online.groupby_attribute("DimGeography",
                                            "StateProvinceName")
        country = aw_online.groupby_attribute("DimGeography",
                                              "CountryRegionName")
        cases = rollup_cases(aw_online, state, country,
                             _hierarchy_parent_map(aw_online, state,
                                                   country))
        assert cases
        for case in cases:
            assert case.rollup.contains(case.subspace)

    def test_min_rows_respected(self, aw_online):
        state = aw_online.groupby_attribute("DimGeography",
                                            "StateProvinceName")
        country = aw_online.groupby_attribute("DimGeography",
                                              "CountryRegionName")
        mapping = _hierarchy_parent_map(aw_online, state, country)
        cases = rollup_cases(aw_online, state, country, mapping,
                             min_rows=200)
        for case in cases:
            assert len(case.subspace) >= 200


class TestFigure5Shape:
    def test_four_lines(self, online_eval):
        assert len(online_eval.lines) == 4

    def test_errors_nonnegative(self, online_eval):
        for line in online_eval.lines:
            assert all(e >= 0.0 for e in line.errors.values())

    def test_error_decreases_with_buckets(self, online_eval):
        """The headline: error at 80 buckets is no worse than at 5."""
        for line in online_eval.lines:
            assert line.errors[80] <= line.errors[5] + 1e-9

    def test_converged_under_five_percent(self, online_eval):
        assert online_eval.converged_by(80, threshold=5.0)


class TestFigure6Shape:
    def test_three_lines(self, reseller_eval):
        assert len(reseller_eval.lines) == 3
        labels = {line.label.split(" /")[0] for line in reseller_eval.lines}
        assert labels == {"AnnualSales", "AnnualRevenue",
                          "NumberOfEmployees"}

    def test_error_decreases(self, reseller_eval):
        for line in reseller_eval.lines:
            assert line.errors[80] <= line.errors[5] + 1e-9

    def test_converged_under_five_percent(self, reseller_eval):
        assert reseller_eval.converged_by(80, threshold=5.0)


class TestCaseError:
    def test_exact_at_distinct_granularity(self, aw_online):
        """With enough buckets a case's error vanishes."""
        sub = aw_online.groupby_attribute("DimProductSubcategory",
                                          "ProductSubcategoryName")
        cat = aw_online.groupby_attribute("DimProductCategory",
                                          "ProductCategoryName")
        cases = rollup_cases(aw_online, sub, cat,
                             _hierarchy_parent_map(aw_online, sub, cat))
        income = aw_online.groupby_attribute("DimCustomer", "YearlyIncome")
        errors = [
            err for case in cases
            if (err := case_error(case, income, "revenue", 2000))
            is not None
        ]
        assert errors
        assert max(errors) < 1e-6
