"""Figure 7 harness: annealing iterations vs. merge error."""

import pytest

from repro.evalkit import basic_series_for_query, evaluate_annealing


class TestBasicSeries:
    def test_series_pair(self, online_session):
        x, y = basic_series_for_query(online_session, "France Clothing",
                                      "DimCustomer", "YearlyIncome")
        assert len(x) == len(y)
        assert len(x) >= 2

    def test_unknown_query_raises(self, online_session):
        with pytest.raises(ValueError):
            basic_series_for_query(online_session, "qqqzz",
                                   "DimCustomer", "YearlyIncome")


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self, online_session):
        return evaluate_annealing(online_session, "France Clothing",
                                  "DimCustomer", "YearlyIncome",
                                  iterations=300)

    def test_curves_for_each_k(self, scenario):
        ks = [c.num_intervals for c in scenario.curves]
        assert ks == [k for k in (5, 6, 7) if k <= scenario.basic_intervals]

    def test_error_histories_monotone(self, scenario):
        for curve in scenario.curves:
            errors = curve.errors
            assert all(a >= b - 1e-9 for a, b in zip(errors, errors[1:]))

    def test_error_drops_substantially(self, scenario):
        """Figure 7's message: the difference 'can be reduced dramatically
        as the iteration advances'."""
        for curve in scenario.curves:
            assert curve.errors[-1] <= curve.errors[0]
        best_drop = max(c.errors[0] - c.errors[-1] for c in scenario.curves)
        assert best_drop >= 0.0

    def test_error_at_helper(self, scenario):
        curve = scenario.curves[0]
        assert curve.error_at(1) == curve.errors[0]
        assert curve.error_at(10**6) == curve.errors[-1]

    def test_hundred_iterations_near_optimal(self, scenario):
        """'With 100 iterations, the algorithm can discover partitions
        that are almost as good as the basic interval partition.'"""
        for curve in scenario.curves:
            assert curve.error_at(100) <= 10.0  # within 10 corr points

    def test_skipped_k_larger_than_basic(self, online_session):
        scenario = evaluate_annealing(
            online_session, "France Clothing", "DimCustomer",
            "YearlyIncome", interval_counts=(5, 500), iterations=50)
        assert [c.num_intervals for c in scenario.curves] == [5]
