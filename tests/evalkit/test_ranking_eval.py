"""Figure 4 evaluation harness, including the headline shape assertions."""

import pytest

from repro.core import RankingMethod
from repro.evalkit import ALL_METHODS
from repro.datasets import AW_ONLINE_QUERIES, AW_RESELLER_QUERIES
from repro.evalkit import evaluate_ranking


@pytest.fixture(scope="module")
def evaluation(online_session):
    return evaluate_ranking(online_session, AW_ONLINE_QUERIES)


class TestMechanics:
    def test_one_outcome_per_query(self, evaluation):
        assert evaluation.num_queries == 50

    def test_curves_monotone(self, evaluation):
        for method in ALL_METHODS:
            curve = evaluation.curve(method, 10)
            assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_curves_bounded(self, evaluation):
        for method in ALL_METHODS:
            for value in evaluation.curve(method, 10):
                assert 0.0 <= value <= 1.0

    def test_unsatisfied_listing(self, evaluation):
        missed = evaluation.unsatisfied(RankingMethod.BASELINE, within=1)
        for outcome in missed:
            rank = outcome.ranks[RankingMethod.BASELINE]
            assert rank is None or rank > 1


class TestPaperShape:
    """Figure 4's qualitative findings, asserted as inequalities."""

    def test_standard_top1_strong(self, evaluation):
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 1) >= 0.80

    def test_standard_all_within_top5(self, evaluation):
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 5) >= 0.95

    def test_standard_beats_no_number_norm(self, evaluation):
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 1) > \
            evaluation.satisfied_at(RankingMethod.NO_GROUP_NUMBER_NORM, 1)

    def test_standard_beats_baseline(self, evaluation):
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 1) > \
            evaluation.satisfied_at(RankingMethod.BASELINE, 1)

    def test_size_norm_not_critical(self, evaluation):
        """'The group size normalization does not play an important
        role': disabling it stays within a few points of standard."""
        standard = evaluation.satisfied_at(RankingMethod.STANDARD, 1)
        no_size = evaluation.satisfied_at(RankingMethod.NO_GROUP_SIZE_NORM,
                                          1)
        assert abs(standard - no_size) <= 0.10

    def test_number_norm_is_significant(self, evaluation):
        standard = evaluation.satisfied_at(RankingMethod.STANDARD, 1)
        no_number = evaluation.satisfied_at(
            RankingMethod.NO_GROUP_NUMBER_NORM, 1)
        assert standard - no_number >= 0.20


class TestResellerReplication:
    """§6.3: 'The results are almost identical' on AW_RESELLER."""

    def test_standard_strong_on_reseller(self, reseller_session):
        evaluation = evaluate_ranking(reseller_session,
                                      AW_RESELLER_QUERIES)
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 1) >= 0.8
        assert evaluation.satisfied_at(RankingMethod.STANDARD, 5) >= 0.9


class TestKeywordCountBreakdown:
    def test_buckets_cover_all_queries(self, evaluation):
        breakdown = evaluation.by_keyword_count(RankingMethod.STANDARD)
        assert sum(total for _hits, total in breakdown.values()) == 50

    def test_hits_bounded_by_totals(self, evaluation):
        breakdown = evaluation.by_keyword_count(RankingMethod.STANDARD,
                                                top_x=5)
        for hits, total in breakdown.values():
            assert 0 <= hits <= total

    def test_counts_sorted(self, evaluation):
        breakdown = evaluation.by_keyword_count(RankingMethod.STANDARD)
        counts = list(breakdown)
        assert counts == sorted(counts)
