"""Typo-robustness harness."""

import random

import pytest

from repro.datasets import AW_ONLINE_QUERIES
from repro.evalkit.robustness_eval import (
    corrupt_query,
    evaluate_robustness,
    misspell_keyword,
)


class TestMisspell:
    def test_one_edit_distance(self):
        rng = random.Random(1)
        for word in ("California", "Mountain", "Bachelors"):
            corrupted = misspell_keyword(word, rng)
            assert corrupted != word
            assert len(corrupted) == len(word)
            diffs = sum(a != b for a, b in zip(word, corrupted))
            assert diffs in (1, 2)  # substitution or transposition

    def test_short_words_untouched(self):
        rng = random.Random(1)
        assert misspell_keyword("US", rng) == "US"
        assert misspell_keyword("2001", rng) == "2001"

    def test_deterministic_given_rng(self):
        assert misspell_keyword("California", random.Random(5)) == \
            misspell_keyword("California", random.Random(5))

    def test_substitution_never_returns_original(self):
        """Seeded regression: across many seeds and tricky keywords
        (uppercase, repeated letters, mixed case) every eligible keyword
        must come back changed — the substitution branch resamples its
        replacement character until the edit sticks."""
        words = ("California", "MOUNTAIN", "aaaaa", "AAAAA", "BbBbB",
                 "bikes2001x", "Mississippi")
        for seed in range(200):
            rng = random.Random(seed)
            for word in words:
                corrupted = misspell_keyword(word, rng)
                assert corrupted != word, (seed, word)
                assert len(corrupted) == len(word)


class TestCorruptQuery:
    def test_longest_keyword_changed(self):
        rng = random.Random(2)
        query = AW_ONLINE_QUERIES[23]  # "Sydney Helmet Discount"
        corrupted = corrupt_query(query, rng)
        original = query.text.split()
        mutated = corrupted.text.split()
        assert len(original) == len(mutated)
        longest = max(range(len(original)),
                      key=lambda i: len(original[i]))
        assert mutated[longest] != original[longest]

    def test_ground_truth_preserved(self):
        rng = random.Random(2)
        query = AW_ONLINE_QUERIES[0]
        corrupted = corrupt_query(query, rng)
        assert corrupted.interpretations == query.interpretations
        assert corrupted.qid == query.qid


class TestEvaluation:
    @pytest.fixture(scope="class")
    def result(self, online_session):
        return evaluate_robustness(online_session,
                                   AW_ONLINE_QUERIES[:20], seed=17)

    def test_fuzzy_never_hurts(self, result):
        for top_x in (1, 5, 10):
            assert result.satisfied(True, top_x) >= \
                result.satisfied(False, top_x) - 1e-9

    def test_fuzzy_recovers_queries(self, result):
        assert result.satisfied(True, 5) > result.satisfied(False, 5)

    def test_corrupted_workload_shape(self, result):
        assert len(result.corrupted) == 20
        assert all("corrupted from" in q.note for q in result.corrupted)
