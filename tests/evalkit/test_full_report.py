"""The one-shot experiment report generator."""

import pytest

from repro.evalkit.full_report import generate_report


@pytest.fixture(scope="module")
def report(aw_online, aw_reseller):
    return generate_report(aw_online, aw_reseller,
                           bucket_counts=(5, 20, 80),
                           annealing_iterations=100)


class TestReport:
    def test_contains_all_sections(self, report):
        for needle in (
            "Table 1", "Table 2", "Figure 4", "Figure 5", "Figure 6",
            "Figure 7",
        ):
            assert needle in report

    def test_both_warehouses_reported(self, report):
        assert "AW_ONLINE" in report
        assert "AW_RESELLER" in report

    def test_markdown_code_blocks_balanced(self, report):
        assert report.count("```") % 2 == 0

    def test_figure4_methods_present(self, report):
        for method in ("standard", "baseline", "no-group-number-norm",
                       "no-group-size-norm"):
            assert method in report
