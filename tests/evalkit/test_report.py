"""ASCII report renderers."""

from repro.evalkit import (
    render_facets,
    render_series,
    render_star_nets,
    render_table,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "333" in lines[3]

    def test_empty_rows(self):
        out = render_table(("x",), [])
        assert "x" in out


class TestRenderSeries:
    def test_columns(self):
        out = render_series([5, 10], {"m1": [1.0, 0.5], "m2": [2.0, 1.5]},
                            x_label="buckets")
        assert "buckets" in out
        assert "m1" in out and "m2" in out
        assert "0.500" in out


class TestRenderStarNets:
    def test_table1_style(self, online_session):
        ranked = online_session.differentiate("California Mountain Bikes",
                                              limit=5)
        out = render_star_nets(ranked, limit=3)
        assert "score" in out
        assert "California" in out
        assert out.count("\n") <= 5


class TestRenderFacets:
    def test_table2_style(self, online_session):
        result = online_session.search("California Mountain Bikes")
        out = render_facets(result.interface, dimensions=["Product"])
        assert "Product Dimension" in out
        assert "Mountain Bikes" in out
        assert "promoted" in out
