"""Synthetic AdventureWorks warehouses: shape, determinism, integrity."""


from repro.datasets import build_aw_online


class TestShape:
    def test_fact_row_count(self, aw_online):
        assert aw_online.num_fact_rows == 8000

    def test_referential_integrity(self, aw_online, aw_reseller):
        assert aw_online.database.check_referential_integrity() == []
        assert aw_reseller.database.check_referential_integrity() == []

    def test_table_counts(self, aw_online, aw_reseller):
        assert len(aw_online.database.table_names) == 10
        assert len(aw_reseller.database.table_names) == 13

    def test_measure_defined(self, aw_online, aw_reseller):
        assert "revenue" in aw_online.measures
        assert "revenue" in aw_reseller.measures

    def test_revenue_positive(self, aw_online):
        assert all(v > 0 for v in aw_online.measure_vector("revenue"))


class TestSpecialRows:
    """Fixed rows the paper's Table 3 queries rely on."""

    def test_fernando_email(self, aw_online):
        emails = aw_online.database.table("DimCustomer") \
            .distinct("EmailAddress")
        assert "fernando35@adventure-works.com" in emails

    def test_sydney_first_name(self, aw_online):
        names = aw_online.database.table("DimCustomer").distinct("FirstName")
        assert "Sydney" in names

    def test_california_street_addresses(self, aw_online):
        addresses = aw_online.database.table("DimCustomer") \
            .distinct("AddressLine1")
        assert "345 California Street" in addresses
        assert "392 California Street" in addresses

    def test_phone_number(self, aw_online):
        phones = aw_online.database.table("DimCustomer").distinct("Phone")
        assert "1245550139" in phones

    def test_mountain_bikes_subcategory(self, aw_online):
        subs = aw_online.database.table("DimProductSubcategory") \
            .distinct("ProductSubcategoryName")
        assert "Mountain Bikes" in subs

    def test_british_columbia(self, aw_reseller):
        states = aw_reseller.database.table("DimGeography") \
            .distinct("StateProvinceName")
        assert "British Columbia" in states


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = build_aw_online(num_customers=50, num_facts=300, seed=5)
        b = build_aw_online(num_customers=50, num_facts=300, seed=5)
        fact_a = a.database.table("FactInternetSales")
        fact_b = b.database.table("FactInternetSales")
        assert fact_a.column_values("ProductKey") == \
            fact_b.column_values("ProductKey")
        assert fact_a.column_values("UnitPrice") == \
            fact_b.column_values("UnitPrice")

    def test_different_seed_different_data(self):
        a = build_aw_online(num_customers=50, num_facts=300, seed=5)
        b = build_aw_online(num_customers=50, num_facts=300, seed=6)
        assert a.database.table("FactInternetSales") \
            .column_values("ProductKey") != \
            b.database.table("FactInternetSales") \
            .column_values("ProductKey")


class TestInjectedStructure:
    def test_california_mountain_bike_affinity(self, aw_online):
        """The injected surprise: Californians over-buy mountain bikes."""
        schema = aw_online
        state_gb = schema.groupby_attribute("DimGeography",
                                            "StateProvinceName")
        sub_gb = schema.groupby_attribute("DimProductSubcategory",
                                          "ProductSubcategoryName")
        states = schema.groupby_vector(state_gb)
        subs = schema.groupby_vector(sub_gb)

        def share(state):
            rows = [i for i, s in enumerate(states) if s == state]
            mb = sum(1 for i in rows if subs[i] == "Mountain Bikes")
            return mb / len(rows)

        assert share("California") > share("Washington")

    def test_price_affinity(self, aw_online):
        """Richer customers buy more expensive products on average."""
        schema = aw_online
        income_gb = schema.groupby_attribute("DimCustomer", "YearlyIncome")
        price_gb = schema.groupby_attribute("DimProduct", "DealerPrice")
        incomes = schema.groupby_vector(income_gb)
        prices = schema.groupby_vector(price_gb)
        rich = [p for i, p in zip(incomes, prices) if i >= 100000]
        poor = [p for i, p in zip(incomes, prices) if i <= 30000]
        assert sum(rich) / len(rich) > sum(poor) / len(poor)
