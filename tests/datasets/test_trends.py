"""The Google-Trends-style query-log warehouse."""

import pytest

from repro.core import ExploreConfig, KdapSession
from repro.datasets import build_trends
from repro.warehouse import Subspace


@pytest.fixture(scope="module")
def trends():
    return build_trends(num_facts=6000, seed=11)


@pytest.fixture(scope="module")
def trends_session(trends):
    return KdapSession(trends)


EXPLORE = ExploreConfig(measure_name="volume")


class TestShape:
    def test_integrity(self, trends):
        assert trends.database.check_referential_integrity() == []

    def test_three_dimensions(self, trends):
        assert [d.name for d in trends.dimensions] == \
            ["SearchTerm", "Region", "Time"]

    def test_volume_measure(self, trends):
        assert "volume" in trends.measures
        assert all(v > 0 for v in trends.measure_vector("volume"))


class TestKdapOverQueryLogs:
    def test_term_query(self, trends_session):
        result = trends_session.search("olympics",
                                       explore_config=EXPLORE)
        assert result is not None
        values = result.star_net.rays[0].hit_group.values
        assert "olympics schedule" in values

    def test_topic_and_region_query(self, trends_session):
        ranked = trends_session.differentiate("Sports Australia", limit=5)
        assert ranked
        domains = {r.hit_group.domain for r in ranked[0].star_net.rays}
        assert ("DimSearchTerm", "Topic") in domains

    def test_injected_seasonality_detected(self, trends):
        """'halloween costumes' volume concentrates in October."""
        schema = trends
        term_gb = schema.groupby_attribute("DimSearchTerm", "TermText")
        month_gb = schema.groupby_attribute("DimDate", "MonthName")
        vector = schema.groupby_vector(term_gb)
        rows = [r for r, v in enumerate(vector)
                if v == "halloween costumes"]
        subspace = Subspace.of(schema, rows)
        parts = subspace.partition_aggregates(month_gb, "volume")
        assert max(parts, key=parts.get) == "October"

    def test_injected_region_affinity(self, trends):
        """'super bowl' volume per entry is higher in the United States."""
        schema = trends
        term_gb = schema.groupby_attribute("DimSearchTerm", "TermText")
        country_gb = schema.groupby_attribute("DimRegion", "Country")
        term_vec = schema.groupby_vector(term_gb)
        country_vec = schema.groupby_vector(country_gb)
        volume = schema.measure_vector("volume")
        us, elsewhere = [], []
        for r, term in enumerate(term_vec):
            if term != "super bowl":
                continue
            (us if country_vec[r] == "United States"
             else elsewhere).append(volume[r])
        assert us and elsewhere
        assert sum(us) / len(us) > sum(elsewhere) / len(elsewhere)

    def test_determinism(self):
        a = build_trends(num_facts=500, seed=3)
        b = build_trends(num_facts=500, seed=3)
        assert a.database.table("FactQueryVolume").column_values("Volume") \
            == b.database.table("FactQueryVolume").column_values("Volume")
