"""The EBiz running example (Figure 2)."""


from repro.datasets import build_ebiz


class TestShape:
    def test_integrity(self, ebiz):
        assert ebiz.database.check_referential_integrity() == []

    def test_fact_complex(self, ebiz):
        assert ebiz.fact_table == "TRANSITEM"
        assert "TRANS" in ebiz.fact_complex

    def test_four_dimensions(self, ebiz):
        assert [d.name for d in ebiz.dimensions] == \
            ["Time", "Store", "Customer", "Product"]

    def test_product_has_two_hierarchies(self, ebiz):
        product = ebiz.dimension("Product")
        assert len(product.hierarchies) == 2


class TestAmbiguityMaterial:
    """The data behind Example 3.1."""

    def test_columbus_city_and_holiday(self, ebiz):
        cities = ebiz.database.table("LOCATION").distinct("City")
        events = ebiz.database.table("HOLIDAY").distinct("Event")
        assert "Columbus" in cities
        assert "Columbus Day" in events

    def test_lcd_at_multiple_levels(self, ebiz):
        groups = ebiz.database.table("PGROUP").distinct("GroupName")
        lcd_groups = {g for g in groups if "LCD" in g}
        assert lcd_groups == {"LCD Projectors", "Flat Panel(LCD)",
                              "LCD TVs"}

    def test_location_shared(self, ebiz):
        dims = {d.name for d in ebiz.dimensions_of_table("LOCATION")}
        assert dims == {"Store", "Customer"}

    def test_parallel_buyer_seller_edges(self, ebiz):
        fks = {fk.name for fk in ebiz.database.foreign_keys_of("TRANS")}
        assert {"fk_trans_buyer", "fk_trans_seller"} <= fks


class TestDeterminism:
    def test_same_seed_same_facts(self):
        a = build_ebiz(num_trans=100, seed=1)
        b = build_ebiz(num_trans=100, seed=1)
        assert a.database.table("TRANSITEM").column_values("ProductKey") \
            == b.database.table("TRANSITEM").column_values("ProductKey")
