"""The Table 3 workload and its relevance machinery."""


from repro.core import HitGroup, Ray, StarNet
from repro.datasets import (
    AW_ONLINE_QUERIES,
    AW_RESELLER_QUERIES,
    BenchmarkQuery,
    Spec,
    is_relevant,
    relevant_rank,
)
from repro.textindex import SearchHit
from repro.warehouse import EMPTY_PATH


def make_net(*domains):
    """A star net whose rays hit the given (table, attr, value) domains."""
    rays = []
    for table, attr, value in domains:
        hit = SearchHit(table, attr, value, 1.0)
        rays.append(Ray(HitGroup(table, attr, (hit,), ("k",)),
                        EMPTY_PATH, None))
    return StarNet("F", tuple(rays))


class TestWorkloadShape:
    def test_fifty_queries(self):
        assert len(AW_ONLINE_QUERIES) == 50

    def test_ids_unique_and_ordered(self):
        ids = [q.qid for q in AW_ONLINE_QUERIES]
        assert ids == list(range(1, 51))

    def test_every_query_has_an_interpretation(self):
        for query in AW_ONLINE_QUERIES:
            assert query.interpretations

    def test_keyword_count_distribution(self):
        """Table 3's queries are 'evenly distributed in terms of the
        number of keywords contained'."""
        lengths = [len(q.text.split()) for q in AW_ONLINE_QUERIES]
        assert min(lengths) == 1
        assert max(lengths) >= 5
        singles = sum(1 for n in lengths if n == 1)
        assert singles >= 8

    def test_reseller_workload_present(self):
        assert len(AW_RESELLER_QUERIES) == 10


class TestRelevance:
    QUERY = BenchmarkQuery(
        99, "test",
        ((Spec("T", "A", "x"), Spec("T", "B")),),
    )

    def test_match(self):
        net = make_net(("T", "A", "x"), ("T", "B", "anything"))
        assert is_relevant(net, self.QUERY)

    def test_order_independent(self):
        net = make_net(("T", "B", "anything"), ("T", "A", "x"))
        assert is_relevant(net, self.QUERY)

    def test_wrong_value(self):
        net = make_net(("T", "A", "y"), ("T", "B", "z"))
        assert not is_relevant(net, self.QUERY)

    def test_wrong_size(self):
        assert not is_relevant(make_net(("T", "A", "x")), self.QUERY)

    def test_same_domain_distinct_values(self):
        query = BenchmarkQuery(
            98, "t", ((Spec("T", "A", "x"), Spec("T", "A", "y")),))
        assert is_relevant(make_net(("T", "A", "x"), ("T", "A", "y")),
                           query)
        assert not is_relevant(make_net(("T", "A", "x"), ("T", "A", "x")),
                               query)

    def test_alternative_interpretations(self):
        query = BenchmarkQuery(
            97, "t",
            ((Spec("T", "A", "x"),), (Spec("T", "B", "y"),)),
        )
        assert is_relevant(make_net(("T", "A", "x")), query)
        assert is_relevant(make_net(("T", "B", "y")), query)
        assert not is_relevant(make_net(("T", "C", "z")), query)

    def test_dimension_constraint(self):
        query = BenchmarkQuery(
            96, "t", ((Spec("T", "A", dimension="Store"),),))
        hit = SearchHit("T", "A", "v", 1.0)
        store_ray = Ray(HitGroup("T", "A", (hit,), ("k",)), EMPTY_PATH,
                        "Store")
        customer_ray = Ray(HitGroup("T", "A", (hit,), ("k",)), EMPTY_PATH,
                           "Customer")
        assert is_relevant(StarNet("F", (store_ray,)), query)
        assert not is_relevant(StarNet("F", (customer_ray,)), query)


class TestRelevantRank:
    def test_rank_found(self):
        from repro.core import ScoredStarNet
        query = BenchmarkQuery(95, "t", ((Spec("T", "A", "x"),),))
        ranked = [
            ScoredStarNet(make_net(("T", "B", "y")), 2.0),
            ScoredStarNet(make_net(("T", "A", "x")), 1.0),
        ]
        assert relevant_rank(ranked, query) == 2

    def test_rank_missing(self):
        from repro.core import ScoredStarNet
        query = BenchmarkQuery(94, "t", ((Spec("T", "A", "x"),),))
        ranked = [ScoredStarNet(make_net(("T", "B", "y")), 1.0)]
        assert relevant_rank(ranked, query) is None
