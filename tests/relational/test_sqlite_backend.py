"""sqlite3 mirror of the in-memory engine."""

import pytest

from repro.relational import (
    Database,
    SqliteBackend,
    Table,
    boolean,
    date,
    float_,
    integer,
    text,
)


@pytest.fixture
def db():
    database = Database("Mini")
    t = Table("Items", [
        integer("Id", nullable=False),
        text("Name"),
        float_("Price"),
        date("Added"),
        boolean("Active"),
    ], primary_key="Id")
    t.insert_many([
        {"Id": 1, "Name": "a", "Price": 1.5, "Added": "2020-01-01",
         "Active": True},
        {"Id": 2, "Name": "b", "Price": 2.5, "Added": "2020-01-02",
         "Active": False},
        {"Id": 3, "Name": None, "Price": None, "Added": None,
         "Active": None},
    ])
    database.add_table(t)
    return database


class TestSqliteBackend:
    def test_row_count(self, db):
        with SqliteBackend(db) as backend:
            rows = backend.execute("SELECT COUNT(*) FROM Items")
            assert rows == [(3,)]

    def test_values_roundtrip(self, db):
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Name, Price FROM Items ORDER BY Id")
            assert rows == [("a", 1.5), ("b", 2.5), (None, None)]

    def test_bool_fidelity(self, db):
        """BOOLEAN columns round-trip as Python bools, not 0/1 ints."""
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Active FROM Items ORDER BY Id")
            values = [r[0] for r in rows]
            assert values == [True, False, None]
            assert isinstance(values[0], bool)
            assert isinstance(values[1], bool)

    def test_bool_stored_as_int(self, db):
        """On disk the column is still 0/1, so plain SQL comparisons work."""
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Id FROM Items WHERE Active = 1")
            assert rows == [(1,)]

    def test_date_fidelity(self, db):
        """DATE columns round-trip as the engine's ISO-8601 strings."""
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Added FROM Items ORDER BY Id")
            assert [r[0] for r in rows] == [
                "2020-01-01", "2020-01-02", None]

    def test_date_comparisons_still_work(self, db):
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Id FROM Items WHERE Added > '2020-01-01'")
            assert rows == [(2,)]

    def test_aggregation(self, db):
        with SqliteBackend(db) as backend:
            rows = backend.execute("SELECT SUM(Price) FROM Items")
            assert rows[0][0] == pytest.approx(4.0)

    def test_pk_enforced(self, db):
        import sqlite3
        with SqliteBackend(db) as backend:
            with pytest.raises(sqlite3.IntegrityError):
                backend.connection.execute(
                    "INSERT INTO Items (Id) VALUES (1)")

    def test_parameters(self, db):
        with SqliteBackend(db) as backend:
            rows = backend.execute(
                "SELECT Id FROM Items WHERE Name = ?", ("b",))
            assert rows == [(2,)]
