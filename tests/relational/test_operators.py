"""Relational operators, including hypothesis cross-checks against naive
implementations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import (
    AGGREGATES,
    Table,
    aggregate_avg,
    aggregate_count,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    eq,
    group_by_column,
    hash_join,
    integer,
    project,
    select,
    semi_join,
    text,
)


@pytest.fixture
def orders():
    t = Table("Orders", [integer("Id"), integer("CustomerId"),
                         integer("Amount")])
    t.insert_many([
        {"Id": 1, "CustomerId": 10, "Amount": 5},
        {"Id": 2, "CustomerId": 11, "Amount": 7},
        {"Id": 3, "CustomerId": 10, "Amount": 2},
        {"Id": 4, "CustomerId": 12, "Amount": None},
    ])
    return t


@pytest.fixture
def customers():
    t = Table("Customers", [integer("Id"), text("Name")])
    t.insert_many([
        {"Id": 10, "Name": "Ada"},
        {"Id": 11, "Name": "Alan"},
        {"Id": 13, "Name": "Grace"},
    ])
    return t


class TestSelect:
    def test_basic(self, orders):
        assert select(orders, eq("CustomerId", 10)) == [0, 2]

    def test_refinement(self, orders):
        assert select(orders, eq("CustomerId", 10), row_ids=[2, 3]) == [2]

    def test_empty(self, orders):
        assert select(orders, eq("CustomerId", 99)) == []


class TestSemiJoin:
    def test_child_rows_matching_parents(self, orders, customers):
        rows = semi_join(orders, "CustomerId", [0, 1], customers, "Id")
        assert rows == [0, 1, 2]

    def test_no_parents(self, orders, customers):
        assert semi_join(orders, "CustomerId", [], customers, "Id") == []

    def test_restricted_children(self, orders, customers):
        rows = semi_join(orders, "CustomerId", [0], customers, "Id",
                         child_row_ids=[2, 3])
        assert rows == [2]


class TestHashJoin:
    def test_pairs(self, orders, customers):
        pairs = hash_join(orders, "CustomerId", customers, "Id")
        assert set(pairs) == {(0, 0), (2, 0), (1, 1)}

    def test_null_keys_dropped(self, customers):
        t = Table("X", [integer("K")])
        t.insert({"K": None})
        assert hash_join(t, "K", customers, "Id") == []


class TestProject:
    def test_tuples(self, orders):
        assert project(orders, ["Id", "Amount"], [0, 1]) == [(1, 5), (2, 7)]

    def test_distinct(self, orders):
        rows = project(orders, ["CustomerId"], distinct=True)
        assert rows == [(10,), (11,), (12,)]


class TestGroupBy:
    def test_by_column(self, orders):
        groups = group_by_column(orders, "CustomerId")
        assert groups == {10: [0, 2], 11: [1], 12: [3]}

    def test_null_keys_dropped(self, orders):
        orders.insert({"Id": 5, "CustomerId": None, "Amount": 1})
        groups = group_by_column(orders, "CustomerId")
        assert None not in groups


class TestAggregates:
    def test_sum_ignores_none(self):
        assert aggregate_sum([1, None, 2]) == 3

    def test_count_non_null(self):
        assert aggregate_count([1, None, 2]) == 2

    def test_avg(self):
        assert aggregate_avg([2, 4, None]) == 3

    def test_avg_empty_is_none(self):
        assert aggregate_avg([None]) is None

    def test_min_max(self):
        assert aggregate_min([3, 1, None]) == 1
        assert aggregate_max([3, 1, None]) == 3

    def test_registry(self):
        assert set(AGGREGATES) == {"sum", "count", "avg", "min", "max"}


# ----------------------------------------------------------------------
# property-based cross-checks
# ----------------------------------------------------------------------
keys = st.lists(st.one_of(st.integers(0, 20), st.none()), min_size=0,
                max_size=30)


@given(child_keys=keys, parent_keys=keys)
@settings(max_examples=60, deadline=None)
def test_semi_join_matches_naive(child_keys, parent_keys):
    child = Table("C", [integer("K")])
    child.insert_many({"K": k} for k in child_keys)
    parent = Table("P", [integer("K")])
    parent.insert_many({"K": k} for k in parent_keys)
    got = semi_join(child, "K", range(len(parent)), parent, "K")
    want = [
        i for i, k in enumerate(child_keys)
        if k is not None and k in {p for p in parent_keys if p is not None}
    ]
    assert got == want


@given(child_keys=keys, parent_keys=keys)
@settings(max_examples=60, deadline=None)
def test_hash_join_matches_naive(child_keys, parent_keys):
    child = Table("C", [integer("K")])
    child.insert_many({"K": k} for k in child_keys)
    parent = Table("P", [integer("K")])
    parent.insert_many({"K": k} for k in parent_keys)
    got = set(hash_join(child, "K", parent, "K"))
    want = {
        (i, j)
        for i, a in enumerate(child_keys)
        for j, b in enumerate(parent_keys)
        if a is not None and a == b
    }
    assert got == want


@given(values=st.lists(st.one_of(st.integers(-5, 5), st.none()),
                       max_size=40))
@settings(max_examples=60, deadline=None)
def test_group_by_partitions_rows(values):
    t = Table("T", [integer("V")])
    t.insert_many({"V": v} for v in values)
    groups = group_by_column(t, "V")
    covered = sorted(rid for rows in groups.values() for rid in rows)
    want = [i for i, v in enumerate(values) if v is not None]
    assert covered == want
    for key, rows in groups.items():
        assert all(values[r] == key for r in rows)
