"""SQL generation for join queries."""

from repro.relational import AliasFilter, JoinEdge, JoinQuery, eq, isin
from repro.relational.sql import _qualify


class TestQualify:
    def test_bare_identifier(self):
        assert _qualify("City = 'Columbus'", "t1") == "t1.City = 'Columbus'"

    def test_keywords_untouched(self):
        out = _qualify("A = 1 AND B IN ('x')", "t")
        assert out == "t.A = 1 AND t.B IN ('x')"

    def test_string_literal_untouched(self):
        out = _qualify("Name = 'AND City'", "t")
        assert out == "t.Name = 'AND City'"

    def test_escaped_quote_in_literal(self):
        out = _qualify("Name = 'it''s City'", "t")
        assert out == "t.Name = 'it''s City'"


class TestJoinQuery:
    def build(self):
        query = JoinQuery(fact_table="Fact", fact_alias="f",
                          aggregate="sum", measure_sql="(f.Price * f.Qty)")
        query.edges.append(JoinEdge("f", "ProdKey", "DimProduct", "t1",
                                    "ProdKey"))
        query.filters.append(AliasFilter("t1", isin("Name", ["LCD"])))
        return query

    def test_select_from_join(self):
        sql = self.build().to_sql()
        assert "SELECT SUM((f.Price * f.Qty)) AS agg" in sql
        assert "FROM Fact AS f" in sql
        assert "JOIN DimProduct AS t1 ON f.ProdKey = t1.ProdKey" in sql

    def test_where_qualified(self):
        sql = self.build().to_sql()
        assert "WHERE (t1.Name IN ('LCD'))" in sql

    def test_group_by(self):
        query = self.build()
        query.group_by.append(("t1", "Name"))
        sql = query.to_sql()
        assert sql.startswith("SELECT t1.Name, SUM")
        assert sql.endswith("GROUP BY t1.Name")

    def test_multiple_filters_anded(self):
        query = self.build()
        query.filters.append(AliasFilter("f", eq("Qty", 2)))
        sql = query.to_sql()
        assert "WHERE (t1.Name IN ('LCD')) AND (f.Qty = 2)" in sql

    def test_no_filters_no_where(self):
        query = JoinQuery(fact_table="Fact", fact_alias="f")
        assert "WHERE" not in query.to_sql()
