"""Version counters must invalidate every cache layered above a table.

The write store bumps ``Table.version`` on each mutation; the encoded
read store, the star schema's fact-aligned vectors, the memory backend's
memoised measure vector, the engine's epoch-qualified plan cache, and
non-incremental materialized views all key their freshness off it.  Each
test here mutates a table and asserts the derived layer either extends
(incremental caches) or recomputes (non-foldable ones) — never serves
stale data.
"""

import random

from repro.datasets.scale import build_scale
from repro.plan.engine import QueryEngine
from repro.relational.chunks import CHUNK_SIZE
from repro.relational.table import Table
from repro.relational.types import float_, integer, text
from repro.warehouse import MaterializationTier, Subspace


def make_table():
    return Table("T", [integer("K", nullable=False), text("Name"),
                       float_("Price")], primary_key="K")


# ---------------------------------------------------------------------------
# the version counter itself
# ---------------------------------------------------------------------------
def test_insert_bumps_version():
    t = make_table()
    v0 = t.version
    t.insert({"K": 1, "Name": "a", "Price": 1.0})
    assert t.version == v0 + 1


def test_insert_many_bumps_version_per_row():
    t = make_table()
    v0 = t.version
    t.insert_many([{"K": i, "Name": "x", "Price": 0.5} for i in range(3)])
    assert t.version > v0


def test_load_columns_bumps_version_once():
    t = make_table()
    v0 = t.version
    t.load_columns({"K": [1, 2], "Name": ["a", "b"], "Price": [1.0, 2.0]})
    assert t.version == v0 + 1


def test_failed_insert_still_bumps_version():
    """A rolled-back duplicate-PK insert may leave the counter bumped —
    over-invalidation is safe — but must never leave rows behind."""
    t = make_table()
    t.insert({"K": 1, "Name": "a", "Price": 1.0})
    try:
        t.insert({"K": 1, "Name": "dup", "Price": 2.0})
    except Exception:
        pass
    assert len(t) == 1


# ---------------------------------------------------------------------------
# encoded read store (column chunks)
# ---------------------------------------------------------------------------
def test_column_chunks_reencode_after_insert():
    t = make_table()
    t.load_columns({"K": list(range(CHUNK_SIZE + 10)),
                    "Name": ["n"] * (CHUNK_SIZE + 10),
                    "Price": [1.0] * (CHUNK_SIZE + 10)})
    chunks = t.column_chunks("K")
    assert chunks[-1].stop == CHUNK_SIZE + 10
    assert t.column_chunks("K") is chunks  # stable while unmutated
    t.insert({"K": CHUNK_SIZE + 10, "Name": "late", "Price": 9.0})
    fresh = t.column_chunks("K")
    assert fresh is not chunks
    assert fresh[-1].stop == CHUNK_SIZE + 11
    assert fresh[-1].zone.hi == CHUNK_SIZE + 10


# ---------------------------------------------------------------------------
# star-schema fact-aligned caches
# ---------------------------------------------------------------------------
def test_schema_vectors_extend_after_append():
    schema = build_scale(num_facts=500, seed=3)
    gb = schema.groupby_attribute("DimProduct", "CategoryName")
    assert len(schema.groupby_vector(gb)) == 500
    assert len(schema.measure_vector("revenue")) == 500
    schema.database.table("FactScaleSales").insert({
        "OrderKey": 501, "ProductKey": 1, "DateKey": 20030101,
        "UnitPrice": 10.0, "Quantity": 2,
    })
    values = schema.groupby_vector(gb)
    measures = schema.measure_vector("revenue")
    assert len(values) == 501 and len(measures) == 501
    assert measures[-1] == 20.0  # the delta row was actually evaluated


def test_fact_chunks_cover_appended_rows():
    schema = build_scale(num_facts=CHUNK_SIZE + 50, seed=3)
    gb = schema.groupby_attribute("DimProduct", "CategoryName")
    before = schema.fact_chunks(gb.path_from_fact, gb.ref.column)
    schema.database.table("FactScaleSales").insert({
        "OrderKey": CHUNK_SIZE + 51, "ProductKey": 2,
        "DateKey": 20030102, "UnitPrice": 5.0, "Quantity": 1,
    })
    after = schema.fact_chunks(gb.path_from_fact, gb.ref.column)
    assert after[-1].stop == before[-1].stop + 1


# ---------------------------------------------------------------------------
# query layers above the schema
# ---------------------------------------------------------------------------
def totals(groups: dict) -> float:
    return sum(groups.values())


def test_backend_measure_memo_not_stale_after_append():
    """Regression: the memory backend memoised measure vectors with no
    version check, so a fact append made grouped row ids index past the
    end of the stale vector (IndexError) — or worse, silently drop the
    appended rows from aggregates."""
    schema = build_scale(num_facts=400, seed=3)
    engine = QueryEngine(schema)
    gb = schema.groupby_attribute("DimProduct", "CategoryName")
    engine.subspace_partition_aggregates(Subspace.full(schema), gb,
                                         "revenue")
    fact = schema.database.table("FactScaleSales")
    fact.insert({"OrderKey": 401, "ProductKey": 1, "DateKey": 20030103,
                 "UnitPrice": 100.0, "Quantity": 1})
    after = engine.subspace_partition_aggregates(Subspace.full(schema),
                                                 gb, "revenue")
    direct = Subspace.full(schema).partition_aggregates(gb, "revenue")
    assert totals(after) == totals(direct)


def test_plan_cache_epoch_rolls_over_on_any_table_mutation():
    """Plan fingerprints cannot see table contents, so the engine's
    cache keys carry an epoch (sum of table versions): mutating *any*
    table — fact or dimension — must retire cached results."""
    schema = build_scale(num_facts=400, seed=3)
    engine = QueryEngine(schema)
    gb = schema.groupby_attribute("DimProduct", "CategoryName")
    full = Subspace.full(schema)
    first = engine.subspace_partition_aggregates(full, gb, "revenue")
    assert engine.cache_stats.misses == 1
    engine.subspace_partition_aggregates(full, gb, "revenue")
    assert engine.cache_stats.hits == 1  # same epoch: cache hit
    schema.database.table("DimProduct").insert({
        "ProductKey": 999, "ProductName": "Epoch Product",
        "Color": "Red", "CategoryName": "Clothing", "ListPrice": 1.0,
    })
    second = engine.subspace_partition_aggregates(full, gb, "revenue")
    assert engine.cache_stats.misses == 2  # new epoch: no stale hit
    assert totals(first) == totals(second)  # new product sold nothing


def test_dim_mutation_invalidates_non_incremental_view():
    """Fact appends fold forward; dimension changes cannot, so the
    materialized view must detect the dim version change and rebuild."""
    schema = build_scale(num_facts=400, seed=3)
    tier = MaterializationTier(schema)
    gb = schema.groupby_attribute("DimProduct", "ProductName")
    tier.precompute("revenue", [gb])
    rng = random.Random(1)
    schema.database.table("DimProduct").insert_many([
        {"ProductKey": 900 + i, "ProductName": f"New {i}",
         "Color": "Blue", "CategoryName": "Bikes",
         "ListPrice": round(rng.uniform(1, 9), 2)} for i in range(3)])
    answer = tier.answer(tuple(range(schema.num_fact_rows)), gb,
                         "revenue")
    direct = Subspace.full(schema).partition_aggregates(gb, "revenue")
    assert answer == direct
    assert tier.stats.rebuilds == 1 and tier.stats.refreshes == 0
