"""Columnar Table behaviour."""

import pytest

from repro.relational import (
    IntegrityError,
    Table,
    UnknownColumnError,
    integer,
    text,
)


@pytest.fixture
def people():
    table = Table("People", [integer("Id", nullable=False), text("Name"),
                             text("City")], primary_key="Id")
    table.insert_many([
        {"Id": 1, "Name": "Ada", "City": "London"},
        {"Id": 2, "Name": "Grace", "City": "New York"},
        {"Id": 3, "Name": "Alan", "City": "London"},
    ])
    return table


class TestConstruction:
    def test_requires_columns(self):
        with pytest.raises(IntegrityError):
            Table("Empty", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(IntegrityError):
            Table("Dup", [integer("A"), integer("A")])

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(UnknownColumnError):
            Table("T", [integer("A")], primary_key="B")

    def test_column_names_in_order(self, people):
        assert people.column_names == ("Id", "Name", "City")


class TestInsert:
    def test_row_count(self, people):
        assert len(people) == 3
        assert people.num_rows == 3

    def test_returns_row_id(self, people):
        rid = people.insert({"Id": 4, "Name": "Edsger"})
        assert rid == 3

    def test_missing_column_becomes_null(self, people):
        rid = people.insert({"Id": 5})
        assert people.value(rid, "Name") is None

    def test_unknown_column_rejected(self, people):
        with pytest.raises(UnknownColumnError):
            people.insert({"Id": 6, "Nope": "x"})

    def test_duplicate_pk_rejected(self, people):
        with pytest.raises(IntegrityError):
            people.insert({"Id": 1, "Name": "Clone"})

    def test_duplicate_pk_rolls_back_cleanly(self, people):
        before = len(people)
        with pytest.raises(IntegrityError):
            people.insert({"Id": 1, "Name": "Clone"})
        assert len(people) == before
        # the table is still consistent: all columns equal length
        assert len(people.column_values("Name")) == before


class TestAccess:
    def test_value(self, people):
        assert people.value(0, "Name") == "Ada"

    def test_row_dict(self, people):
        assert people.row(1) == {"Id": 2, "Name": "Grace",
                                 "City": "New York"}

    def test_rows_iterates_all(self, people):
        assert len(list(people.rows())) == 3

    def test_rows_subset(self, people):
        names = [r["Name"] for r in people.rows([0, 2])]
        assert names == ["Ada", "Alan"]

    def test_distinct(self, people):
        assert people.distinct("City") == {"London", "New York"}

    def test_distinct_over_subset(self, people):
        assert people.distinct("City", [0, 2]) == {"London"}

    def test_distinct_skips_nulls(self, people):
        people.insert({"Id": 9})
        assert None not in people.distinct("City")

    def test_unknown_column(self, people):
        with pytest.raises(UnknownColumnError):
            people.column_values("Nope")


class TestLookups:
    def test_lookup_pk(self, people):
        assert people.lookup_pk(2) == 1

    def test_lookup_pk_missing(self, people):
        assert people.lookup_pk(42) is None

    def test_lookup_pk_without_key_raises(self):
        table = Table("NoPk", [integer("A")])
        with pytest.raises(IntegrityError):
            table.lookup_pk(1)

    def test_build_index(self, people):
        index = people.build_index("City")
        assert index["London"] == [0, 2]
        assert index["New York"] == [1]
