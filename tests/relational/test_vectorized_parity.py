"""Randomized parity: batch kernels vs per-row reference semantics.

The vectorized rewrite keeps scalar ``Expression.evaluate`` as the
reference semantics; these property tests pin the equivalence on
arbitrary expression trees over tables with NULLs:

* ``evaluate_batch`` must equal one ``evaluate`` call per row (whole
  table and arbitrary selection-vector subsets);
* ``select_batch`` must equal per-row evaluation compressed to the
  truthy rows (same candidate order);
* whole-query parity: ``differentiate`` + ``explore`` results must be
  identical across the memory and sqlite backends, with and without a
  Budget scope (generous budgets change nothing; an already-expired
  deadline degrades both backends to the same empty partial result).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import KdapSession
from repro.relational import Table, float_, integer, text
from repro.relational.expressions import (
    And,
    Arith,
    Between,
    Col,
    Compare,
    Const,
    In,
    IsNull,
    Not,
    Or,
)
from repro.resilience import Budget

# ----------------------------------------------------------------------
# expression-tree strategies
# ----------------------------------------------------------------------
TEXTS = ["red", "blue", "green", None]

numeric_exprs = st.recursive(
    st.one_of(
        st.sampled_from([Col("a"), Col("b")]),
        st.integers(-5, 5).map(Const),
        st.floats(-5, 5, allow_nan=False).map(Const),
    ),
    lambda inner: st.builds(
        Arith, st.sampled_from(["+", "-", "*"]), inner, inner),
    max_leaves=5,
)

atomic_predicates = st.one_of(
    st.builds(Compare, st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
              numeric_exprs, numeric_exprs),
    st.builds(In, st.sampled_from([Col("a"), Col("c")]),
              st.frozensets(st.sampled_from([0, 1, 2, "red", "blue", None]),
                            max_size=4)),
    st.builds(Between, numeric_exprs, st.integers(-4, 0),
              st.integers(1, 5), st.booleans()),
    st.builds(IsNull, st.one_of(numeric_exprs, st.just(Col("c")))),
)

predicates = st.recursive(
    atomic_predicates,
    lambda inner: st.one_of(
        st.lists(inner, min_size=1, max_size=3).map(
            lambda ps: And(tuple(ps))),
        st.lists(inner, min_size=1, max_size=3).map(
            lambda ps: Or(tuple(ps))),
        st.builds(Not, inner),
    ),
    max_leaves=6,
)

row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(-3, 3)),
    st.one_of(st.none(), st.floats(-4, 4, allow_nan=False)),
    st.sampled_from(TEXTS),
)


def make_table(rows) -> Table:
    table = Table("T", [integer("a"), float_("b"), text("c")])
    table.insert_many([{"a": a, "b": b, "c": c} for a, b, c in rows])
    return table


@given(rows=st.lists(row_strategy, min_size=0, max_size=30),
       predicate=predicates, data=st.data())
@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_batch_matches_per_row(rows, predicate, data):
    table = make_table(rows)
    reference = [bool(predicate.evaluate(table, r))
                 for r in range(len(table))]

    assert [bool(v) for v in predicate.evaluate_batch(table)] == reference
    assert predicate.select_batch(table) == \
        [r for r, keep in enumerate(reference) if keep]

    # arbitrary selection vector (ordered subset of the table's rows)
    subset = sorted(data.draw(
        st.sets(st.integers(0, max(len(table) - 1, 0)))
        if len(table) else st.just(set())))
    assert [bool(v) for v in predicate.evaluate_batch(table, subset)] == \
        [reference[r] for r in subset]
    assert predicate.select_batch(table, subset) == \
        [r for r in subset if reference[r]]


@given(rows=st.lists(row_strategy, min_size=0, max_size=20),
       expr=numeric_exprs, data=st.data())
@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_expression_batch_matches_per_row(rows, expr, data):
    table = make_table(rows)
    reference = [expr.evaluate(table, r) for r in range(len(table))]
    assert expr.evaluate_batch(table) == reference
    subset = sorted(data.draw(
        st.sets(st.integers(0, max(len(table) - 1, 0)))
        if len(table) else st.just(set())))
    assert expr.evaluate_batch(table, subset) == \
        [reference[r] for r in subset]


def test_empty_connectives_match_per_row():
    """Zero-part And/Or: vacuous truth per row must hold batch-wise."""
    table = make_table([(1, 1.0, "red"), (None, None, None)])
    for predicate in (And(()), Or(())):
        reference = [predicate.evaluate(table, r)
                     for r in range(len(table))]
        assert [bool(v) for v in predicate.evaluate_batch(table)] == \
            reference
        assert predicate.select_batch(table) == \
            [r for r, keep in enumerate(reference) if keep]


# ----------------------------------------------------------------------
# whole-query parity across backends, with and without budgets
# ----------------------------------------------------------------------
QUERIES = ["California Mountain Bikes", "Sydney Rogers", "France Clothing"]


def _summarize(result) -> tuple:
    """Backend-comparable digest of an ExploreResult (floats rounded so
    sqlite's SUM order cannot flip the last bit)."""
    return (
        tuple(sorted(result.subspace.fact_rows)),
        round(result.interface.total_aggregate, 6),
        tuple(
            (facet.dimension,
             tuple(
                 (str(fa.attribute.ref), round(fa.score, 6), fa.promoted,
                  tuple((e.label, round(e.aggregate, 6), round(e.score, 6))
                        for e in fa.entries))
                 for fa in facet.attributes
             ))
            for facet in result.interface.facets
        ),
    )


def _differentiate_digest(session, query) -> tuple:
    ranked = session.differentiate(query, limit=5)
    return tuple((str(r.star_net), round(r.score, 6)) for r in ranked)


@pytest.fixture(scope="module")
def backend_sessions(aw_online):
    sessions = {name: KdapSession(aw_online, backend=name)
                for name in ("memory", "sqlite")}
    yield sessions
    for session in sessions.values():
        session.close()


@pytest.mark.parametrize("query", QUERIES)
def test_explore_identical_across_backends(backend_sessions, query):
    digests = {}
    for name, session in backend_sessions.items():
        ranked = session.differentiate(query, limit=5)
        assert ranked, query
        result = session.explore(ranked[0].star_net)
        digests[name] = (_differentiate_digest(session, query),
                         _summarize(result))
    assert digests["memory"] == digests["sqlite"]


@pytest.mark.parametrize("query", QUERIES)
def test_generous_budget_changes_nothing(backend_sessions, query):
    """A budget far above the workload's needs must not perturb results
    on any backend (per-batch charging is observability, not behavior)."""
    for session in backend_sessions.values():
        ranked = session.differentiate(query, limit=5)
        free = _summarize(session.explore(ranked[0].star_net))
        budget = Budget(max_rows=10_000_000, max_groups=1_000_000,
                        deadline_ms=600_000)
        budgeted = session.explore(ranked[0].star_net, budget=budget)
        assert _summarize(budgeted) == free
        assert budgeted.diagnostics is not None
        assert not budgeted.diagnostics.truncations


def test_expired_deadline_degrades_identically(backend_sessions):
    """An already-expired deadline yields the same empty partial result
    on every backend (subspace truncation recorded, no exception)."""
    digests = {}
    for name, session in backend_sessions.items():
        net = session.differentiate(QUERIES[0], limit=1)[0].star_net
        session.engine.cache.clear()  # force real (deadline-checked) work
        budget = Budget(deadline_ms=-1, clock=lambda: 0.0)
        result = session.explore(net, budget=budget)
        digests[name] = (
            tuple(result.subspace.fact_rows),
            result.interface.facets,
            tuple(t.stage for t in result.diagnostics.truncations),
        )
    assert digests["memory"] == digests["sqlite"]
    assert digests["memory"][0] == ()
    assert "subspace" in digests["memory"][2]
