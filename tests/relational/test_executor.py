"""In-memory JoinQuery execution, cross-checked against sqlite."""

import pytest

from repro.relational import (
    AliasFilter,
    Arith,
    Col,
    JoinEdge,
    JoinQuery,
    SqliteBackend,
    eq,
    isin,
)
from repro.relational.errors import SchemaError
from repro.relational.executor import execute_join_query


@pytest.fixture(scope="module")
def backend(ebiz):
    with SqliteBackend(ebiz.database) as b:
        yield b


def check_against_sqlite(db, backend, query):
    ours = execute_join_query(db, query)
    theirs = backend.execute(query.to_sql())
    if query.group_by:
        ours_sorted = sorted(map(tuple, ours), key=str)
        theirs_sorted = sorted(map(tuple, theirs), key=str)
        assert len(ours_sorted) == len(theirs_sorted)
        for a, b in zip(ours_sorted, theirs_sorted):
            assert a[:-1] == b[:-1]
            assert a[-1] == pytest.approx(b[-1] or 0.0)
    else:
        assert ours[0][0] == pytest.approx(theirs[0][0] or 0.0)


def revenue_query(**overrides):
    query = JoinQuery(
        fact_table="TRANSITEM", fact_alias="f", aggregate="sum",
        measure_sql="(f.UnitPrice * f.Quantity)",
        measure_expr=Arith("*", Col("UnitPrice"), Col("Quantity")),
    )
    for key, value in overrides.items():
        setattr(query, key, value)
    return query


class TestAgainstSqlite:
    def test_plain_aggregate(self, ebiz, backend):
        check_against_sqlite(ebiz.database, backend, revenue_query())

    def test_join_and_filter(self, ebiz, backend):
        query = revenue_query()
        query.edges.append(JoinEdge("f", "ProductKey", "PRODUCT", "t1",
                                    "ProductKey"))
        query.edges.append(JoinEdge("t1", "PGroupKey", "PGROUP", "t2",
                                    "PGroupKey"))
        query.filters.append(
            AliasFilter("t2", isin("GroupName", ["LCD TVs",
                                                 "Plasma TVs"])))
        check_against_sqlite(ebiz.database, backend, query)

    def test_group_by(self, ebiz, backend):
        query = revenue_query()
        query.edges.append(JoinEdge("f", "ProductKey", "PRODUCT", "t1",
                                    "ProductKey"))
        query.edges.append(JoinEdge("t1", "PGroupKey", "PGROUP", "t2",
                                    "PGroupKey"))
        query.group_by.append(("t2", "LineName"))
        check_against_sqlite(ebiz.database, backend, query)

    def test_one_to_many_fanout(self, ebiz, backend):
        """Joining fact -> TRANS duplicates nothing, but the executor must
        also be correct when filters sit on a shared header table."""
        query = revenue_query()
        query.edges.append(JoinEdge("f", "TransKey", "TRANS", "t1",
                                    "TransKey"))
        query.edges.append(JoinEdge("t1", "StoreKey", "STORE", "t2",
                                    "StoreKey"))
        query.filters.append(AliasFilter("t2", eq("StoreKey", 1)))
        check_against_sqlite(ebiz.database, backend, query)

    def test_star_net_queries_agree(self, ebiz_session, backend):
        for query_text in ("Columbus LCD", "Home Electronics", "Seattle"):
            ranked = ebiz_session.differentiate(query_text, limit=2)
            for scored in ranked:
                join_query = scored.star_net.to_join_query(
                    ebiz_session.schema, "revenue")
                check_against_sqlite(ebiz_session.schema.database,
                                     backend, join_query)

    def test_three_way_agreement(self, ebiz_session, backend):
        """subspace evaluation == in-memory executor == sqlite."""
        ranked = ebiz_session.differentiate("Columbus LCD", limit=1)
        net = ranked[0].star_net
        schema = ebiz_session.schema
        want = net.evaluate(schema).aggregate("revenue")
        query = net.to_join_query(schema, "revenue")
        ours = execute_join_query(schema.database, query)[0][0]
        theirs = backend.execute(query.to_sql())[0][0] or 0.0
        assert ours == pytest.approx(want)
        assert theirs == pytest.approx(want)


class TestErrors:
    def test_duplicate_alias(self, ebiz):
        query = revenue_query()
        query.edges.append(JoinEdge("f", "ProductKey", "PRODUCT", "t1",
                                    "ProductKey"))
        query.edges.append(JoinEdge("f", "TransKey", "TRANS", "t1",
                                    "TransKey"))
        with pytest.raises(SchemaError):
            execute_join_query(ebiz.database, query)

    def test_unknown_join_source(self, ebiz):
        query = revenue_query()
        query.edges.append(JoinEdge("nope", "X", "PRODUCT", "t1",
                                    "ProductKey"))
        with pytest.raises(SchemaError):
            execute_join_query(ebiz.database, query)

    def test_unknown_filter_alias(self, ebiz):
        query = revenue_query()
        query.filters.append(AliasFilter("nope", eq("X", 1)))
        with pytest.raises(SchemaError):
            execute_join_query(ebiz.database, query)

    def test_count_without_measure(self, ebiz):
        query = JoinQuery(fact_table="TRANSITEM", fact_alias="f",
                          aggregate="count")
        rows = execute_join_query(ebiz.database, query)
        assert rows[0][0] == len(ebiz.database.table("TRANSITEM"))
