"""Database catalog: tables and foreign keys."""

import pytest

from repro.relational import (
    Database,
    DuplicateTableError,
    IntegrityError,
    Table,
    UnknownColumnError,
    UnknownTableError,
    integer,
    text,
)


@pytest.fixture
def db():
    database = Database("Test")
    parent = Table("Parent", [integer("Id", nullable=False), text("Name")],
                   primary_key="Id")
    parent.insert_many([{"Id": 1, "Name": "a"}, {"Id": 2, "Name": "b"}])
    child = Table("Child", [integer("Id", nullable=False),
                            integer("ParentId")], primary_key="Id")
    child.insert_many([
        {"Id": 1, "ParentId": 1},
        {"Id": 2, "ParentId": 2},
        {"Id": 3, "ParentId": None},
    ])
    database.add_table(parent)
    database.add_table(child)
    database.add_foreign_key("fk_child_parent", "Child", "ParentId",
                             "Parent", "Id")
    return database


class TestTables:
    def test_lookup(self, db):
        assert db.table("Parent").name == "Parent"

    def test_unknown(self, db):
        with pytest.raises(UnknownTableError):
            db.table("Nope")

    def test_duplicate_rejected(self, db):
        with pytest.raises(DuplicateTableError):
            db.add_table(Table("Parent", [integer("Id")]))

    def test_names_ordered(self, db):
        assert db.table_names == ["Parent", "Child"]

    def test_has_table(self, db):
        assert db.has_table("Child")
        assert not db.has_table("Nope")


class TestForeignKeys:
    def test_listing(self, db):
        assert len(db.foreign_keys) == 1
        assert db.foreign_keys[0].name == "fk_child_parent"

    def test_outgoing(self, db):
        assert len(db.foreign_keys_of("Child")) == 1
        assert db.foreign_keys_of("Parent") == []

    def test_incoming(self, db):
        assert len(db.foreign_keys_into("Parent")) == 1

    def test_unknown_child_table(self, db):
        with pytest.raises(UnknownTableError):
            db.add_foreign_key("bad", "Nope", "X", "Parent", "Id")

    def test_unknown_column(self, db):
        with pytest.raises(UnknownColumnError):
            db.add_foreign_key("bad", "Child", "Nope", "Parent", "Id")

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(IntegrityError):
            db.add_foreign_key("fk_child_parent", "Child", "ParentId",
                               "Parent", "Id")

    def test_parallel_edges_allowed(self, db):
        # same table pair, different name/column: the EBiz buyer/seller case
        db.table("Child").columns  # no-op; just exercise access
        db2 = Database("P")
        account = Table("Account", [integer("Id", nullable=False)],
                        primary_key="Id")
        trans = Table("Trans", [integer("Id", nullable=False),
                                integer("BuyerKey"), integer("SellerKey")],
                      primary_key="Id")
        db2.add_table(account)
        db2.add_table(trans)
        db2.add_foreign_key("fk_buyer", "Trans", "BuyerKey", "Account", "Id")
        db2.add_foreign_key("fk_seller", "Trans", "SellerKey", "Account",
                            "Id")
        assert len(db2.foreign_keys_of("Trans")) == 2


class TestIntegrity:
    def test_consistent(self, db):
        assert db.check_referential_integrity() == []

    def test_nulls_allowed(self, db):
        # row 3 has a NULL ParentId and is not a violation
        assert db.check_referential_integrity() == []

    def test_dangling_detected(self, db):
        db.table("Child").insert({"Id": 4, "ParentId": 99})
        violations = db.check_referential_integrity()
        assert len(violations) == 1
        assert "99" in violations[0]
