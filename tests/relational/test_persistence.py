"""Database persistence round-trips."""

import pytest

from repro.relational import Database, Table, boolean, float_, integer, text
from repro.relational.persistence import dump_database, load_database


@pytest.fixture
def db():
    database = Database("Round")
    parent = Table("Parent", [integer("Id", nullable=False), text("Name")],
                   primary_key="Id")
    parent.insert_many([{"Id": 1, "Name": "a"},
                        {"Id": 2, "Name": None}])
    child = Table("Child", [
        integer("Id", nullable=False),
        integer("ParentId"),
        float_("Score"),
        boolean("Active"),
    ], primary_key="Id")
    child.insert_many([
        {"Id": 1, "ParentId": 1, "Score": 1.5, "Active": True},
        {"Id": 2, "ParentId": 2, "Score": None, "Active": False},
    ])
    database.add_table(parent)
    database.add_table(child)
    database.add_foreign_key("fk", "Child", "ParentId", "Parent", "Id")
    return database


class TestRoundTrip:
    def test_data_preserved(self, db, tmp_path):
        path = str(tmp_path / "round.sqlite")
        dump_database(db, path)
        loaded = load_database(path)
        assert loaded.name == "Round"
        for name in db.table_names:
            original = db.table(name)
            copy = loaded.table(name)
            assert copy.column_names == original.column_names
            for column in original.column_names:
                assert copy.column_values(column) == \
                    original.column_values(column)

    def test_schema_preserved(self, db, tmp_path):
        path = str(tmp_path / "round.sqlite")
        dump_database(db, path)
        loaded = load_database(path)
        assert loaded.table("Child").primary_key == "Id"
        assert loaded.table("Child").column("Active").type.value == \
            "boolean"
        fks = loaded.foreign_keys
        assert len(fks) == 1
        assert fks[0].name == "fk"

    def test_bools_restored_as_bools(self, db, tmp_path):
        path = str(tmp_path / "round.sqlite")
        dump_database(db, path)
        loaded = load_database(path)
        assert loaded.table("Child").column_values("Active") == \
            [True, False]

    def test_integrity_after_reload(self, db, tmp_path):
        path = str(tmp_path / "round.sqlite")
        dump_database(db, path)
        assert load_database(path).check_referential_integrity() == []

    def test_missing_metadata_rejected(self, tmp_path):
        import sqlite3
        path = str(tmp_path / "bare.sqlite")
        sqlite3.connect(path).execute("CREATE TABLE t (x)").close()
        with pytest.raises((ValueError, Exception)):
            load_database(path)


class TestWarehouseRoundTrip:
    def test_ebiz_roundtrip_preserves_query_results(self, ebiz, tmp_path):
        from repro.core import KdapSession
        from repro.warehouse import StarSchema

        path = str(tmp_path / "ebiz.sqlite")
        dump_database(ebiz.database, path)
        loaded = load_database(path)
        schema = StarSchema(
            database=loaded,
            fact_table=ebiz.fact_table,
            dimensions=ebiz.dimensions,
            measures=list(ebiz.measures.values()),
            searchable=ebiz.searchable,
            fact_complex=tuple(ebiz.fact_complex - {ebiz.fact_table}),
        )
        original = KdapSession(ebiz).search("Columbus LCD")
        reloaded = KdapSession(schema).search("Columbus LCD")
        assert reloaded.total_aggregate == pytest.approx(
            original.total_aggregate)
