"""Column types and value coercion."""

import datetime

import pytest

from repro.relational import Column, ColumnType, TypeMismatchError, coerce_value
from repro.relational.types import boolean, date, float_, integer, text


class TestColumnConstructors:
    def test_integer(self):
        col = integer("Key")
        assert col.type is ColumnType.INTEGER
        assert col.nullable

    def test_not_nullable(self):
        assert not integer("Key", nullable=False).nullable

    def test_float(self):
        assert float_("Price").type is ColumnType.FLOAT

    def test_text(self):
        assert text("Name").type is ColumnType.TEXT

    def test_date(self):
        assert date("Day").type is ColumnType.DATE

    def test_boolean(self):
        assert boolean("Flag").type is ColumnType.BOOLEAN

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Column("bad name", ColumnType.TEXT)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Column("", ColumnType.TEXT)

    def test_underscore_names_allowed(self):
        assert Column("snake_case_name", ColumnType.TEXT)


class TestNumericKinds:
    def test_integer_is_numeric(self):
        assert ColumnType.INTEGER.is_numeric

    def test_float_is_numeric(self):
        assert ColumnType.FLOAT.is_numeric

    def test_text_is_not_numeric(self):
        assert not ColumnType.TEXT.is_numeric

    def test_date_is_not_numeric(self):
        assert not ColumnType.DATE.is_numeric


class TestCoercion:
    def test_int_passes(self):
        assert coerce_value(5, integer("K")) == 5

    def test_integral_float_coerces_to_int(self):
        assert coerce_value(5.0, integer("K")) == 5

    def test_fractional_float_rejected_as_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(5.5, integer("K"))

    def test_bool_rejected_as_int(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(True, integer("K"))

    def test_int_coerces_to_float(self):
        value = coerce_value(3, float_("P"))
        assert value == 3.0
        assert isinstance(value, float)

    def test_bool_rejected_as_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(False, float_("P"))

    def test_str_passes_as_text(self):
        assert coerce_value("hi", text("N")) == "hi"

    def test_int_rejected_as_text(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(7, text("N"))

    def test_date_object_stored_as_iso(self):
        assert coerce_value(datetime.date(2001, 2, 3), date("D")) == "2001-02-03"

    def test_iso_string_passes_as_date(self):
        assert coerce_value("2001-02-03", date("D")) == "2001-02-03"

    def test_malformed_date_rejected(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("not-a-date", date("D"))

    def test_bool_passes_as_boolean(self):
        assert coerce_value(True, boolean("F")) is True

    def test_int_rejected_as_boolean(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(1, boolean("F"))

    def test_null_allowed_when_nullable(self):
        assert coerce_value(None, integer("K")) is None

    def test_null_rejected_when_not_nullable(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(None, integer("K", nullable=False))
