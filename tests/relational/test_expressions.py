"""Expression tree evaluation and validation."""

import pytest

from repro.relational import (
    And,
    Arith,
    Between,
    Col,
    Compare,
    Const,
    ExpressionError,
    IsNull,
    Not,
    Or,
    Table,
    TRUE,
    eq,
    float_,
    integer,
    isin,
    text,
)


@pytest.fixture
def table():
    t = Table("T", [integer("A"), float_("B"), text("C")])
    t.insert_many([
        {"A": 1, "B": 2.5, "C": "x"},
        {"A": 2, "B": 10.0, "C": "y"},
        {"A": None, "B": None, "C": None},
    ])
    return t


class TestScalars:
    def test_col(self, table):
        assert Col("A").evaluate(table, 0) == 1

    def test_const(self, table):
        assert Const(42).evaluate(table, 0) == 42

    def test_arith_multiply(self, table):
        expr = Arith("*", Col("A"), Col("B"))
        assert expr.evaluate(table, 1) == 20.0

    def test_arith_null_propagates(self, table):
        expr = Arith("+", Col("A"), Const(1))
        assert expr.evaluate(table, 2) is None

    def test_arith_unknown_op(self):
        with pytest.raises(ExpressionError):
            Arith("%", Col("A"), Col("B"))

    def test_columns(self):
        expr = Arith("*", Col("A"), Arith("+", Col("B"), Const(1)))
        assert expr.columns() == {"A", "B"}


class TestComparisons:
    def test_eq_true(self, table):
        assert eq("A", 1).evaluate(table, 0)

    def test_eq_false(self, table):
        assert not eq("A", 1).evaluate(table, 1)

    def test_null_comparison_is_false(self, table):
        assert not eq("A", 1).evaluate(table, 2)
        assert not Compare("!=", Col("A"), Const(1)).evaluate(table, 2)

    def test_ordering_ops(self, table):
        assert Compare("<", Col("A"), Const(2)).evaluate(table, 0)
        assert Compare(">=", Col("B"), Const(10.0)).evaluate(table, 1)

    def test_unknown_op(self):
        with pytest.raises(ExpressionError):
            Compare("~", Col("A"), Const(1))


class TestInAndBetween:
    def test_in(self, table):
        pred = isin("C", ["x", "z"])
        assert pred.evaluate(table, 0)
        assert not pred.evaluate(table, 1)

    def test_in_null_is_false(self, table):
        assert not isin("C", ["x"]).evaluate(table, 2)

    def test_between_half_open(self, table):
        pred = Between(Col("B"), 2.5, 10.0)
        assert pred.evaluate(table, 0)
        assert not pred.evaluate(table, 1)  # 10.0 excluded

    def test_between_closed(self, table):
        pred = Between(Col("B"), 2.5, 10.0, inclusive_high=True)
        assert pred.evaluate(table, 1)

    def test_between_null_is_false(self, table):
        assert not Between(Col("B"), 0, 100).evaluate(table, 2)


class TestBooleanCombinators:
    def test_and(self, table):
        pred = And.of(eq("A", 1), eq("C", "x"))
        assert pred.evaluate(table, 0)
        assert not pred.evaluate(table, 1)

    def test_or(self, table):
        pred = Or.of(eq("A", 2), eq("C", "x"))
        assert pred.evaluate(table, 0)
        assert pred.evaluate(table, 1)
        assert not pred.evaluate(table, 2)

    def test_not(self, table):
        assert Not(eq("A", 2)).evaluate(table, 0)

    def test_is_null(self, table):
        assert IsNull(Col("A")).evaluate(table, 2)
        assert not IsNull(Col("A")).evaluate(table, 0)

    def test_and_flattens(self):
        inner = And.of(eq("A", 1), eq("A", 2))
        outer = And.of(inner, eq("A", 3))
        assert len(outer.parts) == 3

    def test_single_part_collapses(self):
        assert And.of(eq("A", 1)) == eq("A", 1)
        assert Or.of(eq("A", 1)) == eq("A", 1)

    def test_true_constant(self, table):
        assert TRUE.evaluate(table, 0)


class TestValidation:
    def test_unknown_column_rejected(self, table):
        with pytest.raises(ExpressionError):
            eq("Nope", 1).validate(table)

    def test_known_columns_pass(self, table):
        And.of(eq("A", 1), isin("C", ["x"])).validate(table)


class TestRendering:
    def test_compare_str(self):
        assert str(eq("A", 1)) == "A = 1"

    def test_string_const_quoted(self):
        assert str(eq("C", "it's")) == "C = 'it''s'"

    def test_in_renders_sorted(self):
        text_form = str(isin("C", ["b", "a"]))
        assert text_form == "C IN ('a', 'b')"

    def test_and_or_nesting(self):
        pred = Or.of(And.of(eq("A", 1), eq("B", 2)), eq("C", "x"))
        assert "AND" in str(pred) and "OR" in str(pred)
