"""Encoded column chunks: roundtrip, encoding choice, kernel parity.

Randomized (hypothesis) checks that the chunk layer is a pure storage
change: every encoded kernel — membership and range selection, grouping,
fused aggregate states — must return exactly what a scalar reference
loop over the plain values returns, for full scans and for arbitrary
ascending sub-selections, and zone maps may only ever *skip* chunks that
provably contain no match.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.relational import vector
from repro.relational.chunks import (
    DictChunk,
    PlainChunk,
    RLEChunk,
    encode_column,
)
from repro.relational.operators import (
    chunked_group_states,
    finalize_group_states,
    merge_group_states,
)

SIZE = 16
"""Tiny chunks so a couple hundred values exercise many boundaries."""

mixed_values = st.lists(
    st.one_of(st.none(), st.integers(-5, 5),
              st.sampled_from(["red", "green", "blue"])),
    max_size=120)
numeric_values = st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                          max_size=120)
measures = st.one_of(st.none(), st.integers(-20, 20),
                     st.floats(-100.0, 100.0, allow_nan=False))


def subset_of(data, n: int) -> list[int]:
    """An ascending selection over ``range(n)`` drawn from ``data``."""
    if n == 0:
        return []
    return sorted(data.draw(
        st.sets(st.integers(0, n - 1), max_size=n), label="subset"))


# ----------------------------------------------------------------------
# encode / decode
# ----------------------------------------------------------------------
class TestEncoding:
    @given(values=mixed_values)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_and_uniform_boundaries(self, values):
        chunks = encode_column(values, SIZE)
        decoded = []
        for index, chunk in enumerate(chunks):
            assert chunk.start == index * SIZE
            assert chunk.stop == min((index + 1) * SIZE, len(values))
            decoded.extend(chunk.values())
        assert decoded == values

    def test_empty_column(self):
        assert encode_column([], SIZE) == []

    def test_sorted_repetitive_column_is_rle(self):
        values = sorted([v // 40 for v in range(400)])
        chunks = encode_column(values, 100)
        assert all(isinstance(c, RLEChunk) for c in chunks)

    def test_low_cardinality_unsorted_column_is_dict(self):
        values = [("x", "y", "z")[i * 7 % 3] for i in range(300)]
        chunks = encode_column(values, 100)
        assert all(isinstance(c, DictChunk) for c in chunks)

    def test_high_cardinality_column_stays_plain(self):
        values = [(i * 131) % 997 for i in range(300)]
        chunks = encode_column(values, 100)
        assert all(isinstance(c, PlainChunk) for c in chunks)

    @given(values=mixed_values)
    @settings(max_examples=60, deadline=None)
    def test_zone_maps_count_nulls(self, values):
        for chunk in encode_column(values, SIZE):
            segment = values[chunk.start:chunk.stop]
            assert chunk.zone.null_count == segment.count(None)


# ----------------------------------------------------------------------
# selection kernels
# ----------------------------------------------------------------------
class TestSelectionParity:
    @given(values=mixed_values, data=st.data(),
           keep_null=st.booleans(), use_subset=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_select_in_matches_scalar_reference(self, values, data,
                                                keep_null, use_subset):
        wanted = set(data.draw(
            st.lists(st.one_of(st.none(), st.integers(-5, 5),
                               st.sampled_from(["red", "green", "gold"])),
                     max_size=4), label="wanted"))
        rows = (subset_of(data, len(values)) if use_subset
                else list(range(len(values))))
        chunks = encode_column(values, SIZE)
        out, scanned, skipped = vector.select_in_chunks(
            chunks, wanted, rows if use_subset else None, keep_null)
        # keep_null=True is plain set membership (None in wanted selects
        # NULL rows); keep_null=False is SQL semantics (None never
        # matches) — same convention as vector.select_in
        if keep_null:
            expected = [r for r in rows if values[r] in wanted]
        else:
            expected = [r for r in rows
                        if values[r] is not None and values[r] in wanted]
        assert out == expected
        assert out == vector.select_in(values, wanted, rows, keep_null)
        assert scanned + skipped <= len(chunks)

    @given(values=numeric_values, data=st.data(),
           low=st.integers(-60, 60), span=st.integers(0, 40),
           inclusive=st.booleans(), use_subset=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_select_range_matches_scalar_reference(
            self, values, data, low, span, inclusive, use_subset):
        high = low + span
        rows = (subset_of(data, len(values)) if use_subset
                else list(range(len(values))))
        chunks = encode_column(values, SIZE)
        out, scanned, skipped = vector.select_range_chunks(
            chunks, low, high, rows if use_subset else None, inclusive)

        def match(v):
            if v is None:
                return False
            return low <= v <= high if inclusive else low <= v < high

        assert out == [r for r in rows if match(values[r])]
        assert scanned + skipped <= len(chunks)

    def test_zone_maps_skip_clustered_range(self):
        values = sorted(v // 10 for v in range(400))
        chunks = encode_column(values, SIZE)
        out, scanned, skipped = vector.select_range_chunks(
            chunks, 3, 5)
        assert out == [r for r in range(400) if 3 <= values[r] < 5]
        assert skipped > 0
        assert out    # the window is non-empty, so skipping lost nothing


# ----------------------------------------------------------------------
# grouping and aggregate states
# ----------------------------------------------------------------------
class TestGroupingParity:
    @given(values=mixed_values, data=st.data(), use_subset=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_group_rows_chunks_matches_plain(self, values, data,
                                             use_subset):
        rows = (subset_of(data, len(values)) if use_subset
                else list(range(len(values))))
        chunks = encode_column(values, SIZE)
        groups, scanned = vector.group_rows_chunks(
            chunks, rows if use_subset else None)
        assert groups == vector.group_rows(values, rows)
        for group_rows in groups.values():
            assert group_rows == sorted(group_rows)

    @given(keys=mixed_values, data=st.data(),
           aggregate=st.sampled_from(["sum", "count", "avg", "min",
                                      "max"]),
           use_subset=st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_states_match_scalar_reference(self, keys, data, aggregate,
                                           use_subset):
        measure = data.draw(
            st.lists(measures, min_size=len(keys), max_size=len(keys)),
            label="measure")
        rows = (subset_of(data, len(keys)) if use_subset
                else list(range(len(keys))))
        chunks = encode_column(keys, SIZE)
        states = chunked_group_states(
            [chunks], measure, aggregate,
            rows if use_subset else None)
        result = finalize_group_states(aggregate, states[0])
        assert result == pytest.approx(self.reference(
            keys, measure, rows, aggregate))

    @given(keys=mixed_values, data=st.data(),
           aggregate=st.sampled_from(["sum", "count", "avg", "min",
                                      "max"]))
    @settings(max_examples=60, deadline=None)
    def test_split_accumulate_then_merge_matches_serial(self, keys, data,
                                                        aggregate):
        measure = data.draw(
            st.lists(measures, min_size=len(keys), max_size=len(keys)),
            label="measure")
        chunks = encode_column(keys, SIZE)
        cut = data.draw(st.integers(0, len(keys)), label="cut")
        first, second = list(range(cut)), list(range(cut, len(keys)))
        partials = [
            chunked_group_states([chunks], measure, aggregate, part)[0]
            for part in (first, second) if part
        ]
        merged: dict = {}
        for partial in partials:
            merge_group_states(aggregate, merged, partial)
        result = finalize_group_states(aggregate, merged)
        assert result == pytest.approx(self.reference(
            keys, measure, list(range(len(keys))), aggregate))

    @staticmethod
    def reference(keys, measure, rows, aggregate):
        groups: dict = {}
        for r in rows:
            if keys[r] is not None:
                groups.setdefault(keys[r], []).append(measure[r])
        folds = {
            "sum": lambda ms: sum(ms),
            "count": lambda ms: len(ms),
            "avg": lambda ms: sum(ms) / len(ms) if ms else None,
            "min": lambda ms: min(ms) if ms else None,
            "max": lambda ms: max(ms) if ms else None,
        }
        fold = folds[aggregate]
        return {value: fold([m for m in ms if m is not None])
                for value, ms in groups.items()}
