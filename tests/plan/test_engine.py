"""QueryEngine: caching, subspace binding, and consumer routing."""

import pytest

from repro.plan import QueryEngine
from repro.warehouse import Subspace, dice, pivot, slice_


@pytest.fixture
def engine(ebiz):
    return QueryEngine(ebiz)


@pytest.fixture
def sqlite_engine(ebiz):
    engine = QueryEngine(ebiz, backend="sqlite")
    yield engine
    engine.close()


@pytest.fixture
def lcd(ebiz):
    gb = ebiz.groupby_attribute("PGROUP", "GroupName")
    vector = ebiz.groupby_vector(gb)
    rows = [r for r, v in enumerate(vector) if v == "LCD TVs"]
    return Subspace.of(ebiz, rows, label="LCD TVs")


class TestCaching:
    def test_repeated_aggregate_hits(self, engine, lcd):
        bound = engine.bind(lcd)
        first = bound.aggregate("revenue")
        assert engine.cache_stats.hits == 0
        second = bound.aggregate("revenue")
        assert engine.cache_stats.hits == 1
        assert first == second

    def test_identical_plans_share_entries_across_consumers(
            self, ebiz, engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        bound = engine.bind(lcd)
        bound.partition_aggregates(gb, "revenue")
        misses = engine.cache_stats.misses
        # an equal subspace built independently produces the same plan
        twin = engine.bind(Subspace.of(ebiz, lcd.fact_rows))
        twin.partition_aggregates(gb, "revenue")
        assert engine.cache_stats.misses == misses
        assert engine.cache_stats.hits >= 1

    def test_returned_dict_is_a_copy(self, ebiz, engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        bound = engine.bind(lcd)
        first = bound.partition_aggregates(gb, "revenue")
        key = next(iter(first))
        first[key] = -1.0
        assert bound.partition_aggregates(gb, "revenue")[key] != -1.0


class TestParityWithLocalLoops:
    """Engine-bound results must equal the unbound Subspace loops."""

    def test_aggregate(self, engine, sqlite_engine, lcd):
        want = lcd.aggregate("revenue")
        assert engine.bind(lcd).aggregate("revenue") \
            == pytest.approx(want)
        assert sqlite_engine.bind(lcd).aggregate("revenue") \
            == pytest.approx(want)

    def test_partition_aggregates(self, ebiz, engine, sqlite_engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        want = lcd.partition_aggregates(gb, "revenue")
        for eng in (engine, sqlite_engine):
            got = eng.bind(lcd).partition_aggregates(gb, "revenue")
            assert set(got) == set(want)
            for key, value in want.items():
                assert got[key] == pytest.approx(value)

    def test_partition_with_domain(self, ebiz, engine, sqlite_engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        domain = lcd.domain(gb)[:2] + ["NoSuchCity"]
        want = lcd.partition_aggregates(gb, "revenue", domain=domain)
        for eng in (engine, sqlite_engine):
            got = eng.bind(lcd).partition_aggregates(gb, "revenue",
                                                     domain=domain)
            assert got == pytest.approx(want)

    def test_empty_subspace(self, ebiz, engine, sqlite_engine):
        empty = Subspace.of(ebiz, ())
        gb = ebiz.groupby_attribute("LOCATION", "City")
        for eng in (engine, sqlite_engine):
            bound = eng.bind(empty)
            assert bound.aggregate("revenue") == 0
            assert bound.partition_aggregates(gb, "revenue") == {}
            assert bound.partition_aggregates(
                gb, "revenue", domain=["Seattle"]) == {"Seattle": 0}

    def test_slice_routes_through_engine(self, ebiz, engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        city = lcd.domain(gb)[0]
        want = slice_(lcd, gb, city)
        got = slice_(engine.bind(lcd), gb, city)
        assert got.fact_rows == want.fact_rows
        assert got.engine is engine

    def test_dice_routes_through_engine(self, ebiz, engine, lcd):
        gb = ebiz.groupby_attribute("LOCATION", "City")
        cities = lcd.domain(gb)[:2]
        want = dice(lcd, {gb: cities})
        got = dice(engine.bind(lcd), {gb: cities})
        assert got.fact_rows == want.fact_rows

    def test_pivot_routes_through_engine(self, ebiz, engine,
                                         sqlite_engine, lcd):
        rows_gb = ebiz.groupby_attribute("LOCATION", "City")
        cols_gb = ebiz.groupby_attribute("TIMEMONTH", "Quarter")
        want = pivot(lcd, rows_gb, cols_gb, "revenue")
        for eng in (engine, sqlite_engine):
            got = pivot(eng.bind(lcd), rows_gb, cols_gb, "revenue")
            assert got.row_values == want.row_values
            assert got.column_values == want.column_values
            for key, value in want.cells.items():
                assert got.cells[key] == pytest.approx(value)


class TestStarNetEvaluation:
    def test_evaluate_matches_legacy(self, ebiz, engine, sqlite_engine,
                                     ebiz_session):
        ranked = ebiz_session.differentiate("Columbus LCD")
        net = ranked[0].star_net
        want = net.evaluate(ebiz)
        for eng in (engine, sqlite_engine):
            got = eng.evaluate(net)
            assert got.fact_rows == want.fact_rows
            assert got.engine is eng
