"""Plan-node fingerprints: canonical, hashable, collision-averse."""

import pytest

from repro.plan import (
    AttrKey,
    Filter,
    GroupAggregate,
    Partition,
    RowSet,
    Scan,
    SemiJoin,
    row_source,
)
from repro.relational.expressions import Col, Compare, Const
from repro.warehouse import EMPTY_PATH, path_from_fk_names


@pytest.fixture(scope="module")
def paths(ebiz):
    product = path_from_fk_names(
        ebiz.database, "TRANSITEM",
        ["fk_item_product", "fk_product_group"])
    store = path_from_fk_names(
        ebiz.database, "TRANSITEM",
        ["fk_item_trans", "fk_trans_store", "fk_store_loc"])
    return product, store


def semijoin(path, values=("LCD TVs",), dimension="Product"):
    return SemiJoin(Scan("TRANSITEM"), "PGROUP", "GroupName",
                    tuple(values), path.reversed(), dimension)


class TestFingerprints:
    def test_hashable_and_stable(self, paths):
        product, _ = paths
        plan = semijoin(product)
        assert plan.fingerprint() == plan.fingerprint()
        hash(plan.fingerprint())

    def test_value_order_is_canonical(self, paths):
        product, _ = paths
        a = semijoin(product, ("LCD TVs", "VCR"))
        b = semijoin(product, ("VCR", "LCD TVs"))
        assert a.fingerprint() == b.fingerprint()

    def test_different_values_differ(self, paths):
        product, _ = paths
        assert (semijoin(product, ("VCR",)).fingerprint()
                != semijoin(product, ("LCD TVs",)).fingerprint())

    def test_different_paths_differ(self, paths):
        product, store = paths
        a = SemiJoin(Scan("TRANSITEM"), "LOCATION", "City", ("Seattle",),
                     store.reversed(), "Store")
        b = SemiJoin(Scan("TRANSITEM"), "LOCATION", "City", ("Seattle",),
                     product.reversed(), "Store")
        assert a.fingerprint() != b.fingerprint()

    def test_node_kinds_do_not_collide(self, paths):
        product, _ = paths
        scan = Scan("TRANSITEM")
        nodes = [
            scan,
            RowSet("TRANSITEM", (1, 2, 3)),
            semijoin(product),
            Filter(scan, predicate=Compare(">", Col("Quantity"),
                                           Const(2))),
            GroupAggregate(scan, "sum", "(UnitPrice * Quantity)"),
        ]
        fingerprints = [n.fingerprint() for n in nodes]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_rowset_content_key(self):
        a = RowSet("TRANSITEM", (1, 2, 3))
        b = RowSet("TRANSITEM", (1, 2, 3))
        c = RowSet("TRANSITEM", (1, 2, 4))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_domain_distinguishes_aggregates(self):
        base = Partition(RowSet("TRANSITEM", (1, 2)),
                         (AttrKey("PGROUP", "GroupName", EMPTY_PATH),))
        a = GroupAggregate(base, "sum", "1")
        b = GroupAggregate(base, "sum", "1", domain=("VCR",))
        assert a.fingerprint() != b.fingerprint()


class TestValidation:
    def test_filter_requires_exactly_one_flavour(self):
        scan = Scan("TRANSITEM")
        with pytest.raises(ValueError):
            Filter(scan)
        with pytest.raises(ValueError):
            Filter(scan,
                   predicate=Compare(">", Col("Quantity"), Const(2)),
                   attr=AttrKey("TRANSITEM", "Quantity", EMPTY_PATH),
                   values=(1,))

    def test_partition_requires_keys(self):
        with pytest.raises(ValueError):
            Partition(Scan("TRANSITEM"), ())

    def test_row_source_unwraps(self):
        scan = Scan("TRANSITEM")
        part = Partition(scan, (AttrKey("TRANSITEM", "Quantity",
                                        EMPTY_PATH),))
        agg = GroupAggregate(part, "sum", "1")
        assert row_source(agg) is scan
        assert row_source(scan) is scan
