"""Fused multi-aggregate execution: parity, fingerprints, budgets, fills.

The contract under test: ``multi_partition_aggregates`` over N group-bys
is *semantically identical* to N independent
``subspace_partition_aggregates`` calls — on the in-memory backend, the
sqlite backend, a ResilientBackend-wrapped backend, and the unbound
local Subspace path — while executing as one fused plan.  The awkward
aggregate semantics (empty-domain fills, all-NULL groups) must not
diverge between the single and fused paths for any aggregate.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.plan import (
    InMemoryBackend,
    MultiGroupAggregate,
    QueryEngine,
    RowSet,
    attr_key,
    multi_partition_plan,
    subspace_partition_plan,
)
from repro.relational import (
    Database,
    Table,
    float_,
    integer,
    text,
)
from repro.relational.errors import BudgetExceeded, TransientBackendError
from repro.relational.expressions import Col
from repro.resilience import (
    Budget,
    FaultInjectingBackend,
    ResilientBackend,
    budget_scope,
)
from repro.warehouse import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Measure,
    StarSchema,
    Subspace,
    path_from_fk_names,
)

from ..integration.test_engine_agreement import CITIES, GROUPS, build_net

AGG_MEASURES = {
    "sum": "m_sum",
    "count": "m_count",
    "avg": "m_avg",
    "min": "m_min",
    "max": "m_max",
}

EMPTY_FILL = {"sum": 0, "count": 0, "avg": None, "min": None, "max": None}


@pytest.fixture(scope="module")
def agg_schema():
    """A schema carrying one measure per aggregate, with NULL measures and
    NULL group keys in awkward places."""
    db = Database("Agg")
    dim = Table("Dim", [
        integer("DimKey", nullable=False),
        text("Name"),
        text("Size"),
    ], primary_key="DimKey")
    dim.insert_many([
        {"DimKey": 1, "Name": "a", "Size": "small"},
        {"DimKey": 2, "Name": "b", "Size": "large"},
        {"DimKey": 3, "Name": "c", "Size": None},
    ])
    db.add_table(dim)
    fact = Table("Fact", [
        integer("FactKey", nullable=False),
        integer("DimKey"),
        float_("Amount"),
    ], primary_key="FactKey")
    fact.insert_many([
        {"FactKey": 10, "DimKey": 1, "Amount": 1.5},
        {"FactKey": 11, "DimKey": 1, "Amount": 4.0},
        {"FactKey": 12, "DimKey": 2, "Amount": None},  # all-NULL group "b"
        {"FactKey": 13, "DimKey": 3, "Amount": -2.0},
        {"FactKey": 14, "DimKey": None, "Amount": 8.0},  # dangling FK
    ])
    db.add_table(fact)
    db.add_foreign_key("fk_dim", "Fact", "DimKey", "Dim", "DimKey")
    path = path_from_fk_names(db, "Fact", ["fk_dim"])
    return StarSchema(
        database=db, fact_table="Fact",
        dimensions=[Dimension(
            name="D", tables=("Dim",),
            groupbys=(
                GroupByAttribute(AttributeRef("Dim", "Name"),
                                 AttributeKind.CATEGORICAL, path),
                GroupByAttribute(AttributeRef("Dim", "Size"),
                                 AttributeKind.CATEGORICAL, path),
            ),
        )],
        measures=[Measure(name, Col("Amount"), agg)
                  for agg, name in AGG_MEASURES.items()],
        searchable={"Dim": ["Name"]},
    )


@pytest.fixture(scope="module")
def agg_engines(agg_schema):
    memory = QueryEngine(agg_schema, backend="memory")
    sqlite = QueryEngine(agg_schema, backend="sqlite")
    yield {"memory": memory, "sqlite": sqlite}
    sqlite.close()


def _gbs(schema):
    return [schema.groupby_attribute("Dim", "Name"),
            schema.groupby_attribute("Dim", "Size")]


# ----------------------------------------------------------------------
# empty-domain fills: single and fused paths agree for every aggregate
# ----------------------------------------------------------------------
class TestEmptyDomainFills:
    @pytest.mark.parametrize("aggregate", sorted(AGG_MEASURES))
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_absent_domain_value_fill(self, agg_engines, agg_schema,
                                      aggregate, backend):
        """A domain category with zero rows fills 0 for sum/count and
        None for avg/min/max — identically in single and fused paths."""
        engine = agg_engines[backend]
        measure = AGG_MEASURES[aggregate]
        gbs = _gbs(agg_schema)
        sub = Subspace.full(agg_schema, engine=engine)
        domains = [("a", "b", "__absent__"), ("small", "__absent__")]
        fused = engine.multi_partition_aggregates(sub, gbs, measure,
                                                  domains=domains)
        singles = [
            engine.subspace_partition_aggregates(sub, gb, measure,
                                                 domain=domain)
            for gb, domain in zip(gbs, domains)
        ]
        assert fused == singles
        fill = EMPTY_FILL[aggregate]
        for groups in fused:
            assert groups["__absent__"] == fill

    @pytest.mark.parametrize("aggregate", sorted(AGG_MEASURES))
    def test_local_path_same_fill(self, agg_schema, aggregate):
        """The unbound Subspace fused kernel uses the same fills."""
        measure = AGG_MEASURES[aggregate]
        gbs = _gbs(agg_schema)
        sub = Subspace.full(agg_schema)
        domains = [("a", "__absent__"), ("large", "__absent__")]
        fused = sub.multi_partition_aggregates(gbs, measure,
                                               domains=domains)
        singles = [sub.partition_aggregates(gb, measure, domain=domain)
                   for gb, domain in zip(gbs, domains)]
        assert fused == singles
        fill = EMPTY_FILL[aggregate]
        assert fused[0]["__absent__"] == fill
        assert fused[1]["__absent__"] == fill

    @pytest.mark.parametrize("aggregate", sorted(AGG_MEASURES))
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_all_null_measure_group(self, agg_engines, agg_schema,
                                    aggregate, backend):
        """Group "b" exists but every measure value is NULL: sum/count
        give 0, avg/min/max give None — fused same as single."""
        engine = agg_engines[backend]
        measure = AGG_MEASURES[aggregate]
        gbs = _gbs(agg_schema)
        sub = Subspace.full(agg_schema, engine=engine)
        fused = engine.multi_partition_aggregates(sub, gbs, measure)
        single = engine.subspace_partition_aggregates(sub, gbs[0], measure)
        assert fused[0] == single
        assert fused[0]["b"] == EMPTY_FILL[aggregate]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_empty_subspace(self, agg_engines, agg_schema, backend):
        engine = agg_engines[backend]
        gbs = _gbs(agg_schema)
        empty = Subspace.of(agg_schema, (), engine=engine)
        got = engine.multi_partition_aggregates(
            empty, gbs, "m_avg", domains=[("a",), None])
        assert got == [{"a": None}, {}]


# ----------------------------------------------------------------------
# fingerprint stability
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_order_insensitive(self, agg_schema):
        gbs = _gbs(agg_schema)
        measure = agg_schema.measures["m_sum"]
        rows = (0, 1, 2)
        forward = multi_partition_plan(agg_schema, rows, gbs, measure)
        backward = multi_partition_plan(agg_schema, rows, gbs[::-1],
                                        measure)
        assert forward.fingerprint() == backward.fingerprint()

    def test_order_insensitive_with_domains(self, agg_schema):
        gbs = _gbs(agg_schema)
        measure = agg_schema.measures["m_sum"]
        rows = (0, 1, 2)
        domains = [("a", "b"), ("small",)]
        forward = multi_partition_plan(agg_schema, rows, gbs, measure,
                                       domains=domains)
        backward = multi_partition_plan(agg_schema, rows, gbs[::-1],
                                        measure, domains=domains[::-1])
        assert forward.fingerprint() == backward.fingerprint()
        # a domain restriction is part of the identity
        unrestricted = multi_partition_plan(agg_schema, rows, gbs, measure)
        assert forward.fingerprint() != unrestricted.fingerprint()

    def test_never_collides_with_single_group_aggregate(self, agg_schema):
        """A fused plan over one subspace must never share a cache slot
        with any single-key plan — even for the same key set."""
        gbs = _gbs(agg_schema)
        measure = agg_schema.measures["m_sum"]
        rows = (0, 1, 2)
        multi = multi_partition_plan(agg_schema, rows, gbs, measure)
        singles = [subspace_partition_plan(agg_schema, rows, gb, measure)
                   for gb in gbs]
        single_prints = {plan.fingerprint() for plan in singles}
        assert multi.fingerprint() not in single_prints
        # ... and a one-key fused plan differs from the one-key single
        lone = multi_partition_plan(agg_schema, rows, gbs[:1], measure)
        assert lone.fingerprint() not in single_prints

    def test_distinct_measures_distinct_fingerprints(self, agg_schema):
        gbs = _gbs(agg_schema)
        rows = (0, 1, 2)
        prints = {
            multi_partition_plan(agg_schema, rows, gbs,
                                 agg_schema.measures[m]).fingerprint()
            for m in AGG_MEASURES.values()
        }
        assert len(prints) == len(AGG_MEASURES)

    def test_fused_plan_is_cached_by_fingerprint(self, agg_schema):
        engine = QueryEngine(agg_schema, backend="memory")
        gbs = _gbs(agg_schema)
        sub = Subspace.full(agg_schema, engine=engine)
        first = engine.multi_partition_aggregates(sub, gbs, "m_sum")
        misses = engine.cache_stats.misses
        # reversed order canonicalises to the same fingerprint: pure hit
        second = engine.multi_partition_aggregates(sub, gbs[::-1], "m_sum")
        assert engine.cache_stats.misses == misses
        assert second == first[::-1]


# ----------------------------------------------------------------------
# randomized parity across backends and wrappers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def ebiz_engines(ebiz):
    memory = QueryEngine(ebiz, backend="memory")
    sqlite = QueryEngine(ebiz, backend="sqlite")
    resilient = QueryEngine(
        ebiz, backend=ResilientBackend(InMemoryBackend(ebiz)))
    yield [memory, sqlite, resilient]
    sqlite.close()


EBIZ_GBS = [
    ("PGROUP", "GroupName"),
    ("LOCATION", "City"),
    ("TIMEMONTH", "Quarter"),
    ("STORE", "StoreName"),
]


@given(
    groups=st.lists(st.sampled_from(GROUPS), min_size=0, max_size=2,
                    unique=True),
    cities=st.lists(st.sampled_from(CITIES), min_size=0, max_size=2,
                    unique=True),
    gb_choices=st.lists(st.sampled_from(EBIZ_GBS), min_size=1, max_size=4,
                        unique=True),
    restrict=st.booleans(),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_fused_equals_singles_everywhere(ebiz, ebiz_engines, groups,
                                         cities, gb_choices, restrict):
    """Fused == N singles on memory, sqlite, and resilient engines, and
    all three agree with the unbound local fused kernel."""
    net = build_net(ebiz, groups, cities)
    gbs = [ebiz.groupby_attribute(*choice) for choice in gb_choices]
    local = net.evaluate(ebiz)
    domains = None
    if restrict:
        domains = [tuple(local.domain(gb)[:3]) + ("__nope__",)
                   for gb in gbs]
    want = local.multi_partition_aggregates(gbs, "revenue",
                                            domains=domains)
    singles = [
        local.partition_aggregates(
            gb, "revenue", domain=None if domains is None else domains[i])
        for i, gb in enumerate(gbs)
    ]
    assert want == singles
    for engine in ebiz_engines:
        sub = engine.evaluate(net)
        got = engine.multi_partition_aggregates(sub, gbs, "revenue",
                                                domains=domains)
        assert len(got) == len(want)
        for got_groups, want_groups in zip(got, want):
            assert set(got_groups) == set(want_groups)
            for key, value in want_groups.items():
                assert got_groups[key] == pytest.approx(value), key


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------
class TestBudgets:
    def test_group_budget_charged_by_fused_path(self, ebiz):
        engine = QueryEngine(ebiz, backend="memory")
        gbs = [ebiz.groupby_attribute(*choice) for choice in EBIZ_GBS]
        sub = Subspace.full(ebiz, engine=engine)
        budget = Budget(max_groups=1)
        with budget_scope(budget):
            with pytest.raises(BudgetExceeded) as excinfo:
                engine.multi_partition_aggregates(sub, gbs, "revenue")
        assert excinfo.value.reason == "groups"
        # exhaustion must not poison the cache with a partial result
        fresh = engine.multi_partition_aggregates(sub, gbs, "revenue")
        local = Subspace.full(ebiz)
        assert fresh == [local.partition_aggregates(gb, "revenue")
                         for gb in gbs]

    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_fused_and_unfused_truncate_alike(self, ebiz, backend):
        """Under the same group budget, both execution strategies raise
        the same typed error for the same reason (the budget contract
        does not depend on the fusion flag)."""
        gbs = [ebiz.groupby_attribute(*choice) for choice in EBIZ_GBS]
        reasons = {}
        for fuse in (True, False):
            engine = QueryEngine(ebiz, backend=backend,
                                 fuse_partitions=fuse)
            sub = Subspace.full(ebiz, engine=engine)
            budget = Budget(max_groups=1)
            with budget_scope(budget):
                with pytest.raises(BudgetExceeded) as excinfo:
                    engine.multi_partition_aggregates(sub, gbs, "revenue")
            reasons[fuse] = excinfo.value.reason
            engine.close()
        assert reasons[True] == reasons[False] == "groups"

    def test_explore_truncation_events_match_unfused(self, ebiz):
        """A budgeted explore degrades to the same TruncationEvent stages
        whether or not partition fusion is enabled."""
        from repro.core import KdapSession

        stages = {}
        for fuse in (True, False):
            session = KdapSession(ebiz, workers=1)
            session.engine.fuse_partitions = fuse
            ranked = session.differentiate("projectors seattle")
            assert ranked
            budget = Budget(max_groups=50)
            result = session.explore(ranked[0].star_net, budget=budget)
            assert result.is_partial
            stages[fuse] = [e.stage for e in budget.events]
            session.close()
        assert stages[True] == stages[False]


# ----------------------------------------------------------------------
# error handling
# ----------------------------------------------------------------------
class TestFailures:
    def test_failed_fused_execute_caches_nothing(self, ebiz):
        faulty = FaultInjectingBackend(InMemoryBackend(ebiz),
                                       fail_calls={1})
        engine = QueryEngine(ebiz, backend=faulty)
        gbs = [ebiz.groupby_attribute(*choice) for choice in EBIZ_GBS[:2]]
        sub = Subspace(ebiz, tuple(range(100)), engine=engine)
        with pytest.raises(TransientBackendError):
            engine.multi_partition_aggregates(sub, gbs, "revenue")
        assert len(engine.cache) == 0
        # retry succeeds and agrees with the local path
        got = engine.multi_partition_aggregates(sub, gbs, "revenue")
        local = Subspace(ebiz, tuple(range(100)))
        assert got == [local.partition_aggregates(gb, "revenue")
                       for gb in gbs]

    def test_resilient_wrapper_recovers_fused_plans(self, ebiz):
        flaky = FaultInjectingBackend(InMemoryBackend(ebiz),
                                      fail_calls={1})
        engine = QueryEngine(ebiz, backend=ResilientBackend(flaky))
        gbs = [ebiz.groupby_attribute(*choice) for choice in EBIZ_GBS[:3]]
        sub = Subspace.full(ebiz, engine=engine)
        got = engine.multi_partition_aggregates(sub, gbs, "revenue")
        local = Subspace.full(ebiz)
        assert got == [local.partition_aggregates(gb, "revenue")
                       for gb in gbs]


# ----------------------------------------------------------------------
# plan-node invariants
# ----------------------------------------------------------------------
class TestNodeInvariants:
    def test_rejects_empty_key_set(self, agg_schema):
        with pytest.raises(ValueError):
            MultiGroupAggregate(
                child=RowSet("Fact", (0,)), keys=(),
                aggregate="sum", measure_sql="Amount")

    def test_rejects_duplicate_keys(self, agg_schema):
        key = attr_key(_gbs(agg_schema)[0])
        with pytest.raises(ValueError):
            MultiGroupAggregate(
                child=RowSet("Fact", (0,)), keys=(key, key),
                aggregate="sum", measure_sql="Amount")

    def test_rejects_misaligned_domains(self, agg_schema):
        keys = tuple(attr_key(gb) for gb in _gbs(agg_schema))
        with pytest.raises(ValueError):
            MultiGroupAggregate(
                child=RowSet("Fact", (0,)), keys=keys,
                aggregate="sum", measure_sql="Amount",
                domains=(("a",),))

    def test_branches_sorted_canonically(self, agg_schema):
        keys = tuple(attr_key(gb) for gb in _gbs(agg_schema))
        plan = MultiGroupAggregate(
            child=RowSet("Fact", (0,)), keys=keys,
            aggregate="sum", measure_sql="Amount")
        flipped = MultiGroupAggregate(
            child=RowSet("Fact", (0,)), keys=keys[::-1],
            aggregate="sum", measure_sql="Amount")
        assert plan.branches() == flipped.branches()
