"""Morsel-driven parallel scan-aggregate: parity, determinism, budget.

:data:`~repro.plan.backends.PARALLEL_MIN_ROWS` and
:data:`~repro.plan.backends.MORSEL_ROWS` are module constants precisely
so these tests can shrink them: a twenty-thousand-row warehouse then
exercises the full morsel path — chunk packing, per-worker partial
states, the order-insensitive merge, budget charging per morsel — that
production only enters beyond a hundred thousand rows.
"""

import threading

import pytest

from repro.datasets import build_scale
from repro.plan import backends as backends_mod
from repro.plan.backends import InMemoryBackend, SqliteBackend
from repro.plan.builders import (
    attr_key,
    multi_partition_plan,
    partition_plan,
)
from repro.plan.nodes import Filter, Scan
from repro.relational.errors import BudgetExceeded
from repro.relational.expressions import Between, Col
from repro.resilience.budget import Budget, budget_scope

FACTS = 20_000


@pytest.fixture(scope="module")
def scale():
    return build_scale(num_facts=FACTS, seed=11, num_days=200)


@pytest.fixture(autouse=True)
def force_morsels(monkeypatch):
    """Shrink the thresholds so FACTS rows split into several morsels."""
    monkeypatch.setattr(backends_mod, "PARALLEL_MIN_ROWS", 512)
    monkeypatch.setattr(backends_mod, "MORSEL_ROWS", 1024)


def month_sum_plan(scale):
    gb = scale.groupby_attribute("DimDate", "MonthName")
    return partition_plan(Scan(scale.fact_table), (attr_key(gb),),
                          scale.measures["revenue"])


def approx_equal(a: dict, b: dict) -> bool:
    return a.keys() == b.keys() and all(
        b[k] == pytest.approx(a[k], rel=1e-9) for k in a)


class TestParity:
    def test_workers_match_serial_and_sqlite(self, scale):
        plan = month_sum_plan(scale)
        serial = InMemoryBackend(scale, workers=1).execute(plan)
        parallel = InMemoryBackend(scale, workers=4).execute(plan)
        assert approx_equal(serial, parallel)
        with SqliteBackend(scale) as sqlite:
            assert approx_equal(sqlite.execute(plan), parallel)

    def test_filtered_scan_matches_serial_and_sqlite(self, scale):
        gb = scale.groupby_attribute("DimProduct", "Color")
        source = Filter(Scan(scale.fact_table),
                        predicate=Between(Col("DateKey"),
                                          20030301, 20030501))
        plan = partition_plan(source, (attr_key(gb),),
                              scale.measures["revenue"])
        serial = InMemoryBackend(scale, workers=1).execute(plan)
        parallel = InMemoryBackend(scale, workers=3).execute(plan)
        assert approx_equal(serial, parallel)
        with SqliteBackend(scale) as sqlite:
            assert approx_equal(sqlite.execute(plan), parallel)

    def test_multi_aggregate_matches_serial(self, scale):
        gbs = [scale.groupby_attribute("DimDate", "MonthName"),
               scale.groupby_attribute("DimProduct", "Color")]
        plan = multi_partition_plan(scale, range(FACTS), gbs,
                                    scale.measures["revenue"])
        serial = InMemoryBackend(scale, workers=1).execute(plan)
        parallel = InMemoryBackend(scale, workers=4).execute(plan)
        assert parallel.keys() == serial.keys()    # one entry per key
        assert len(parallel) == len(gbs)
        for fingerprint, groups in serial.items():
            assert approx_equal(groups, parallel[fingerprint])


class TestDeterminism:
    def test_parallel_merge_is_run_to_run_deterministic(self, scale):
        plan = month_sum_plan(scale)
        backend = InMemoryBackend(scale, workers=4)
        first = backend.execute(plan)
        for _ in range(3):
            again = backend.execute(plan)
            # merge in morsel-index order: same values, bit for bit,
            # and the same group insertion order on every run
            assert again == first
            assert list(again) == list(first)


class TestCountersAndBudget:
    def test_morsels_and_chunks_surface_in_counters(self, scale):
        backend = InMemoryBackend(scale, workers=4)
        backend.execute(month_sum_plan(scale))
        stats = backend.counters.as_dict()["Partition"]
        assert stats["morsels"] >= 2
        assert stats["chunks_scanned"] > 0

    def test_zone_maps_skip_chunks_in_selective_filter(self, scale):
        gb = scale.groupby_attribute("DimDate", "MonthName")
        source = Filter(Scan(scale.fact_table),
                        predicate=Between(Col("DateKey"),
                                          20030310, 20030320))
        plan = partition_plan(source, (attr_key(gb),),
                              scale.measures["revenue"])
        backend = InMemoryBackend(scale)
        result = backend.execute(plan)
        assert result, "the ten-day window must select rows"
        stats = backend.counters.as_dict()["Filter"]
        assert stats["chunks_skipped"] > 0

    def test_row_budget_truncates_parallel_aggregate(self, scale):
        plan = month_sum_plan(scale)
        backend = InMemoryBackend(scale, workers=4)
        backend.execute(plan)    # warm caches outside the budget
        with budget_scope(Budget(max_rows=FACTS // 2)):
            with pytest.raises(BudgetExceeded) as excinfo:
                backend.execute(plan)
        assert excinfo.value.reason == "rows"

    def test_group_budget_counts_merged_groups_once(self, scale):
        plan = month_sum_plan(scale)
        backend = InMemoryBackend(scale, workers=4)
        groups = len(backend.execute(plan))
        # every worker sees every month, but the merged result must be
        # charged once: a budget admitting the true group count passes
        with budget_scope(Budget(max_groups=groups)):
            assert len(backend.execute(plan)) == groups
        with budget_scope(Budget(max_groups=groups - 1)):
            with pytest.raises(BudgetExceeded):
                backend.execute(plan)


class TestThreadSafety:
    def test_concurrent_queries_on_shared_backend(self, scale):
        """Morsel workers inside concurrent callers: the schema chunk
        cache, counters, and state merges must tolerate the cross
        traffic and every caller must see the same answer."""
        plan = month_sum_plan(scale)
        backend = InMemoryBackend(scale, workers=2)
        expected = backend.execute(plan)
        errors: list[BaseException] = []

        def caller() -> None:
            try:
                for _ in range(5):
                    assert backend.execute(plan) == expected
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=caller) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
