"""Backend parity on a hand-built schema with NULLs, booleans, and dates.

The two backends must agree bit-for-bit on row materialisation and on
aggregate results — including the awkward cases: NULL group keys, groups
whose measure is entirely NULL, dangling foreign keys, boolean and date
group values, empty row sets, and domain fills.
"""

import pytest

from repro.plan import (
    AttrKey,
    Filter,
    GroupAggregate,
    InMemoryBackend,
    Partition,
    RowSet,
    Scan,
    SemiJoin,
    SqliteBackend,
    create_backend,
)
from repro.relational import (
    Database,
    Table,
    boolean,
    date,
    float_,
    integer,
    text,
)
from repro.relational.expressions import Col
from repro.warehouse import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Measure,
    StarSchema,
    path_from_fk_names,
)


@pytest.fixture(scope="module")
def tiny():
    """Fact rows: a/a (amounts 1, 2), b (NULL amount), NULL-named dim,
    dangling FK."""
    db = Database("Tiny")
    dim = Table("Dim", [
        integer("DimKey", nullable=False),
        text("Name"),
        boolean("Flag"),
        date("Day"),
    ], primary_key="DimKey")
    dim.insert_many([
        {"DimKey": 1, "Name": "a", "Flag": True, "Day": "2020-01-01"},
        {"DimKey": 2, "Name": "b", "Flag": False, "Day": "2020-01-02"},
        {"DimKey": 3, "Name": None, "Flag": None, "Day": None},
    ])
    db.add_table(dim)
    fact = Table("Fact", [
        integer("FactKey", nullable=False),
        integer("DimKey"),
        float_("Amount"),
    ], primary_key="FactKey")
    fact.insert_many([
        {"FactKey": 10, "DimKey": 1, "Amount": 1.0},
        {"FactKey": 11, "DimKey": 1, "Amount": 2.0},
        {"FactKey": 12, "DimKey": 2, "Amount": None},
        {"FactKey": 13, "DimKey": 3, "Amount": 4.0},
        {"FactKey": 14, "DimKey": None, "Amount": 8.0},
    ])
    db.add_table(fact)
    db.add_foreign_key("fk_dim", "Fact", "DimKey", "Dim", "DimKey")
    path = path_from_fk_names(db, "Fact", ["fk_dim"])
    dim_d = Dimension(
        name="D",
        tables=("Dim",),
        groupbys=(
            GroupByAttribute(AttributeRef("Dim", "Name"),
                             AttributeKind.CATEGORICAL, path),
            GroupByAttribute(AttributeRef("Dim", "Flag"),
                             AttributeKind.CATEGORICAL, path),
            GroupByAttribute(AttributeRef("Dim", "Day"),
                             AttributeKind.CATEGORICAL, path),
        ),
    )
    return StarSchema(
        database=db, fact_table="Fact", dimensions=[dim_d],
        measures=[
            Measure("amount", Col("Amount"), "sum"),
            Measure("avg_amount", Col("Amount"), "avg"),
            Measure("n", Col("FactKey"), "count"),
        ],
        searchable={"Dim": ["Name"]},
    )


@pytest.fixture(scope="module")
def backends(tiny):
    sqlite = SqliteBackend(tiny)
    yield InMemoryBackend(tiny), sqlite
    sqlite.close()


def _attr(tiny, column) -> AttrKey:
    gb = tiny.groupby_attribute("Dim", column)
    return AttrKey("Dim", column, gb.path_from_fact)


def _partition(tiny, source, column, measure="amount", domain=None):
    return GroupAggregate(
        Partition(source, (_attr(tiny, column),)),
        tiny.measures[measure].aggregate,
        str(tiny.measures[measure].expression),
        tiny.measures[measure].expression,
        domain=domain,
    )


class TestMaterialize:
    def test_scan(self, backends):
        mem, sq = backends
        plan = Scan("Fact")
        assert mem.materialize(plan) == sq.materialize(plan) \
            == (0, 1, 2, 3, 4)

    def test_semijoin(self, tiny, backends):
        mem, sq = backends
        path = tiny.groupby_attribute("Dim", "Name").path_from_fact
        plan = SemiJoin(Scan("Fact"), "Dim", "Name", ("a",),
                        path.reversed(), "D")
        assert mem.materialize(plan) == sq.materialize(plan) == (0, 1)

    def test_semijoin_on_boolean(self, tiny, backends):
        mem, sq = backends
        path = tiny.groupby_attribute("Dim", "Flag").path_from_fact
        plan = SemiJoin(Scan("Fact"), "Dim", "Flag", (False,),
                        path.reversed(), "D")
        assert mem.materialize(plan) == sq.materialize(plan) == (2,)

    def test_attr_filter_with_null(self, tiny, backends):
        """None in the value set keeps rows whose attribute is NULL —
        including the dangling-FK row."""
        mem, sq = backends
        plan = Filter(RowSet("Fact", (0, 1, 2, 3, 4)),
                      attr=_attr(tiny, "Name"), values=("b", None))
        assert mem.materialize(plan) == sq.materialize(plan) == (2, 3, 4)

    def test_rowset_subset(self, backends):
        mem, sq = backends
        plan = RowSet("Fact", (1, 3))
        assert mem.materialize(plan) == sq.materialize(plan) == (1, 3)

    def test_empty_rowset(self, backends):
        mem, sq = backends
        plan = RowSet("Fact", ())
        assert mem.materialize(plan) == sq.materialize(plan) == ()


class TestAggregates:
    def test_scalar_sum_ignores_null(self, tiny, backends):
        mem, sq = backends
        plan = GroupAggregate(Scan("Fact"), "sum", "Amount",
                              Col("Amount"))
        assert mem.execute(plan) == pytest.approx(15.0)
        assert sq.execute(plan) == pytest.approx(15.0)

    def test_group_sum_with_all_null_group(self, tiny, backends):
        """Group 'b' has only NULL amounts: both backends report 0 (the
        in-memory fold's identity), and NULL keys are dropped."""
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Name")
        want = {"a": 3.0, "b": 0}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want

    def test_group_keys_keep_boolean_type(self, tiny, backends):
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Flag")
        for result in (mem.execute(plan), sq.execute(plan)):
            assert result == {True: 3.0, False: 0}
            assert all(isinstance(k, bool) for k in result)

    def test_group_keys_keep_date_strings(self, tiny, backends):
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Day")
        want = {"2020-01-01": 3.0, "2020-01-02": 0}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want

    def test_avg_of_all_null_group_is_none(self, tiny, backends):
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Name",
                          measure="avg_amount")
        want = {"a": 1.5, "b": None}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want

    def test_count_measure(self, tiny, backends):
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Name",
                          measure="n")
        want = {"a": 2, "b": 1}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want

    def test_domain_fills_missing_groups(self, tiny, backends):
        mem, sq = backends
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2, 3, 4)), "Name",
                          domain=("a", "zzz"))
        want = {"a": 3.0, "zzz": 0}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want

    def test_empty_rowset_aggregates(self, tiny, backends):
        mem, sq = backends
        scalar = GroupAggregate(RowSet("Fact", ()), "sum", "Amount",
                                Col("Amount"))
        grouped = _partition(tiny, RowSet("Fact", ()), "Name")
        filled = _partition(tiny, RowSet("Fact", ()), "Name",
                            domain=("a", "b"))
        for backend in (mem, sq):
            assert backend.execute(scalar) == 0
            assert backend.execute(grouped) == {}
            assert backend.execute(filled) == {"a": 0, "b": 0}

    def test_multi_key_partition(self, tiny, backends):
        mem, sq = backends
        measure = tiny.measures["amount"]
        plan = GroupAggregate(
            Partition(RowSet("Fact", (0, 1, 2, 3, 4)),
                      (_attr(tiny, "Name"), _attr(tiny, "Flag"))),
            measure.aggregate, str(measure.expression),
            measure.expression,
        )
        want = {("a", True): 3.0, ("b", False): 0}
        assert mem.execute(plan) == want
        assert sq.execute(plan) == want


class TestCounters:
    def test_memory_counters_record_ops(self, tiny):
        mem = InMemoryBackend(tiny)
        plan = _partition(tiny, RowSet("Fact", (0, 1, 2)), "Name")
        mem.execute(plan)
        ops = mem.counters.as_dict()
        assert ops["Partition"]["calls"] == 1
        assert ops["GroupAggregate"]["calls"] == 1
        assert mem.counters.total_calls >= 3

    def test_sqlite_counters_record_sql(self, tiny):
        with SqliteBackend(tiny) as sq:
            plan = _partition(tiny, RowSet("Fact", (0, 1, 2)), "Name")
            sq.execute(plan)
            ops = sq.counters.as_dict()
            assert ops["SqlExecute"]["calls"] == 1
            assert ops["SqlExecute"]["rows"] >= 1
            assert ops["SqlCompile"]["calls"] == 1

    def test_reset(self, tiny):
        mem = InMemoryBackend(tiny)
        mem.materialize(Scan("Fact"))
        assert mem.counters.total_calls > 0
        mem.counters.reset()
        assert mem.counters.total_calls == 0


class TestRegistry:
    def test_create_by_name(self, tiny):
        assert create_backend(tiny, "memory").name == "memory"
        assert create_backend(tiny, "sqlite").name == "sqlite"

    def test_instance_passthrough(self, tiny):
        backend = InMemoryBackend(tiny)
        assert create_backend(tiny, backend) is backend

    def test_unknown_name(self, tiny):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend(tiny, "duckdb")
