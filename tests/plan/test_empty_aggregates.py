"""Empty-input aggregate semantics, pinned across backends.

The audit behind the vectorized rewrite: a domain-filled group that
selects *zero* rows must aggregate identically on the in-memory kernels
and the sqlite mirror — 0 for sum/count (the fold identity), None for
avg/min/max (SQL NULL).  Three empty-input shapes are covered:

* a domain value present in no row (single-key ``GroupAggregate.domain``
  fill);
* the same through the fused ``MultiGroupAggregate.domains`` path
  (``_fill_domains``);
* an entirely empty child row set (``_empty_result``).
"""

import pytest

from repro.plan import (
    GroupAggregate,
    InMemoryBackend,
    Partition,
    RowSet,
    SqliteBackend,
)
from repro.plan.builders import attr_key, multi_partition_plan
from repro.relational import Database, Table, float_, integer, text
from repro.relational.expressions import Col
from repro.relational.operators import AGGREGATES
from repro.warehouse import (
    AttributeKind,
    AttributeRef,
    Dimension,
    GroupByAttribute,
    Measure,
    StarSchema,
    path_from_fk_names,
)

ALL_AGGREGATES = sorted(AGGREGATES)

EMPTY_FILL = {"sum": 0, "count": 0, "avg": None, "min": None, "max": None}
"""The pinned empty-input results: fold identities for sum/count, None
(SQL NULL) for the aggregates with no identity element."""


@pytest.fixture(scope="module")
def schema():
    """Two dim values ('a' with rows, 'b' without any fact row)."""
    db = Database("EmptyAgg")
    dim = Table("Dim", [
        integer("DimKey", nullable=False),
        text("Name"),
    ], primary_key="DimKey")
    dim.insert_many([
        {"DimKey": 1, "Name": "a"},
        {"DimKey": 2, "Name": "b"},
    ])
    db.add_table(dim)
    fact = Table("Fact", [
        integer("FactKey", nullable=False),
        integer("DimKey"),
        float_("Amount"),
    ], primary_key="FactKey")
    fact.insert_many([
        {"FactKey": 10, "DimKey": 1, "Amount": 2.0},
        {"FactKey": 11, "DimKey": 1, "Amount": 4.0},
    ])
    db.add_table(fact)
    db.add_foreign_key("fk_dim", "Fact", "DimKey", "Dim", "DimKey")
    path = path_from_fk_names(db, "Fact", ["fk_dim"])
    dim_d = Dimension(
        name="D",
        tables=("Dim",),
        groupbys=(
            GroupByAttribute(AttributeRef("Dim", "Name"),
                             AttributeKind.CATEGORICAL, path),
        ),
    )
    return StarSchema(
        database=db, fact_table="Fact", dimensions=[dim_d],
        measures=[Measure(f"amount_{agg}", Col("Amount"), agg)
                  for agg in ALL_AGGREGATES],
        searchable={"Dim": ["Name"]},
    )


@pytest.fixture(scope="module")
def backends(schema):
    sqlite = SqliteBackend(schema)
    yield InMemoryBackend(schema), sqlite
    sqlite.close()


def _partition(schema, rows, aggregate, domain):
    measure = schema.measures[f"amount_{aggregate}"]
    gb = schema.groupby_attribute("Dim", "Name")
    return GroupAggregate(
        Partition(RowSet("Fact", rows), (attr_key(gb),)),
        measure.aggregate,
        str(measure.expression),
        measure.expression,
        domain=domain,
    )


@pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
def test_domain_filled_empty_group(schema, backends, aggregate):
    """'b' is in the domain but selects no rows: both backends fill it
    with the pinned empty-input value."""
    mem, sq = backends
    plan = _partition(schema, (0, 1), aggregate, domain=("a", "b"))
    mem_result = mem.execute(plan)
    assert mem_result == sq.execute(plan)
    assert mem_result["b"] == EMPTY_FILL[aggregate]
    assert mem_result["a"] is not None


@pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
def test_domain_fill_through_fused_path(schema, backends, aggregate):
    """The MultiGroupAggregate domains fill agrees with the single-key
    fill on both backends."""
    mem, sq = backends
    gb = schema.groupby_attribute("Dim", "Name")
    plan = multi_partition_plan(schema, (0, 1), [gb],
                                schema.measures[f"amount_{aggregate}"],
                                domains=[("a", "b")])
    mem_result = mem.execute(plan)
    assert mem_result == sq.execute(plan)
    groups = mem_result[attr_key(gb).fingerprint()]
    assert groups["b"] == EMPTY_FILL[aggregate]


@pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
def test_empty_rowset_child(schema, backends, aggregate):
    """Aggregating an empty subspace: every domain value gets the fill."""
    mem, sq = backends
    plan = _partition(schema, (), aggregate, domain=("a", "b"))
    want = {"a": EMPTY_FILL[aggregate], "b": EMPTY_FILL[aggregate]}
    assert mem.execute(plan) == want
    assert sq.execute(plan) == want


@pytest.mark.parametrize("aggregate", ALL_AGGREGATES)
def test_empty_rowset_scalar(schema, backends, aggregate):
    """Ungrouped aggregate over zero rows pins the same fills."""
    mem, sq = backends
    measure = schema.measures[f"amount_{aggregate}"]
    plan = GroupAggregate(RowSet("Fact", ()), measure.aggregate,
                          str(measure.expression), measure.expression)
    assert mem.execute(plan) == EMPTY_FILL[aggregate]
    assert sq.execute(plan) == EMPTY_FILL[aggregate]
