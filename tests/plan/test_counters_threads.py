"""PlanCounters under concurrent record + snapshot traffic.

Regression for a torn-read window: ``as_dict`` / ``total_calls`` /
``reset`` used to read ``ops`` without the lock ``record`` takes, so a
stats consumer snapshotting while backend worker threads recorded could
see a dict mutated mid-iteration or per-op stats half-updated.
"""

import threading

from repro.plan import PlanCounters


class TestConcurrentSnapshots:
    def test_snapshot_while_recording_stays_consistent(self):
        counters = PlanCounters()
        stop = threading.Event()
        errors: list[BaseException] = []

        def recorder(op: str) -> None:
            try:
                while not stop.is_set():
                    # rows always 10x calls, so any snapshot must agree
                    counters.record(op, rows=10, batches=1)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def snapshotter() -> None:
            try:
                for _ in range(300):
                    snapshot = counters.as_dict()
                    for stats in snapshot.values():
                        assert stats["rows"] == stats["calls"] * 10
                        assert stats["batches"] == stats["calls"]
                    counters.total_calls  # must not raise mid-mutation
            except BaseException as exc:
                errors.append(exc)

        recorders = [threading.Thread(target=recorder, args=(f"Op{i}",))
                     for i in range(3)]
        reader = threading.Thread(target=snapshotter)
        for thread in recorders:
            thread.start()
        reader.start()
        reader.join()
        stop.set()
        for thread in recorders:
            thread.join()
        assert not errors

    def test_reset_races_with_recorders(self):
        counters = PlanCounters()
        stop = threading.Event()
        errors: list[BaseException] = []

        def recorder() -> None:
            try:
                while not stop.is_set():
                    counters.record("Scan", rows=1)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def resetter() -> None:
            try:
                for _ in range(200):
                    counters.reset()
                    assert counters.total_calls >= 0
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=recorder) for _ in range(2)]
        reset_thread = threading.Thread(target=resetter)
        for thread in threads:
            thread.start()
        reset_thread.start()
        reset_thread.join()
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors

    def test_timed_context_manager_records_once(self):
        counters = PlanCounters()
        with counters.timed("Scan") as out:
            out[0] = 42
            out[1] = 2
        snapshot = counters.as_dict()
        assert snapshot["Scan"]["calls"] == 1
        assert snapshot["Scan"]["rows"] == 42
        assert snapshot["Scan"]["rows_per_batch"] == 21.0
        assert counters.total_calls == 1
