"""Explore-phase smoke run for one execution backend.

Builds a small AdventureWorks warehouse, runs one explore-phase query
end to end (differentiate + facet build), and dumps the per-operator
execution counters and plan-cache statistics as JSON.  CI runs this once
per backend and uploads the dump as an artifact, so a perf or plan-shape
regression shows up as a diff in operator calls/rows rather than only as
a wall-clock change.

Usage::

    PYTHONPATH=src python benchmarks/backend_smoke.py \
        --backend sqlite --facts 8000 --out counters-sqlite.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import KdapSession
from repro.datasets import build_aw_online
from repro.plan import BACKENDS

QUERY = "California Mountain Bikes"


def run(backend: str, facts: int, seed: int = 42) -> dict:
    schema = build_aw_online(num_facts=facts, seed=seed)
    session = KdapSession(schema, backend=backend)
    try:
        started = time.perf_counter()
        ranked = session.differentiate(QUERY, limit=1)
        if not ranked:
            raise SystemExit(f"no interpretation for {QUERY!r}")
        net = ranked[0].star_net
        first = session.explore(net)
        second = session.explore(net)  # warm plan-cache pass
        elapsed = time.perf_counter() - started

        stats = session.engine.cache_stats
        return {
            "backend": session.engine.backend_name,
            "query": QUERY,
            "facts": facts,
            "seed": seed,
            "elapsed_seconds": round(elapsed, 3),
            "fact_rows": len(first.subspace),
            "total_aggregate": first.total_aggregate,
            "facets": len(first.interface.facets),
            "results_identical":
                first.total_aggregate == second.total_aggregate,
            "plan_cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
                "hit_rate": round(stats.hit_rate, 4),
            },
            "operators": session.engine.counters.as_dict(),
        }
    finally:
        session.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=sorted(BACKENDS),
                        default="memory")
    parser.add_argument("--facts", type=int, default=8000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", help="write the JSON dump here "
                                      "(default: stdout)")
    args = parser.parse_args(argv)

    report = run(args.backend, args.facts, args.seed)
    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)

    if not report["results_identical"]:
        print("explore results changed between cold and warm passes",
              file=sys.stderr)
        return 1
    if report["plan_cache"]["hits"] == 0:
        print("plan cache recorded no hits on repeated exploration",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
