"""Table 2: selected attributes and attribute instances.

Regenerates the Table 2 output — the dynamically constructed Product
facet for the top "California Mountain Bikes" star net — and benchmarks
the full explore phase (subspace evaluation + roll-ups + attribute &
instance ranking + numerical annealing).

Shape check vs the paper: ProductSubcategory is promoted with the
"Mountain Bikes" entry; DealerPrice appears as merged numeric intervals;
ModelName surfaces the Mountain-* models.
"""

from repro.core import ExploreConfig, build_facets
from repro.evalkit import render_facets
from repro.plan import QueryEngine


def test_table2_facets(benchmark, online_session_full):
    session = online_session_full
    ranked = session.differentiate("California Mountain Bikes", limit=1)
    net = ranked[0].star_net
    config = ExploreConfig(top_k_attributes=4, top_k_instances=4,
                           display_intervals=3)

    interface = benchmark.pedantic(
        build_facets, args=(session.schema, net),
        kwargs={"config": config}, rounds=3, iterations=1,
    )

    print("\n=== Table 2: Product-dimension facet ===")
    print(render_facets(interface, dimensions=["Product"]))

    product = interface.facet("Product")
    columns = [a.attribute.ref.column for a in product.attributes]
    assert "ProductSubcategoryName" in columns
    subcat = next(a for a in product.attributes
                  if a.attribute.ref.column == "ProductSubcategoryName")
    assert subcat.promoted
    assert any(e.label == "Mountain Bikes" for e in subcat.entries)
    if "DealerPrice" in columns:
        price = next(a for a in product.attributes
                     if a.attribute.ref.column == "DealerPrice")
        assert 1 <= len(price.entries) <= 3
    if "ModelName" in columns:
        model = next(a for a in product.attributes
                     if a.attribute.ref.column == "ModelName")
        assert any(e.label.startswith("Mountain-") for e in model.entries)


def test_table2_facets_engine_fused(benchmark, online_session_full):
    """The same workload through an engine, asserting fusion engaged:
    many group-bys per fused query, so whole scans (or SQL round-trips)
    were saved relative to the per-attribute path."""
    session = online_session_full
    ranked = session.differentiate("California Mountain Bikes", limit=1)
    net = ranked[0].star_net
    config = ExploreConfig(top_k_attributes=4, top_k_instances=4,
                           display_intervals=3)
    engine = QueryEngine(session.schema, backend="memory")

    def run():
        engine.cache.clear()
        return build_facets(session.schema, net, config=config,
                            engine=engine)

    interface = benchmark.pedantic(run, rounds=3, iterations=1)

    assert interface.facet("Product").attributes
    fusion = engine.fusion
    assert fusion.fused_queries > 0, "facet workload must fuse"
    assert fusion.attributes_fused > fusion.fused_queries, \
        "each fused query must cover several group-by attributes"
    assert fusion.scans_saved > 0
