"""Ablation (§7): interval-merge algorithms — annealing vs beam vs exact.

The paper's future work hypothesises "more efficient algorithms for
finding partitions" than its simulated annealing.  This benchmark
compares three on the real Figure-7 workload (basic-interval series from
the "France Clothing" / YearlyIncome subspace):

* Algorithm 2's simulated annealing (500 iterations, the paper's setup);
* a left-to-right beam search (width 64);
* the exact optimum by constrained enumeration.

Reported per algorithm: the final error (|merged - basic| correlation,
in percentage points) and wall-clock time.  Expected shape: exact <= beam
<= annealing on error, with the beam search an order of magnitude fewer
evaluations than annealing for equal-or-better quality.
"""

import time

from repro.core import AnnealingConfig, anneal_splits
from repro.core.optimal_merge import beam_splits, exhaustive_splits
from repro.evalkit import basic_series_for_query, render_table


def test_merge_algorithm_ablation(benchmark, online_session_full):
    x, y = basic_series_for_query(online_session_full, "France Clothing",
                                  "DimCustomer", "YearlyIncome",
                                  num_buckets=40)
    k = 6

    def run_all():
        results = {}
        t0 = time.perf_counter()
        results["annealing (500 it)"] = anneal_splits(
            x, y, AnnealingConfig(num_intervals=k, iterations=500))
        t1 = time.perf_counter()
        results["beam (width 64)"] = beam_splits(x, y, k, beam_width=64)
        t2 = time.perf_counter()
        results["exact"] = exhaustive_splits(x, y, k)
        t3 = time.perf_counter()
        timings = {
            "annealing (500 it)": t1 - t0,
            "beam (width 64)": t2 - t1,
            "exact": t3 - t2,
        }
        return results, timings

    results, timings = benchmark.pedantic(run_all, rounds=3, iterations=1)

    rows = [
        (name, f"{res.error * 100:.4f}", f"{timings[name] * 1000:.2f}",
         str(res.splits))
        for name, res in results.items()
    ]
    print(f"\n=== Merge-algorithm ablation ({len(x)} basic intervals, "
          f"K={k}) ===")
    print(render_table(("algorithm", "error %", "time ms", "splits"),
                       rows))

    exact_error = results["exact"].error
    assert exact_error <= results["beam (width 64)"].error + 1e-12
    assert exact_error <= results["annealing (500 it)"].error + 1e-12
    # the annealing result is near-optimal, as Figure 7 claims
    assert results["annealing (500 it)"].error - exact_error <= 0.10
