"""Staged interpretation pipeline vs the pinned legacy front end.

The keyword front end was refactored from a monolithic
keyword→hit-groups→star-nets path into a staged pipeline
(tokenize → match → enumerate → rank) with a pluggable matcher chain.
The refactor's performance contract: on queries the old front end could
handle at all — every keyword resolving to cell values — the value-only
staged chain (:func:`repro.core.interpret_query` with
``matchers=("value",)``) may cost at most ``MAX_RATIO`` (1.25x) of the
pre-refactor path.  The legacy path
(:func:`repro.core.generate_candidates` +
:func:`repro.core.rank_candidates`) stays in the tree as the pinned
reference, so the baseline survives further matcher work.

Both sides run the same mixed query list end to end (tokenize through
ranking) against a shared warmed text index.  Timed runs are
interleaved and the gate compares *minimum* runs, like the
vectorization and tracing gates: the deterministic workload's best case
is its true cost.  An untimed warm-up also asserts output parity —
identical star nets in identical order with identical scores — so the
gate can never pass on a pipeline that got fast by dropping work.

Usage::

    PYTHONPATH=src python benchmarks/bench_interpretation.py [--repeats N]
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.core import (
    MatcherChain,
    RankingMethod,
    generate_candidates,
    interpret_query,
    rank_candidates,
    rank_interpretations,
)
from repro.core.generation import DEFAULT_CONFIG
from repro.datasets import build_aw_online
from repro.obs.metrics import runs_summary
from repro.textindex.index import AttributeTextIndex

MAX_RATIO = 1.25
"""Acceptance ceiling: the staged value-only matcher chain may be at
most this much slower than the pinned legacy front end on all-value
queries (ISSUE acceptance criterion)."""

QUERIES = (
    "California Mountain Bikes",
    "France Touring",
    "October Silver",
    "Europe Clothing",
    "Germany Road Bikes",
    "December Australia",
)
"""All-value workload: every keyword hits cell values, so both paths
produce the same interpretations and the delta is pipeline plumbing."""


def _shape(ranked):
    return [(str(s.star_net), round(s.score, 9)) for s in ranked]


def compare(schema, repeats: int) -> tuple[dict, dict]:
    """Interleaved timings of both front ends on the query list.

    Returns ``(benchmarks, check)``: per-mode timing dicts in the
    ``run_all`` format plus the min-run ratio gate entry.
    """
    index = AttributeTextIndex()
    index.index_database(schema.database, schema.searchable)
    chain = MatcherChain(schema, index)
    method = RankingMethod.STANDARD

    def run_legacy():
        return [
            rank_candidates(
                generate_candidates(schema, index, query, DEFAULT_CONFIG),
                method)
            for query in QUERIES
        ]

    def run_staged():
        ranked = []
        for query in QUERIES:
            interps, _report = interpret_query(
                schema, index, query, DEFAULT_CONFIG,
                matchers=("value",), chain=chain)
            ranked.append(rank_interpretations(interps, method))
        return ranked

    modes = {"legacy": run_legacy, "staged": run_staged}
    warm = {mode: fn() for mode, fn in modes.items()}  # untimed warm-up
    for query, legacy, staged in zip(QUERIES, warm["legacy"],
                                     warm["staged"]):
        assert _shape(staged) == _shape(legacy), \
            f"front ends disagree on {query!r}"
    interpretations = sum(len(r) for r in warm["legacy"])
    assert interpretations, "workload produced no interpretations"

    runs: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(repeats):
        for mode, fn in modes.items():
            started = time.perf_counter()
            fn()
            runs[mode].append(time.perf_counter() - started)

    benchmarks = {}
    for mode in modes:
        benchmarks[f"interpretation_{mode}"] = {
            "median_s": round(statistics.median(runs[mode]), 6),
            "min_s": round(min(runs[mode]), 6),
            "runs_s": [round(r, 6) for r in runs[mode]],
            **runs_summary(runs[mode]),
            "meta": {"mode": mode, "queries": len(QUERIES),
                     "interpretations": interpretations},
        }
    legacy_min = min(runs["legacy"])
    staged_min = min(runs["staged"])
    check = {
        "legacy_min_s": round(legacy_min, 6),
        "staged_min_s": round(staged_min, 6),
        "ratio": round(staged_min / max(legacy_min, 1e-9), 3),
        "max_ratio": MAX_RATIO,
        "queries": len(QUERIES),
        "interpretations": interpretations,
    }
    return benchmarks, check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced dataset size")
    args = parser.parse_args(argv)
    schema = (build_aw_online(num_customers=300, num_facts=8000, seed=42)
              if args.smoke else build_aw_online())
    benchmarks, check = compare(schema, args.repeats)
    for name, entry in benchmarks.items():
        print(f"  {name}: {entry['median_s']:.4f} s "
              f"(min {entry['min_s']:.4f} s)")
    print(f"ratio: {check['ratio']:.2f}x "
          f"(ceiling {check['max_ratio']:.2f}x)")
    return 0 if check["ratio"] <= check["max_ratio"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
