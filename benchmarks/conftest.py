"""Paper-scale fixtures for the benchmark harness.

These mirror the paper's setup: >60,000 fact rows per warehouse, >20
searchable attribute domains.  Built once per pytest session.
"""

from __future__ import annotations

import pytest

from repro.core import KdapSession
from repro.datasets import build_aw_online, build_aw_reseller


@pytest.fixture(scope="session")
def aw_online_full():
    """AW_ONLINE at paper scale (60,500 fact rows)."""
    return build_aw_online()


@pytest.fixture(scope="session")
def aw_reseller_full():
    """AW_RESELLER at paper scale (61,000 fact rows)."""
    return build_aw_reseller()


@pytest.fixture(scope="session")
def online_session_full(aw_online_full):
    return KdapSession(aw_online_full)


@pytest.fixture(scope="session")
def reseller_session_full(aw_reseller_full):
    return KdapSession(aw_reseller_full)
