"""Materialized sub-cube tier vs direct scanning on the 1M-row star.

The microbenchmark behind the materialization acceptance gate.  One
workload — partition the full million-row fact space by each of the
scale schema's categorical attributes, ``sum(revenue)`` per group — runs
through two :class:`~repro.plan.engine.QueryEngine` instances over the
same warehouse:

* **tier_off** — the plain engine: every query is a full fact scan
  (plan caches are cleared before each timed run, so memoisation never
  masks execution cost);
* **tier_on** — the engine with a :class:`MaterializationTier` warmed by
  the admission policy itself (two fingerprint-distinct misses per
  anchor during untimed warm-up): exact view hits for the fine
  attributes, a lattice roll-up for ``CategoryName``.

A second scenario appends a delta of fact rows and asks the warmed tier
again: incremental maintenance must fold exactly the delta through each
refreshed view (``refreshed_rows == delta x refreshes``) with zero
full rebuilds — the "refresh cost proportional to delta" criterion.

Schema caches are primed by untimed warm-ups shared by both modes,
timed runs are interleaved, and the gate compares *minimum* runs —
same protocol as :mod:`bench_morsel_scan`.

Usage::

    PYTHONPATH=src python benchmarks/bench_materialize.py [--repeats N]
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.datasets import build_scale
from repro.obs.metrics import runs_summary
from repro.plan.engine import QueryEngine
from repro.warehouse import Subspace

MIN_SPEEDUP = 2.0
"""Acceptance floor: answering the categorical partition workload from
materialized views must beat direct scanning by at least this factor on
a million fact rows (ISSUE acceptance criterion)."""

ATTRS = (("DimProduct", "ProductName"),
         ("DimProduct", "Color"),
         ("DimDate", "MonthName"),
         ("DimDate", "CalendarYearName"),
         ("DimProduct", "CategoryName"))

#: One restricted domain per attribute — a second, fingerprint-distinct
#: query shape so warm-up misses cross the tier's admission threshold.
WARM_DOMAINS = {
    "ProductName": ("Scale Product 001", "Scale Product 002"),
    "Color": ("Black", "Red"),
    "MonthName": ("January", "June"),
    "CalendarYearName": ("CY 2003",),
    "CategoryName": ("Bikes",),
}

APPEND_ROWS = 20_000


def _results_agree(reference: dict, other: dict) -> bool:
    """Same groups, sums equal within float re-association tolerance."""
    if reference.keys() != other.keys():
        return False
    return all(abs(reference[k] - other[k])
               <= 1e-9 * max(1.0, abs(reference[k])) for k in reference)


def _workload(schema):
    return [schema.groupby_attribute(table, column)
            for table, column in ATTRS]


def _run_queries(engine, schema, gbs) -> list[dict]:
    full = Subspace.full(schema)
    return [engine.subspace_partition_aggregates(full, gb, "revenue")
            for gb in gbs]


def append_delta(schema, count: int) -> None:
    """Bulk-append ``count`` fact rows (new orders, existing keys)."""
    fact = schema.database.table(schema.fact_table)
    base = len(fact)
    num_products = len(schema.database.table("DimProduct"))
    schedule = [(i * 7) % num_products + 1 for i in range(count)]
    fact.load_columns({
        "OrderKey": range(base + 1, base + count + 1),
        "ProductKey": schedule,
        "DateKey": [20040101 + (i % 28) for i in range(count)],
        "UnitPrice": [10.0 + (key % 5) for key in schedule],
        "Quantity": [1 + (i % 3) for i in range(count)],
    })


def compare(schema, repeats: int) -> tuple[dict, dict]:
    """Interleaved tier-on/tier-off timings plus the append scenario.

    Returns ``(benchmarks, check)``: per-mode timing dicts in the
    ``run_all`` format plus the min-run speedup gate entry (including
    the incremental-maintenance counters).
    """
    gbs = _workload(schema)
    engines = {
        "tier_off": QueryEngine(schema),
        "tier_on": QueryEngine(schema, materialize=True),
    }
    tier = engines["tier_on"].tier

    # Untimed warm-up.  tier_off primes the shared schema vectors and
    # encoded chunks; tier_on additionally runs one restricted-domain
    # query per attribute so each anchor sees two distinct fingerprints
    # and crosses the admission threshold (the tier warms itself through
    # its own policy — nothing is precomputed out of band).
    results = {mode: _run_queries(engine, schema, gbs)
               for mode, engine in engines.items()}
    full = Subspace.full(schema)
    for gb in gbs:
        engines["tier_on"].subspace_partition_aggregates(
            full, gb, "revenue", domain=WARM_DOMAINS[gb.ref.column])
    results["tier_on"] = _run_queries(engines["tier_on"], schema, gbs)
    for reference, other in zip(results["tier_off"], results["tier_on"]):
        assert _results_agree(reference, other), \
            "tier answers disagree with direct scans"
    warm_hits = tier.stats.hits + tier.stats.rollup_hits
    assert warm_hits > 0, "warm-up admitted no usable views"

    runs: dict[str, list[float]] = {mode: [] for mode in engines}
    for _ in range(repeats):
        for mode, engine in engines.items():
            engine.cache.clear()   # measure execution, not memoisation
            started = time.perf_counter()
            _run_queries(engine, schema, gbs)
            runs[mode].append(time.perf_counter() - started)

    fact_rows = schema.num_fact_rows
    benchmarks = {}
    for mode in engines:
        benchmarks[f"materialize_{mode}"] = {
            "median_s": round(statistics.median(runs[mode]), 6),
            "min_s": round(min(runs[mode]), 6),
            "runs_s": [round(r, 6) for r in runs[mode]],
            **runs_summary(runs[mode]),
            "meta": {"mode": mode, "fact_rows": fact_rows,
                     "queries": len(gbs)},
        }

    # Append scenario: a warmed tier must fold exactly the delta.
    refreshes_before = tier.stats.refreshes
    refreshed_before = tier.stats.refreshed_rows
    append_delta(schema, APPEND_ROWS)
    started = time.perf_counter()
    refreshed_results = _run_queries(engines["tier_on"], schema, gbs)
    refresh_s = time.perf_counter() - started
    direct = _run_queries(engines["tier_off"], schema, gbs)
    for reference, other in zip(direct, refreshed_results):
        assert _results_agree(reference, other), \
            "post-append tier answers disagree with direct scans"
    refreshes = tier.stats.refreshes - refreshes_before
    refreshed_rows = tier.stats.refreshed_rows - refreshed_before
    benchmarks["materialize_append_refresh"] = {
        "median_s": round(refresh_s, 6),
        "min_s": round(refresh_s, 6),
        "runs_s": [round(refresh_s, 6)],
        **runs_summary([refresh_s]),
        "meta": {"delta_rows": APPEND_ROWS, "refreshes": refreshes,
                 "refreshed_rows": refreshed_rows},
    }

    snapshot = tier.snapshot()
    for engine in engines.values():
        engine.close()
    off_min = min(runs["tier_off"])
    on_min = min(runs["tier_on"])
    check = {
        "fact_rows": fact_rows,
        "tier_off_min_s": round(off_min, 6),
        "tier_on_min_s": round(on_min, 6),
        "speedup": round(off_min / max(on_min, 1e-9), 3),
        "required_speedup": MIN_SPEEDUP,
        "views": snapshot["views"],
        "hits": snapshot["hits"],
        "rollup_hits": snapshot["rollup_hits"],
        "refresh": {
            "delta_rows": APPEND_ROWS,
            "refreshes": refreshes,
            "refreshed_rows": refreshed_rows,
            "rebuilds": snapshot["rebuilds"],
            "proportional": refreshed_rows == APPEND_ROWS * refreshes,
        },
    }
    return benchmarks, check


def passes(check: dict) -> bool:
    """The materialization gate: tier answering must be >= MIN_SPEEDUP
    faster than scanning, views must actually serve hits (including at
    least one lattice roll-up), and append maintenance must fold exactly
    the delta with no full rebuilds."""
    refresh = check["refresh"]
    return (check["speedup"] >= check["required_speedup"]
            and check["hits"] > 0
            and check["rollup_hits"] > 0
            and refresh["refreshes"] > 0
            and refresh["proportional"]
            and refresh["rebuilds"] == 0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--facts", type=int, default=1_000_000,
                        help="fact rows (the gate requires >= 1M)")
    args = parser.parse_args(argv)

    schema = build_scale(num_facts=args.facts, seed=7)
    benchmarks, check = compare(schema, args.repeats)
    for name in sorted(benchmarks):
        entry = benchmarks[name]
        print(f"{name}: median {entry['median_s']:.4f} s "
              f"(min {entry['min_s']:.4f} s)")
    refresh = check["refresh"]
    print(f"speedup: {check['speedup']:.2f}x over direct scans at "
          f"{check['fact_rows']} rows (required "
          f"{check['required_speedup']:.1f}x); {check['views']} views, "
          f"{check['hits']} hits ({check['rollup_hits']} roll-ups); "
          f"append folded {refresh['refreshed_rows']} rows over "
          f"{refresh['refreshes']} refreshes for a "
          f"{refresh['delta_rows']}-row delta, "
          f"{refresh['rebuilds']} rebuilds")
    if not passes(check):
        print("MATERIALIZATION CHECK FAILED", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
