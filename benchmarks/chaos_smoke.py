"""Chaos-mode smoke run: every injected fault must end cleanly.

Builds a small AdventureWorks warehouse, wraps the sqlite backend in a
seeded :class:`FaultInjectingBackend` (configurable error rate) behind
the :class:`ResilientBackend` retry/failover ladder, and runs the
benchmark keyword workload end to end under per-query budgets.  The run
*proves* the resilience contract: every query must end in a success, a
retried success, a failover success, or a clean partial result with
populated diagnostics — never a hang or an unhandled exception.

A final deadline probe runs the largest benchmark query under a 50 ms
deadline and asserts the partial result lands within 250 ms.

CI runs this once per seed and uploads the JSON counter dump — plus a
Chrome ``trace_event`` timeline of the whole run (retry attempts and
failovers show up as error-tagged spans) — as artifacts::

    PYTHONPATH=src python benchmarks/chaos_smoke.py \
        --seeds 1,2,3 --error-rate 0.3 --out chaos.json \
        --trace-out chaos_trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import KdapSession
from repro.datasets import AW_ONLINE_QUERIES, build_aw_online
from repro.obs import Tracer, tracing_scope
from repro.plan import InMemoryBackend, SqliteBackend
from repro.resilience import (
    Budget,
    FaultInjectingBackend,
    ResilientBackend,
    RetryPolicy,
    budget_scope,
)

#: Broadest query of the benchmark workload (largest subspace): the
#: deadline probe has to cut real work short, not finish early.
LARGEST_QUERY = "Bikes"

OUTCOMES = ("success", "retried_success", "failover_success", "partial")


def classify(result, resilience, retries_before: int,
             failovers_before: int) -> str:
    """Which clean ending a query reached."""
    if result is not None and result.is_partial:
        return "partial"
    if resilience.failovers > failovers_before:
        return "failover_success"
    if resilience.retries > retries_before:
        return "retried_success"
    return "success"


def run_seed(schema, queries, seed: int, error_rate: float,
             deadline_ms: float) -> dict:
    """One chaos pass: the whole workload against a faulty backend."""
    faulty = FaultInjectingBackend(SqliteBackend(schema),
                                   error_rate=error_rate, seed=seed)
    backend = ResilientBackend(
        faulty,
        fallback=lambda: InMemoryBackend(schema),
        policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
    )
    outcomes = {name: 0 for name in OUTCOMES}
    failures: list[dict] = []
    with KdapSession(schema, backend=backend) as session:
        for query in queries:
            budget = Budget(deadline_ms=deadline_ms)
            retries = backend.resilience.retries
            failovers = backend.resilience.failovers
            try:
                with budget_scope(budget):
                    ranked = session.differentiate(query.text, limit=1)
                    result = (session.explore(ranked[0].star_net)
                              if ranked else None)
                if result is not None and result.is_partial:
                    if not result.diagnostics.truncations:
                        raise AssertionError(
                            "partial result without diagnostics")
                outcomes[classify(result, backend.resilience, retries,
                                  failovers)] += 1
            except Exception as exc:  # noqa: BLE001 — the contract under test
                failures.append({"query": query.text,
                                 "error": f"{type(exc).__name__}: {exc}"})
        report = {
            "seed": seed,
            "error_rate": error_rate,
            "queries": len(queries),
            "outcomes": outcomes,
            "unhandled": failures,
            "faults_injected": faulty.faults_injected,
            "resilience": backend.resilience.as_dict(),
            "plan_cache": {
                "hits": session.engine.cache_stats.hits,
                "misses": session.engine.cache_stats.misses,
            },
        }
    return report


def deadline_probe(schema, deadline_ms: float = 50.0,
                   wall_limit_ms: float = 250.0) -> dict:
    """The largest benchmark query under a hard deadline must come back
    as a (partial or complete) result well within the wall limit."""
    with KdapSession(schema) as session:
        ranked = session.differentiate(LARGEST_QUERY, limit=1)
        if not ranked:
            raise SystemExit(f"no interpretation for {LARGEST_QUERY!r}")
        started = time.perf_counter()
        result = session.explore(ranked[0].star_net,
                                 budget=Budget(deadline_ms=deadline_ms))
        elapsed_ms = (time.perf_counter() - started) * 1000.0
    return {
        "query": LARGEST_QUERY,
        "deadline_ms": deadline_ms,
        "elapsed_ms": round(elapsed_ms, 2),
        "wall_limit_ms": wall_limit_ms,
        "partial": result.is_partial,
        "truncations": [str(t) for t in
                        (result.diagnostics.truncations
                         if result.diagnostics else ())],
        "within_limit": elapsed_ms < wall_limit_ms,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", default="1,2,3",
                        help="comma-separated fault-schedule seeds")
    parser.add_argument("--error-rate", type=float, default=0.3)
    parser.add_argument("--facts", type=int, default=8000)
    parser.add_argument("--queries", type=int, default=12,
                        help="workload size (first N benchmark queries)")
    parser.add_argument("--deadline-ms", type=float, default=2000.0,
                        help="per-query budget during the chaos pass")
    parser.add_argument("--out", help="write the JSON dump here "
                                      "(default: stdout)")
    parser.add_argument("--trace-out",
                        help="write a Chrome trace_event timeline of "
                             "the chaos passes here (chrome://tracing)")
    args = parser.parse_args(argv)

    schema = build_aw_online(num_facts=args.facts, seed=42)
    queries = AW_ONLINE_QUERIES[:args.queries]
    seeds = [int(s) for s in args.seeds.split(",") if s]

    tracer = Tracer() if args.trace_out else None
    with tracing_scope(tracer):
        runs = [run_seed(schema, queries, seed, args.error_rate,
                         args.deadline_ms)
                for seed in seeds]
        probe = deadline_probe(schema)
    if tracer is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(tracer.to_chrome_trace(), handle)
            handle.write("\n")
        print(f"wrote {args.trace_out} "
              f"({sum(1 for _ in tracer.spans())} spans)")
    report = {"runs": runs, "deadline_probe": probe}

    payload = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.out}")
    else:
        print(payload)

    failed = False
    for run in runs:
        if run["unhandled"]:
            print(f"seed {run['seed']}: unhandled exceptions: "
                  f"{run['unhandled']}", file=sys.stderr)
            failed = True
        ended = sum(run["outcomes"].values())
        if ended != run["queries"]:
            print(f"seed {run['seed']}: {run['queries'] - ended} queries "
                  "did not end in a clean outcome", file=sys.stderr)
            failed = True
    if not probe["within_limit"]:
        print(f"deadline probe took {probe['elapsed_ms']} ms "
              f"(limit {probe['wall_limit_ms']} ms)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
