"""Service concurrency benchmark: latency, throughput, shed behaviour.

Drives a live :class:`repro.service.KdapService` over real sockets with
N client threads issuing a mixed template workload (differentiate /
explore / explain), in three scenarios:

* **steady** — a provisioned server (4 workers, deep queue).  Reports
  per-request p50/p95, throughput, and the shed rate, which must stay
  essentially zero: a healthy server under its rated load answers
  everything.
* **overload** — a deliberately starved server (1 worker, queue depth
  2) under a thundering herd.  The gate is *behavioural*: overload must
  surface as fast 429s (shed > 0) with **zero** 5xx responses and zero
  hung clients — the failure mode this PR exists to prevent.
* **chaos** — injected backend faults (seeded, per-worker schedules)
  behind the retry/failover ladder.  Every response must stay
  well-formed while the resilience counters prove the faults actually
  happened.

``compare(schema, queries)`` returns ``(benchmarks, check)`` in the
``run_all.py`` convention; the module also runs standalone::

    PYTHONPATH=src python benchmarks/bench_service_concurrency.py \
        --statz-out statz.json --trace-dir traces
"""

from __future__ import annotations

import argparse
import json
import threading
import time
import urllib.error
import urllib.request

from repro.datasets import build_aw_online
from repro.obs.metrics import runs_summary
from repro.service import KdapService, ServiceConfig
from repro.textindex.index import AttributeTextIndex

#: Steady-state acceptance thresholds (smoke scale, CI hardware).
MAX_STEADY_SHED_RATE = 0.05
MAX_STEADY_P95_S = 5.0

DEFAULT_QUERIES = ("California Mountain Bikes", "Road Bikes", "Sydney")


def _templates(queries):
    """The mixed request workload, cycled per client."""
    templates = []
    for query in queries:
        templates.append(("/v1/differentiate",
                          {"query": query, "limit": 5}))
        templates.append(("/v1/explore", {"query": query, "pick": 1}))
    templates.append(("/v1/explain", {"query": queries[0]}))
    return templates


def _post(port: int, path: str, payload: dict,
          timeout: float = 120.0) -> tuple[int, dict]:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _get(port: int, path: str) -> dict:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=30.0) as resp:
        return json.loads(resp.read())


def _drive(port: int, clients: int, requests_each: int, queries
           ) -> tuple[list[tuple[int, float]], float, list[str]]:
    """Fire the workload; returns (per-request (status, seconds),
    wall seconds, client-level errors)."""
    templates = _templates(queries)
    results: list[tuple[int, float]] = []
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client(index: int) -> None:
        try:
            barrier.wait(timeout=30.0)
            for n in range(requests_each):
                path, payload = templates[(index + n) % len(templates)]
                started = time.perf_counter()
                status, _body = _post(port, path, payload)
                elapsed = time.perf_counter() - started
                with lock:
                    results.append((status, elapsed))
        except Exception as exc:  # noqa: BLE001 - reported as a failure
            with lock:
                errors.append(f"client {index}: {exc!r}")

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300.0)
    wall_s = time.perf_counter() - started
    hung = [t for t in threads if t.is_alive()]
    if hung:
        errors.append(f"{len(hung)} client thread(s) hung")
    return results, wall_s, errors


def _scenario_entry(results, wall_s, errors) -> dict:
    statuses = [status for status, _ in results]
    latencies = [seconds for _, seconds in results] or [0.0]
    total = len(results)
    shed = statuses.count(429)
    answered = [s for status, s in results if status != 429]
    return {
        "requests": total,
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(total / wall_s, 2) if wall_s else 0.0,
        "shed": shed,
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "errors_5xx": sum(1 for s in statuses if s >= 500),
        "client_errors": errors,
        "status_counts": {str(s): statuses.count(s)
                          for s in sorted(set(statuses))},
        **runs_summary(answered or latencies, "service"),
    }


def compare(schema, queries=DEFAULT_QUERIES, trace_dir: str | None = None
            ) -> tuple[dict, dict]:
    """Run the three scenarios; ``(benchmarks, check)`` for run_all."""
    index = AttributeTextIndex()
    index.index_database(schema.database, schema.searchable)
    benchmarks: dict[str, dict] = {}

    # -- steady: provisioned server, rated load -------------------------
    config = ServiceConfig(workers=4, queue_depth=32,
                           enqueue_deadline_ms=60_000.0,
                           trace_dir=trace_dir)
    with KdapService(schema, config, index=index) as service:
        results, wall_s, errors = _drive(service.port, clients=4,
                                         requests_each=6, queries=queries)
        benchmarks["service_steady"] = _scenario_entry(results, wall_s,
                                                       errors)
        steady_statz = service.statz()
        steady_metricz = service.metricz()

    # -- overload: starved server, thundering herd ----------------------
    config = ServiceConfig(workers=1, queue_depth=2,
                           enqueue_deadline_ms=500.0)
    with KdapService(schema, config, index=index) as service:
        results, wall_s, errors = _drive(service.port, clients=12,
                                         requests_each=4, queries=queries)
        benchmarks["service_overload"] = _scenario_entry(results, wall_s,
                                                         errors)

    # -- chaos: injected faults behind retry/failover -------------------
    config = ServiceConfig(workers=2, queue_depth=16,
                           enqueue_deadline_ms=60_000.0,
                           backend="memory", chaos_error_rate=0.3,
                           chaos_seed=29)
    with KdapService(schema, config, index=index) as service:
        results, wall_s, errors = _drive(service.port, clients=2,
                                         requests_each=4, queries=queries)
        benchmarks["service_chaos"] = _scenario_entry(results, wall_s,
                                                      errors)
        chaos_statz = service.statz()

    steady = benchmarks["service_steady"]
    overload = benchmarks["service_overload"]
    chaos = benchmarks["service_chaos"]
    chaos_resilience = chaos_statz["rollup"]["resilience"]
    check = {
        "steady": {
            "p50_s": steady["p50_s"], "p95_s": steady["p95_s"],
            "throughput_rps": steady["throughput_rps"],
            "shed_rate": steady["shed_rate"],
            "errors_5xx": steady["errors_5xx"],
        },
        "overload": {
            "shed": overload["shed"],
            "errors_5xx": overload["errors_5xx"],
            "hung_clients": len(overload["client_errors"]),
        },
        "chaos": {
            "resilience": chaos_resilience,
            "errors_5xx": chaos["errors_5xx"],
        },
        "statz": {"steady": steady_statz, "chaos": chaos_statz},
        "metricz": steady_metricz,
        "max_steady_shed_rate": MAX_STEADY_SHED_RATE,
        "max_steady_p95_s": MAX_STEADY_P95_S,
    }
    return benchmarks, check


def passes(check: dict) -> bool:
    """The five-part acceptance gate over ``compare``'s check dict."""
    steady, overload, chaos = (check["steady"], check["overload"],
                               check["chaos"])
    return (steady["shed_rate"] <= check["max_steady_shed_rate"]
            and steady["p95_s"] <= check["max_steady_p95_s"]
            and steady["errors_5xx"] == 0
            and overload["shed"] > 0
            and overload["errors_5xx"] == 0
            and overload["hung_clients"] == 0
            and chaos["resilience"]["transient_errors"] > 0
            and chaos["errors_5xx"] == 0)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--facts", type=int, default=8000)
    parser.add_argument("--statz-out", default=None,
                        help="write the steady + chaos /v1/statz "
                             "snapshots as JSON (CI artifact)")
    parser.add_argument("--metricz-out", default=None,
                        help="write the steady scenario's /v1/metricz "
                             "Prometheus exposition (CI artifact)")
    parser.add_argument("--trace-dir", default=None,
                        help="per-request Chrome traces for the steady "
                             "scenario (CI artifact)")
    args = parser.parse_args(argv)
    schema = build_aw_online(num_customers=300, num_facts=args.facts,
                             seed=42)
    benchmarks, check = compare(schema, trace_dir=args.trace_dir)
    for name in ("service_steady", "service_overload", "service_chaos"):
        entry = benchmarks[name]
        print(f"{name}: {entry['requests']} requests in "
              f"{entry['wall_s']:.2f}s ({entry['throughput_rps']:.1f} "
              f"req/s), p50 {entry['p50_s']:.3f}s p95 "
              f"{entry['p95_s']:.3f}s, shed {entry['shed']}, "
              f"5xx {entry['errors_5xx']}")
    print(f"chaos resilience: {check['chaos']['resilience']}")
    if args.statz_out:
        with open(args.statz_out, "w", encoding="utf-8") as fh:
            json.dump(check["statz"], fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.statz_out}")
    if args.metricz_out:
        with open(args.metricz_out, "w", encoding="utf-8") as fh:
            fh.write(check["metricz"])
        print(f"wrote {args.metricz_out}")
    ok = passes(check)
    print("service concurrency gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
