"""Figure 7: numerical partitioning quality vs. annealing iterations.

Three sub-figures, exactly the paper's scenarios:

  (a) query "France Clothing",    attribute YearlyIncome       (AW_ONLINE)
  (b) query "France Accessories", attribute YearlyIncome       (AW_ONLINE)
  (c) query "British Columbia",   attribute NumberOfEmployees  (AW_RESELLER)

each at target interval counts K in {5, 6, 7}.

Shape check vs the paper: the best-so-far error falls steeply over the
iterations; by ~100 iterations the merged partition is almost as good as
the basic-interval partition; smaller K tends to converge more slowly.
"""


from repro.evalkit import evaluate_annealing, render_series

CHECKPOINTS = [1, 10, 25, 50, 100, 200, 500]


def _run(benchmark, session, query, table, column):
    scenario = benchmark.pedantic(
        evaluate_annealing, args=(session, query, table, column),
        kwargs={"iterations": 500}, rounds=1, iterations=1,
    )
    series = {
        curve.label: [curve.error_at(i) for i in CHECKPOINTS]
        for curve in scenario.curves
    }
    print(f"\n=== Figure 7: query={query!r}, attribute="
          f"{scenario.attribute} ({scenario.basic_intervals} basic "
          "intervals) ===")
    print(render_series(CHECKPOINTS, series, x_label="iteration"))

    for curve in scenario.curves:
        assert curve.errors[-1] <= curve.errors[0] + 1e-9
        assert curve.error_at(100) <= max(curve.errors[0], 10.0)
    return scenario


def test_figure7a_france_clothing(benchmark, online_session_full):
    _run(benchmark, online_session_full, "France Clothing",
         "DimCustomer", "YearlyIncome")


def test_figure7b_france_accessories(benchmark, online_session_full):
    _run(benchmark, online_session_full, "France Accessories",
         "DimCustomer", "YearlyIncome")


def test_figure7c_british_columbia(benchmark, reseller_session_full):
    _run(benchmark, reseller_session_full, "British Columbia",
         "DimReseller", "NumberOfEmployees")
