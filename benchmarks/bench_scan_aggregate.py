"""Scan-filter-partition-aggregate: vectorized vs row-at-a-time.

The microbenchmark behind the vectorized-execution acceptance gate.  One
workload — scan the fact table, keep rows passing a conjunctive
predicate, partition by a dimension attribute, fold ``sum(revenue)`` per
group — is executed two ways over the same :class:`StarSchema`:

* **vectorized** — the real :class:`~repro.plan.backends.InMemoryBackend`
  (batch kernels, selection vectors, ``evaluate_batch``);
* **row-at-a-time** — a faithful local re-implementation of the seed
  interpreter (one ``Predicate.evaluate`` dispatch per row, per-row
  ``setdefault`` partitioning, per-row measure extraction), kept here so
  the baseline survives the interpreter's removal from the tree.

Both paths share warmed fact-aligned vectors and a memoised measure
vector (the seed memoised too), so the timed delta is execution strategy
only.  Timed runs are interleaved and the gate compares *minimum* runs,
exactly like the Table 2 fusion gate: the deterministic workload's best
case is its true cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_aggregate.py [--repeats N]
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.datasets import build_aw_online
from repro.obs.metrics import runs_summary
from repro.plan.backends import InMemoryBackend
from repro.plan.builders import attr_key, partition_plan
from repro.plan.nodes import Filter, GroupAggregate, Partition, Scan
from repro.relational.expressions import And, Between, Col, Compare, Const
from repro.relational.operators import AGGREGATES

MIN_SPEEDUP = 2.0
"""Acceptance floor: the vectorized backend must beat the seed
row-at-a-time interpreter by at least this factor on the scan-aggregate
workload (ISSUE acceptance criterion)."""


class RowAtATimeReference:
    """The seed ``InMemoryBackend`` execution loops, row by row.

    Deliberately *not* sharing code with the live backend: this class
    pins the pre-vectorization strategy (per-row ``Predicate.evaluate``
    dispatch, ``setdefault`` grouping, generator folds) as the
    comparison baseline.
    """

    def __init__(self, schema):
        self.schema = schema
        self._measure_vectors: dict[str, list] = {}

    def _rows(self, node) -> list[int]:
        if isinstance(node, Scan):
            table = self.schema.database.table(node.table)
            return list(range(len(table)))
        if isinstance(node, Filter):
            child_rows = self._rows(node.child)
            table = self.schema.database.table(node.child.table)
            node.predicate.validate(table)
            return [r for r in child_rows
                    if node.predicate.evaluate(table, r)]
        raise TypeError(f"unsupported node: {node!r}")

    def _measure_values(self, plan: GroupAggregate) -> list:
        key = plan.measure_sql
        cached = self._measure_vectors.get(key)
        if cached is not None:
            return cached
        fact = self.schema.database.table(self.schema.fact_table)
        values = [plan.measure_expr.evaluate(fact, rid)
                  for rid in range(len(fact))]
        self._measure_vectors[key] = values
        return values

    def execute(self, plan: GroupAggregate):
        child = plan.child
        keys = ()
        if isinstance(child, Partition):
            keys = child.keys
            child = child.child
        rows = self._rows(child)
        fn = AGGREGATES[plan.aggregate]
        measure = self._measure_values(plan)
        vector = self.schema.fact_vector(keys[0].path, keys[0].column)
        groups: dict = {}
        for r in rows:
            value = vector[r]
            if value is not None:
                groups.setdefault(value, []).append(r)
        return {
            value: fn(measure[r] for r in group_rows)
            for value, group_rows in groups.items()
        }


def build_workload(schema):
    """The shared logical plan: filtered fact scan, one-key partition,
    sum(revenue)."""
    predicate = And.of(
        Between(Col("UnitPrice"), 5.0, 2000.0),
        Compare(">", Col("Quantity"), Const(0)),
    )
    gb = schema.groupby_attribute("DimProduct", "Color")
    source = Filter(Scan(schema.fact_table), predicate=predicate)
    return partition_plan(source, (attr_key(gb),),
                          schema.measures["revenue"])


def compare(schema, repeats: int) -> tuple[dict, dict]:
    """Interleaved timings of both strategies on one workload.

    Returns ``(benchmarks, check)``: per-mode timing dicts in the
    ``run_all`` format plus the min-run speedup gate entry.
    """
    plan = build_workload(schema)
    executors = {
        "vectorized": InMemoryBackend(schema),
        "row_at_a_time": RowAtATimeReference(schema),
    }
    results = {}
    for mode, executor in executors.items():   # untimed warm-up: shared
        results[mode] = executor.execute(plan)  # vectors + measure memo
    assert results["vectorized"] == results["row_at_a_time"], \
        "strategies disagree on the workload result"
    assert results["vectorized"], "workload selected no groups"

    runs: dict[str, list[float]] = {mode: [] for mode in executors}
    for _ in range(repeats):
        for mode, executor in executors.items():
            started = time.perf_counter()
            executor.execute(plan)
            runs[mode].append(time.perf_counter() - started)

    fact_rows = len(schema.database.table(schema.fact_table))
    benchmarks = {}
    for mode in executors:
        benchmarks[f"scan_aggregate_{mode}"] = {
            "median_s": round(statistics.median(runs[mode]), 6),
            "min_s": round(min(runs[mode]), 6),
            "runs_s": [round(r, 6) for r in runs[mode]],
            **runs_summary(runs[mode]),
            "meta": {"mode": mode, "fact_rows": fact_rows,
                     "groups": len(results[mode])},
        }
    vec_min = min(runs["vectorized"])
    row_min = min(runs["row_at_a_time"])
    check = {
        "vectorized_min_s": round(vec_min, 6),
        "row_at_a_time_min_s": round(row_min, 6),
        "speedup": round(row_min / max(vec_min, 1e-9), 3),
        "required_speedup": MIN_SPEEDUP,
    }
    return benchmarks, check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced dataset size")
    args = parser.parse_args(argv)
    schema = (build_aw_online(num_customers=300, num_facts=8000, seed=42)
              if args.smoke else build_aw_online())
    benchmarks, check = compare(schema, args.repeats)
    for name, entry in benchmarks.items():
        print(f"  {name}: {entry['median_s']:.4f} s "
              f"(min {entry['min_s']:.4f} s)")
    print(f"speedup: {check['speedup']:.2f}x "
          f"(required {check['required_speedup']:.1f}x)")
    return 0 if check["speedup"] >= check["required_speedup"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
