"""One-shot benchmark suite with a committed JSON baseline.

Runs the paper-artifact workloads (Table 1, Table 2, Figures 4-7) plus
the engine primitives as plain wall-clock benchmarks — no pytest — and
writes per-benchmark medians to ``BENCH_kdap.json``.  The committed
baseline lets any later change diff its numbers against this PR's.

The run doubles as two acceptance gates, each exiting non-zero on
failure so CI catches a regression as a hard failure, not a silent
slowdown:

* **fusion** — the Table 2 facet workload is timed with partition fusion
  on and off, per backend; the fused path must not be slower;
* **vectorization** — the scan-aggregate microbenchmark
  (:mod:`bench_scan_aggregate`) compares the vectorized in-memory
  backend against the seed row-at-a-time interpreter; the vectorized
  path must win by at least 2x;
* **tracing overhead** — the same workload with the tracing layer
  disabled (:mod:`bench_tracing_overhead`) must stay within 3% of a
  pinned span-free reference, so observability never taxes production;
* **morsel scan** — the chunked, morsel-parallel scan-aggregate
  (:mod:`bench_morsel_scan`) must beat the pre-chunk plain-vector
  strategy by at least 2x on a million clustered fact rows, and the
  selective date-range scenario must skip at least one chunk via its
  zone maps.  This gate always runs at full scale (>= 1M rows), even
  under ``--smoke``: the acceptance criterion is defined there;
* **materialize** — the sub-cube tier (:mod:`bench_materialize`) must
  answer the categorical partition workload at least 2x faster than
  direct scanning on a million fact rows (with real view hits,
  including a lattice roll-up), and append maintenance must fold
  exactly the delta — no full rebuilds.  Like the morsel gate, always
  at full scale;
* **interpretation** — the staged matcher-chain front end
  (:mod:`bench_interpretation`) restricted to its value-only chain must
  stay within 1.25x of the pinned pre-refactor keyword front end on
  all-value queries, with asserted output parity;
* **service concurrency** — a live HTTP server under steady load,
  overload, and chaos (:mod:`bench_service_concurrency`): steady-state
  shed rate and p95 bounded, overload answered with 429s (never 5xx or
  hangs), injected faults absorbed by retry/failover;
* **telemetry overhead** — the always-on telemetry stack (event log,
  tail sampler, SLO tracker, runtime poller) against an identical
  ``telemetry=False`` deployment (:mod:`bench_telemetry_overhead`):
  paired floor-latency p95 within 5%, every errored request's trace
  persisted, healthy traffic held to the head-sampling cadence, and
  every persisted trace file complete JSON.

Every timed entry also reports ``p50_s`` / ``p95_s`` computed through
the observability histogram (:func:`repro.obs.metrics.runs_summary`),
so the committed baseline carries tail latency, not just medians.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --smoke --out BENCH_kdap.json
    PYTHONPATH=src python benchmarks/run_all.py --repeats 5   # full scale
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time

from repro.core import ExploreConfig, KdapSession, build_facets
from repro.datasets import (
    AW_ONLINE_QUERIES,
    build_aw_online,
    build_aw_reseller,
    build_scale,
)
from repro.evalkit import (
    evaluate_annealing,
    evaluate_buckets_online,
    evaluate_buckets_reseller,
    evaluate_ranking,
)
from repro.obs.metrics import runs_summary
from repro.plan import FusionStats, QueryEngine

from bench_interpretation import (
    MAX_RATIO as INTERPRETATION_MAX_RATIO,
    compare as compare_interpretation,
)
from bench_materialize import (
    MIN_SPEEDUP as MATERIALIZE_MIN_SPEEDUP,
    compare as compare_materialize,
    passes as materialize_passes,
)
from bench_morsel_scan import (
    MIN_SPEEDUP as MORSEL_MIN_SPEEDUP,
    compare as compare_morsel,
)
from bench_scan_aggregate import MIN_SPEEDUP, compare as compare_scan
from bench_service_concurrency import (
    compare as compare_service,
    passes as service_passes,
)
from bench_telemetry_overhead import (
    MAX_OVERHEAD as TELEMETRY_MAX_OVERHEAD,
    compare as compare_telemetry,
    passes as telemetry_passes,
)
from bench_tracing_overhead import MAX_OVERHEAD, compare as compare_tracing

QUERY = "California Mountain Bikes"

FACET_CONFIG = ExploreConfig(top_k_attributes=4, top_k_instances=4,
                             display_intervals=3)


def _timed(fn, repeats: int) -> dict:
    """Median wall-clock of ``fn`` over ``repeats`` runs (all recorded)."""
    runs = []
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        runs.append(time.perf_counter() - started)
    return {
        "median_s": round(statistics.median(runs), 6),
        "runs_s": [round(r, 6) for r in runs],
        **runs_summary(runs),
        "result": result,
    }


class Suite:
    def __init__(self, smoke: bool, repeats: int):
        self.smoke = smoke
        self.repeats = repeats
        self.benchmarks: dict[str, dict] = {}
        if smoke:
            self.online = build_aw_online(num_customers=300,
                                          num_facts=8000, seed=42)
            self.reseller = build_aw_reseller(num_resellers=120,
                                              num_employees=40,
                                              num_facts=8000, seed=43)
        else:
            self.online = build_aw_online()
            self.reseller = build_aw_reseller()
        self.session = KdapSession(self.online)
        self.reseller_session = KdapSession(self.reseller)

    def record(self, name: str, fn, repeats: int | None = None,
               meta: dict | None = None):
        timing = _timed(fn, repeats or self.repeats)
        result = timing.pop("result")
        if meta:
            timing["meta"] = meta
        self.benchmarks[name] = timing
        print(f"  {name}: {timing['median_s']:.4f} s "
              f"(median of {len(timing['runs_s'])})")
        return result

    # ------------------------------------------------------------------
    # paper artifacts
    # ------------------------------------------------------------------
    def bench_table1(self):
        ranked = self.record(
            "table1_differentiate",
            lambda: self.session.differentiate(QUERY, limit=10))
        assert ranked, "table1 query must have interpretations"
        self.net = ranked[0].star_net

    def bench_table2(self) -> dict:
        """The facet workload, fused vs per-attribute, per backend.

        Every timed run starts from a cold plan cache so the comparison
        measures execution strategy, not memoisation.  Both modes get one
        untimed warm-up (priming shared schema vectors / the sqlite
        mirror) and the timed runs are interleaved fused/unfused so
        machine drift cannot bias either side.  The gate compares the
        *minimum* run of each mode (the deterministic workload's best
        case is its true cost; medians still carry scheduler noise) with
        a 3% guard band, because on the in-memory backend the facet
        wall-clock is dominated by numerical bucketing the fused path
        does not touch — the fusion win there is a few percent
        end-to-end, while a genuine fusion regression shows up far
        above the band.
        """
        check: dict[str, dict] = {}
        repeats = max(self.repeats, 7)
        for backend in ("memory", "sqlite"):
            engines = {
                fuse: QueryEngine(self.online, backend=backend,
                                  fuse_partitions=fuse)
                for fuse in (True, False)
            }

            def run(engine):
                engine.cache.clear()
                return build_facets(self.online, self.net,
                                    config=FACET_CONFIG, engine=engine)

            for engine in engines.values():
                run(engine)
            engines[True].fusion = FusionStats()
            runs: dict[bool, list[float]] = {True: [], False: []}
            for _ in range(repeats):
                for fuse in (True, False):
                    started = time.perf_counter()
                    run(engines[fuse])
                    runs[fuse].append(time.perf_counter() - started)
            for fuse, mode in ((True, "fused"), (False, "unfused")):
                name = f"table2_facets_{mode}_{backend}"
                self.benchmarks[name] = {
                    "median_s": round(statistics.median(runs[fuse]), 6),
                    "min_s": round(min(runs[fuse]), 6),
                    "runs_s": [round(r, 6) for r in runs[fuse]],
                    **runs_summary(runs[fuse]),
                    "meta": {"backend": backend, "fused": fuse},
                }
                print(f"  {name}: "
                      f"{self.benchmarks[name]['median_s']:.4f} s "
                      f"(median of {repeats}, interleaved)")
            stats = engines[True].fusion
            fusion = {   # accumulated over the timed runs: per-run share
                "fused_queries": stats.fused_queries // repeats,
                "attributes_fused": stats.attributes_fused // repeats,
                "scans_saved": stats.scans_saved // repeats,
            }
            for engine in engines.values():
                engine.close()
            fused = self.benchmarks[f"table2_facets_fused_{backend}"]
            unfused = self.benchmarks[f"table2_facets_unfused_{backend}"]
            check[backend] = {
                "fused_s": fused["median_s"],
                "unfused_s": unfused["median_s"],
                "fused_min_s": fused["min_s"],
                "unfused_min_s": unfused["min_s"],
                "speedup": round(unfused["median_s"]
                                 / max(fused["median_s"], 1e-9), 3),
                "fusion": fusion,
            }
        return check

    def bench_figures(self):
        queries = AW_ONLINE_QUERIES[:8] if self.smoke else AW_ONLINE_QUERIES
        self.record(
            "figure4_ranking",
            lambda: evaluate_ranking(self.session, queries),
            repeats=1, meta={"queries": len(queries)})
        buckets = [5, 10, 20] if self.smoke else [5, 20, 40, 80]
        self.record(
            "figure5_buckets_online",
            lambda: evaluate_buckets_online(self.online,
                                            bucket_counts=buckets),
            repeats=1, meta={"bucket_counts": buckets})
        self.record(
            "figure6_buckets_reseller",
            lambda: evaluate_buckets_reseller(self.reseller,
                                              bucket_counts=buckets),
            repeats=1, meta={"bucket_counts": buckets})
        iterations = 100 if self.smoke else 500
        self.record(
            "figure7_annealing",
            lambda: evaluate_annealing(self.session, "France Clothing",
                                       "DimCustomer", "YearlyIncome",
                                       iterations=iterations),
            repeats=1, meta={"iterations": iterations})

    def bench_scan_aggregate(self) -> dict:
        """Vectorized vs row-at-a-time scan-aggregate (interleaved runs,
        min-run gate — see :mod:`bench_scan_aggregate`)."""
        benchmarks, check = compare_scan(self.online,
                                         max(self.repeats, 7))
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['median_s']:.4f} s "
                  f"(median of {len(entry['runs_s'])}, interleaved)")
        return check

    def bench_interpretation(self) -> dict:
        """Staged value-only matcher chain vs the pinned legacy keyword
        front end (interleaved runs, min-run ratio gate with asserted
        output parity — see :mod:`bench_interpretation`)."""
        benchmarks, check = compare_interpretation(self.online,
                                                   max(self.repeats, 7))
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['median_s']:.4f} s "
                  f"(median of {len(entry['runs_s'])}, interleaved)")
        return check

    def bench_morsel_scan(self) -> dict:
        """Chunked + morsel-parallel scan-aggregate vs the pre-chunk
        plain-vector strategy, plus the zone-map skip scenario — always
        at one million clustered fact rows (see :mod:`bench_morsel_scan`
        for the pinned reference and the interleaved min-run protocol).
        """
        schema = build_scale(num_facts=1_000_000, seed=7)
        benchmarks, check = compare_morsel(schema, max(self.repeats, 3))
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['median_s']:.4f} s "
                  f"(min {entry['min_s']:.4f} s, interleaved)")
        return check

    def bench_materialize(self) -> dict:
        """Materialized sub-cube tier vs direct scanning, plus the
        incremental append-refresh scenario — always at one million
        fact rows (see :mod:`bench_materialize`; builds its own
        warehouse because the append scenario mutates it)."""
        schema = build_scale(num_facts=1_000_000, seed=7)
        benchmarks, check = compare_materialize(schema,
                                                max(self.repeats, 3))
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['median_s']:.4f} s "
                  f"(min {entry['min_s']:.4f} s, interleaved)")
        return check

    def bench_service_concurrency(self) -> dict:
        """Concurrent service scenarios: steady load, overload shedding,
        and chaos-mode fault absorption (see
        :mod:`bench_service_concurrency` for the behavioural gate)."""
        benchmarks, check = compare_service(self.online)
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['requests']} requests, "
                  f"{entry['throughput_rps']:.1f} req/s, "
                  f"p95 {entry['p95_s']:.3f} s, shed {entry['shed']}, "
                  f"5xx {entry['errors_5xx']}")
        # the full statz/metricz snapshots are CI artifacts (the
        # standalone runner's --statz-out / --metricz-out), not
        # baseline material
        check.pop("statz", None)
        check.pop("metricz", None)
        return check

    def bench_telemetry(self) -> dict:
        """Always-on telemetry vs an identical bare deployment, paired
        floor-latency protocol plus the tail-sampling audit (see
        :mod:`bench_telemetry_overhead` for the gate)."""
        benchmarks, check = compare_telemetry(self.online)
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['requests']} requests, floor p95 "
                  f"{entry['p95_s'] * 1000:.2f} ms, workload sum "
                  f"{entry['sum_s'] * 1000:.2f} ms")
        return check

    def bench_tracing_overhead(self) -> dict:
        """Disabled-tracer overhead vs the pinned span-free reference
        (interleaved runs, min-run gate — see
        :mod:`bench_tracing_overhead`)."""
        benchmarks, check = compare_tracing(self.online,
                                            max(self.repeats, 7))
        self.benchmarks.update(benchmarks)
        for name in sorted(benchmarks):
            entry = benchmarks[name]
            print(f"  {name}: {entry['median_s']:.4f} s "
                  f"(median of {len(entry['runs_s'])}, interleaved)")
        return check

    # ------------------------------------------------------------------
    # engine primitives
    # ------------------------------------------------------------------
    def bench_primitives(self):
        session = self.session
        schema = self.online
        self.record("primitive_text_probe",
                    lambda: session.index.search("California", 30))
        self.record("primitive_star_join",
                    lambda: self.net.evaluate(schema))
        subspace = self.net.evaluate(schema)
        gb = schema.groupby_attribute("DimDate", "MonthName")
        gbs = [schema.groupby_attribute("DimDate", "MonthName"),
               schema.groupby_attribute("DimGeography", "CountryRegionName"),
               schema.groupby_attribute("DimProduct", "Color")]
        schema.groupby_vector(gb)
        self.record(
            "primitive_partition_aggregation",
            lambda: subspace.partition_aggregates(gb, "revenue"))
        self.record(
            "primitive_multi_partition_aggregation",
            lambda: subspace.multi_partition_aggregates(gbs, "revenue"),
            meta={"group_bys": len(gbs)})

    def close(self):
        self.session.close()
        self.reseller_session.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced dataset sizes and workloads (CI)")
    parser.add_argument("--out", default="BENCH_kdap.json",
                        help="output JSON path")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per benchmark "
                             "(default: 3 smoke, 5 full)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 5)

    print(f"kdap benchmark suite ({'smoke' if args.smoke else 'full'} "
          f"scale, {repeats} repeats)")
    suite = Suite(args.smoke, repeats)
    try:
        suite.bench_table1()
        fusion_check = suite.bench_table2()
        scan_check = suite.bench_scan_aggregate()
        tracing_check = suite.bench_tracing_overhead()
        interpretation_check = suite.bench_interpretation()
        morsel_check = suite.bench_morsel_scan()
        materialize_check = suite.bench_materialize()
        service_check = suite.bench_service_concurrency()
        telemetry_check = suite.bench_telemetry()
        suite.bench_figures()
        suite.bench_primitives()
    finally:
        suite.close()

    # best-run comparison with a 3% noise band: a real fusion regression
    # (fused path degenerating to worse-than-N-singles) lands far outside
    fusion_ok = all(entry["fused_min_s"] <= entry["unfused_min_s"] * 1.03
                    for entry in fusion_check.values())
    scan_ok = scan_check["speedup"] >= MIN_SPEEDUP
    tracing_ok = tracing_check["overhead"] <= MAX_OVERHEAD
    interpretation_ok = (interpretation_check["ratio"]
                         <= INTERPRETATION_MAX_RATIO)
    morsel_ok = (morsel_check["speedup"] >= MORSEL_MIN_SPEEDUP
                 and morsel_check["zone_skip"]["chunks_skipped"] > 0)
    materialize_ok = materialize_passes(materialize_check)
    service_ok = service_passes(service_check)
    telemetry_ok = telemetry_passes(telemetry_check)
    report = {
        "suite": "kdap",
        "smoke": args.smoke,
        "repeats": repeats,
        "python": platform.python_version(),
        "benchmarks": suite.benchmarks,
        "fusion_check": {**fusion_check, "pass": fusion_ok},
        "scan_check": {**scan_check, "pass": scan_ok},
        "tracing_check": {**tracing_check, "pass": tracing_ok},
        "interpretation_check": {**interpretation_check,
                                 "pass": interpretation_ok},
        "morsel_check": {**morsel_check, "pass": morsel_ok},
        "materialize_check": {**materialize_check, "pass": materialize_ok},
        "service_check": {**service_check, "pass": service_ok},
        "telemetry_check": {**telemetry_check, "pass": telemetry_ok},
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    for backend, entry in fusion_check.items():
        print(f"fusion[{backend}]: fused {entry['fused_s']:.4f}s vs "
              f"unfused {entry['unfused_s']:.4f}s "
              f"({entry['speedup']:.2f}x, "
              f"{entry['fusion']['scans_saved']} scans saved)")
    print(f"vectorized scan-aggregate: {scan_check['speedup']:.2f}x over "
          f"row-at-a-time (required {MIN_SPEEDUP:.1f}x)")
    print(f"disabled-tracer overhead: "
          f"{tracing_check['overhead'] * 100:.2f}% "
          f"(ceiling {MAX_OVERHEAD * 100:.0f}%)")
    print(f"staged interpretation: {interpretation_check['ratio']:.2f}x "
          f"the legacy front end over "
          f"{interpretation_check['queries']} queries "
          f"(ceiling {INTERPRETATION_MAX_RATIO:.2f}x)")
    zone = morsel_check["zone_skip"]
    print(f"morsel scan-aggregate: {morsel_check['speedup']:.2f}x over "
          f"the pre-chunk strategy at {morsel_check['fact_rows']} rows "
          f"(required {MORSEL_MIN_SPEEDUP:.1f}x), zone maps skipped "
          f"{zone['chunks_skipped']} of "
          f"{zone['chunks_skipped'] + zone['chunks_scanned']} chunks")
    refresh = materialize_check["refresh"]
    print(f"materialized tier: {materialize_check['speedup']:.2f}x over "
          f"direct scans at {materialize_check['fact_rows']} rows "
          f"(required {MATERIALIZE_MIN_SPEEDUP:.1f}x), "
          f"{materialize_check['views']} views / "
          f"{materialize_check['hits']} hits "
          f"({materialize_check['rollup_hits']} roll-ups); append folded "
          f"{refresh['refreshed_rows']} rows over "
          f"{refresh['refreshes']} refreshes for a "
          f"{refresh['delta_rows']}-row delta, "
          f"{refresh['rebuilds']} rebuilds")
    steady = service_check["steady"]
    print(f"service concurrency: steady p95 {steady['p95_s']:.3f}s at "
          f"{steady['throughput_rps']:.1f} req/s (shed rate "
          f"{steady['shed_rate']:.2%}), overload shed "
          f"{service_check['overload']['shed']} with "
          f"{service_check['overload']['errors_5xx']} 5xx, chaos "
          f"absorbed {service_check['chaos']['resilience']['transient_errors']} "
          "faults")
    sampling = telemetry_check["sampling"]
    print(f"telemetry overhead: {telemetry_check['overhead'] * 100:+.2f}% "
          f"floor p95 (ceiling {TELEMETRY_MAX_OVERHEAD * 100:.0f}%), "
          f"sampling persisted "
          f"{sampling['sampling']['persisted_total']} of "
          f"{sampling['sampling']['considered']} traces "
          f"({sampling['sampling']['persisted']['error']} errored, all "
          "captured)")
    if not fusion_ok:
        print("FUSION CHECK FAILED: fused facet workload slower than "
              "per-attribute path", file=sys.stderr)
        return 1
    if not scan_ok:
        print("VECTORIZATION CHECK FAILED: vectorized scan-aggregate "
              f"below {MIN_SPEEDUP:.1f}x over the row-at-a-time "
              "interpreter", file=sys.stderr)
        return 1
    if not tracing_ok:
        print("TRACING OVERHEAD CHECK FAILED: disabled tracer costs "
              f"more than {MAX_OVERHEAD * 100:.0f}% on the "
              "scan-aggregate hot path", file=sys.stderr)
        return 1
    if not interpretation_ok:
        print("INTERPRETATION CHECK FAILED: staged value-only chain "
              f"more than {INTERPRETATION_MAX_RATIO:.2f}x the legacy "
              "keyword front end", file=sys.stderr)
        return 1
    if not morsel_ok:
        print("MORSEL SCAN CHECK FAILED: chunked morsel-parallel "
              f"scan-aggregate below {MORSEL_MIN_SPEEDUP:.1f}x over the "
              "pre-chunk strategy, or zone maps skipped no chunks",
              file=sys.stderr)
        return 1
    if not materialize_ok:
        print("MATERIALIZATION CHECK FAILED: the sub-cube tier fell "
              f"below {MATERIALIZE_MIN_SPEEDUP:.1f}x over direct scans, "
              "served no (roll-up) hits, or append maintenance did not "
              "fold exactly the delta", file=sys.stderr)
        return 1
    if not service_ok:
        print("SERVICE CONCURRENCY CHECK FAILED: the server shed under "
              "steady load, answered 5xx/hung under overload, or chaos "
              "faults escaped the retry/failover ladder",
              file=sys.stderr)
        return 1
    if not telemetry_ok:
        print("TELEMETRY CHECK FAILED: the always-on telemetry stack "
              f"costs more than {TELEMETRY_MAX_OVERHEAD * 100:.0f}% at "
              "the workload p95, tail sampling missed an errored trace "
              "or over-sampled healthy traffic, or a persisted trace "
              "was not complete JSON", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
