"""Ablation: typo robustness with and without fuzzy matching.

Each Table 3 query gets its longest keyword misspelled by one edit; the
workload then runs with the paper's matching (stemming + prefix) and with
the fuzzy extension (Levenshtein <= 1) added.  Expected shape: the exact
configuration loses most corrupted queries outright; fuzzy matching
recovers a large fraction at a modest latency cost (also measured).
"""

from repro.datasets import AW_ONLINE_QUERIES
from repro.evalkit import render_table
from repro.evalkit.robustness_eval import evaluate_robustness


def test_typo_robustness(benchmark, online_session_full):
    result = benchmark.pedantic(
        evaluate_robustness, args=(online_session_full,
                                   AW_ONLINE_QUERIES),
        rounds=1, iterations=1,
    )

    rows = [
        (f"top-{x}",
         f"{result.satisfied(False, x):.2f}",
         f"{result.satisfied(True, x):.2f}")
        for x in (1, 3, 5, 10)
    ]
    print("\n=== Typo robustness: % corrupted queries satisfied ===")
    print(render_table(("rank", "stemming+prefix", "+fuzzy (<=1 edit)"),
                       rows))
    examples = [q.text for q in result.corrupted[:6]]
    print("corrupted examples: " + "; ".join(examples))

    assert result.satisfied(True, 5) > result.satisfied(False, 5)
    assert result.satisfied(True, 5) >= 0.4
