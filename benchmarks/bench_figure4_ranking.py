"""Figure 4: evaluation of the four star-net ranking methods.

Runs the 50 Table 3 queries through candidate generation, ranks them
under all four methods, and prints the top-x satisfaction curves the
paper plots.  Also replicates the §6.3 AW_RESELLER run.

Shape check vs the paper:

* standard reaches >=80% at Top-1 and ~100% by Top-5 (paper: 94%/100%);
* no-size-norm lands within a few points of standard ("did surprisingly
  well", 88% in the paper);
* no-number-norm and the baseline trail by a wide margin.
"""

from repro.core import RankingMethod
from repro.datasets import AW_ONLINE_QUERIES, AW_RESELLER_QUERIES
from repro.evalkit import ALL_METHODS, evaluate_ranking, render_series


def _print_curves(evaluation, title, max_rank=10):
    ranks = list(range(1, max_rank + 1))
    series = {
        method.value: evaluation.curve(method, max_rank)
        for method in ALL_METHODS
    }
    print(f"\n=== {title}: % queries satisfied at top-x ===")
    print(render_series(ranks, series, x_label="top-x"))


def test_figure4_online(benchmark, online_session_full):
    evaluation = benchmark.pedantic(
        evaluate_ranking, args=(online_session_full, AW_ONLINE_QUERIES),
        rounds=1, iterations=1,
    )
    _print_curves(evaluation, "Figure 4 (AW_ONLINE, 50 queries)")

    breakdown = evaluation.by_keyword_count(RankingMethod.STANDARD,
                                            top_x=1)
    print("\nstandard method, satisfied@1 by query length:")
    for count, (hits, total) in breakdown.items():
        print(f"  {count} keyword(s): {hits}/{total}")

    standard1 = evaluation.satisfied_at(RankingMethod.STANDARD, 1)
    assert standard1 >= 0.80
    assert evaluation.satisfied_at(RankingMethod.STANDARD, 5) >= 0.95
    assert standard1 > evaluation.satisfied_at(
        RankingMethod.NO_GROUP_NUMBER_NORM, 1)
    assert standard1 > evaluation.satisfied_at(RankingMethod.BASELINE, 1)


def test_figure4_reseller_replication(benchmark, reseller_session_full):
    evaluation = benchmark.pedantic(
        evaluate_ranking,
        args=(reseller_session_full, AW_RESELLER_QUERIES),
        rounds=1, iterations=1,
    )
    _print_curves(evaluation, "Figure 4 replication (AW_RESELLER)")
    assert evaluation.satisfied_at(RankingMethod.STANDARD, 5) >= 0.9
