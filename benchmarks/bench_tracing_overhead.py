"""Disabled-tracer overhead on the scan-aggregate hot path.

Observability that taxes the untraced hot path gets turned off in
production, so the tracing layer's contract is: when no tracer is
installed, an operator span costs one context-variable read and a shared
no-op context manager — nothing else.  This benchmark enforces that
contract the same way the vectorization gate does: against a **pinned
reference** (:class:`UntracedReference`) that reproduces the live
backend's vectorized scan-filter-partition-aggregate path *without* the
``op_span`` wrappers, so the baseline survives future edits to the
instrumented code.

Three modes run interleaved on the shared workload of
``bench_scan_aggregate``:

* ``untraced``   — the pinned span-free reference (baseline);
* ``noop_tracer`` — the live backend with no tracer installed (gated);
* ``traced``     — the live backend under an enabled tracer
  (informational: the price of actually recording spans).

The gate compares *minimum* runs: ``noop_tracer`` may cost at most
``MAX_OVERHEAD`` (3%) over ``untraced``.

Usage::

    PYTHONPATH=src python benchmarks/bench_tracing_overhead.py [--repeats N]
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.datasets import build_aw_online
from repro.obs.metrics import runs_summary
from repro.obs.tracer import Tracer, tracing_scope
from repro.plan.backends import InMemoryBackend
from repro.plan.counters import PlanCounters
from repro.plan.nodes import Filter, GroupAggregate, Scan
from repro.relational import vector
from repro.relational.operators import AGGREGATES
from repro.resilience.budget import (
    charge_groups,
    charge_rows,
    check_deadline,
)

from bench_scan_aggregate import build_workload

MAX_OVERHEAD = 0.03
"""Acceptance ceiling: the live backend with tracing *disabled* may be at
most this much slower than the pinned span-free reference on the
scan-aggregate workload (ISSUE acceptance criterion)."""


class UntracedReference:
    """The live backend's vectorized path, pinned without spans.

    Deliberately *not* sharing the ``_rows`` / ``execute`` code with
    :class:`InMemoryBackend`: this class freezes the pre-observability
    hot path (same batch kernels, same counters, same budget charges —
    no ``op_span``, no ``current_tracer``) as the overhead baseline.
    Covers exactly the node kinds of the shared workload.
    """

    name = "untraced"

    def __init__(self, schema, batch_size: int = vector.DEFAULT_BATCH_SIZE):
        self.schema = schema
        self.batch_size = batch_size
        self.counters = PlanCounters()
        self._measure_vectors: dict[str, list] = {}

    def _rows(self, node) -> list[int]:
        if isinstance(node, Scan):
            table = self.schema.database.table(node.table)
            with self.counters.timed("Scan") as out:
                rows: list[int] = []
                for batch in vector.batches(range(len(table)),
                                            self.batch_size):
                    charge_rows(len(batch), "Scan")
                    rows.extend(batch)
                    out[1] += 1
                out[0] = len(rows)
            return rows
        if isinstance(node, Filter):
            child_rows = self._rows(node.child)
            if not child_rows:
                return child_rows
            check_deadline("Filter")
            table = self.schema.database.table(node.child.table)
            node.predicate.validate(table)
            with self.counters.timed("Filter") as out:
                rows = []
                for batch in vector.batches(child_rows, self.batch_size):
                    kept = node.predicate.select_batch(table, batch)
                    charge_rows(len(kept), "Filter")
                    rows.extend(kept)
                    out[1] += 1
                out[0] = len(rows)
            return rows
        raise TypeError(f"unsupported node: {node!r}")

    def _measure_values(self, plan: GroupAggregate) -> list:
        key = plan.measure_sql
        cached = self._measure_vectors.get(key)
        if cached is not None:
            return cached
        fact = self.schema.database.table(self.schema.fact_table)
        plan.measure_expr.validate(fact)
        values = plan.measure_expr.evaluate_batch(fact)
        self._measure_vectors[key] = values
        return values

    def _partition_groups(self, keys, rows: list[int]) -> dict:
        check_deadline("Partition")
        with self.counters.timed("Partition") as out:
            vectors = [self.schema.fact_vector(k.path, k.column)
                       for k in keys]
            groups: dict = {}
            for batch in vector.batches(rows, self.batch_size):
                check_deadline("Partition")
                if len(vectors) == 1:
                    part = vector.group_rows(vectors[0], batch)
                else:
                    part = vector.group_rows_packed(vectors, batch)
                if groups:
                    for value, ids in part.items():
                        known = groups.get(value)
                        if known is None:
                            groups[value] = ids
                        else:
                            known.extend(ids)
                else:
                    groups = part
                out[1] += 1
            out[0] = len(groups)
        return groups

    def execute(self, plan: GroupAggregate):
        partition = plan.child
        rows = self._rows(partition.child)
        fn = AGGREGATES[plan.aggregate]
        measure = self._measure_values(plan)
        groups = self._partition_groups(partition.keys, rows)
        charge_groups(len(groups), "Partition")
        with self.counters.timed("GroupAggregate") as out:
            out[0] = len(groups)
            out[1] = 1
            return {
                value: fn(vector.take(measure, group_rows))
                for value, group_rows in groups.items()
            }


def compare(schema, repeats: int) -> tuple[dict, dict]:
    """Interleaved timings of the three modes on one workload.

    Returns ``(benchmarks, check)``: per-mode timing dicts in the
    ``run_all`` format plus the overhead gate entry.
    """
    plan = build_workload(schema)
    reference = UntracedReference(schema)
    backend = InMemoryBackend(schema)

    def run_untraced():
        return reference.execute(plan)

    def run_noop_tracer():
        return backend.execute(plan)

    def run_traced():
        with tracing_scope(Tracer()):
            return backend.execute(plan)

    modes = {
        "untraced": run_untraced,
        "noop_tracer": run_noop_tracer,
        "traced": run_traced,
    }
    results = {mode: fn() for mode, fn in modes.items()}  # untimed warm-up
    assert (results["untraced"] == results["noop_tracer"]
            == results["traced"]), "modes disagree on the workload result"
    assert results["untraced"], "workload selected no groups"

    runs: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(repeats):
        for mode, fn in modes.items():
            started = time.perf_counter()
            fn()
            runs[mode].append(time.perf_counter() - started)

    fact_rows = len(schema.database.table(schema.fact_table))
    benchmarks = {}
    for mode in modes:
        benchmarks[f"tracing_{mode}"] = {
            "median_s": round(statistics.median(runs[mode]), 6),
            "min_s": round(min(runs[mode]), 6),
            "runs_s": [round(r, 6) for r in runs[mode]],
            **runs_summary(runs[mode]),
            "meta": {"mode": mode, "fact_rows": fact_rows,
                     "groups": len(results[mode])},
        }
    untraced_min = min(runs["untraced"])
    noop_min = min(runs["noop_tracer"])
    overhead = noop_min / max(untraced_min, 1e-9) - 1.0
    check = {
        "untraced_min_s": round(untraced_min, 6),
        "noop_tracer_min_s": round(noop_min, 6),
        "traced_min_s": round(min(runs["traced"]), 6),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
    }
    return benchmarks, check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced dataset size")
    args = parser.parse_args(argv)
    schema = (build_aw_online(num_customers=300, num_facts=8000, seed=42)
              if args.smoke else build_aw_online())
    benchmarks, check = compare(schema, args.repeats)
    for name, entry in benchmarks.items():
        print(f"  {name}: {entry['median_s']:.4f} s "
              f"(min {entry['min_s']:.4f} s)")
    print(f"disabled-tracer overhead: {check['overhead'] * 100:.2f}% "
          f"(ceiling {check['max_overhead'] * 100:.0f}%)")
    return 0 if check["overhead"] <= check["max_overhead"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
