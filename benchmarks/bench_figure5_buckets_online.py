"""Figure 5: bucket number vs. group-by attribute scores (AW_ONLINE).

Four lines: {YearlyIncome, DealerPrice} x {StateProvince→Country,
Subcategory→Category} roll-ups; error is averaged over all roll-up cases
(the paper averages over e.g. its 81 subcategory→category mappings).

Shape check vs the paper: error decays rapidly with the bucket count,
is below 5% by 40 basic intervals, and converges by 80.
"""

from repro.evalkit import (
    DEFAULT_BUCKET_COUNTS,
    evaluate_buckets_online,
    render_series,
)


def test_figure5_bucket_convergence(benchmark, aw_online_full):
    evaluation = benchmark.pedantic(
        evaluate_buckets_online, args=(aw_online_full,),
        kwargs={"bucket_counts": DEFAULT_BUCKET_COUNTS},
        rounds=1, iterations=1,
    )

    counts = list(DEFAULT_BUCKET_COUNTS)
    series = {
        line.label: [line.errors[b] for b in counts]
        for line in evaluation.lines
    }
    print("\n=== Figure 5: bucket count vs. score error % (AW_ONLINE) ===")
    print(render_series(counts, series, x_label="buckets"))
    for line in evaluation.lines:
        print(f"  ({line.label}: averaged over {line.num_cases} "
              "roll-up cases)")

    assert len(evaluation.lines) == 4
    for line in evaluation.lines:
        assert line.errors[80] <= line.errors[5] + 1e-9
    # the paper's claim is "MOST error ratio values are reduced to less
    # than 5 percent with 40 basic intervals": require 3 of the 4 lines
    under_five_at_40 = sum(line.errors[40] < 5.0
                           for line in evaluation.lines)
    assert under_five_at_40 >= 3
    assert evaluation.converged_by(80, threshold=7.5)
    assert evaluation.converged_by(160, threshold=5.0)
