"""§6.5 timing claim: a 500-iteration interval merge takes < 5 ms.

"The simulated annealing algorithm is very efficient since none of the
iterations require DBMS access and at each step, all the operations
incurred are main-memory array manipulations.  For example, a 500
iterations interval merge operation takes less than 5 milliseconds."

The benchmark times `anneal_splits` alone (the pure in-memory merge, no
database involved, exactly what the paper measures).
"""

import random

from repro.core import AnnealingConfig, anneal_splits


def _series(m=40, seed=9):
    rng = random.Random(seed)
    x = [rng.uniform(0, 1000) for _ in range(m)]
    y = [xi * 0.6 + rng.uniform(0, 250) for xi in x]
    return x, y


def test_500_iteration_merge_under_5ms(benchmark):
    x, y = _series()
    config = AnnealingConfig(num_intervals=6, iterations=500)

    result = benchmark(anneal_splits, x, y, config)

    assert len(result.error_history) == 500
    mean_seconds = benchmark.stats.stats.mean
    print(f"\n500-iteration merge: {mean_seconds * 1000:.3f} ms mean "
          "(paper: < 5 ms on 2006 hardware)")
    assert mean_seconds < 0.050, (
        "a 500-iteration merge should be a few milliseconds; "
        f"got {mean_seconds * 1000:.1f} ms"
    )
