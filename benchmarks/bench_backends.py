"""Explore-phase benchmarks per execution backend.

Runs the same explore-phase workload — star-net materialisation, one
categorical partition, and a full facet build — through each registered
execution backend at paper scale, so the relative cost of the in-memory
row-id interpreter vs. the sqlite mirror stays visible.  A separate case
measures the warm plan-cache path, which should be backend-independent.
"""

import pytest

from repro.core import KdapSession
from repro.plan import BACKENDS

QUERY = "California Mountain Bikes"


@pytest.fixture(scope="module", params=sorted(BACKENDS))
def backend_session(request, aw_online_full):
    session = KdapSession(aw_online_full, backend=request.param)
    yield session
    session.close()


def _top_net(session):
    return session.differentiate(QUERY, limit=1)[0].star_net


def test_star_net_materialisation(benchmark, backend_session):
    net = _top_net(backend_session)
    engine = backend_session.engine

    def evaluate_uncached():
        engine.cache.clear()
        return engine.evaluate(net)

    subspace = benchmark(evaluate_uncached)
    assert len(subspace) > 0


def test_partition_aggregation(benchmark, backend_session):
    session = backend_session
    subspace = session.engine.evaluate(_top_net(session))
    gb = session.schema.groupby_attribute("DimDate", "MonthName")

    def partition_uncached():
        session.engine.cache.clear()
        return subspace.partition_aggregates(gb, "revenue")

    parts = benchmark(partition_uncached)
    assert len(parts) == 12


def test_explore_facets(benchmark, backend_session):
    net = _top_net(backend_session)

    result = benchmark(backend_session.explore, net)
    assert result.interface.facets


def test_explore_warm_cache(benchmark, backend_session):
    net = _top_net(backend_session)
    backend_session.explore(net)  # populate the plan cache

    result = benchmark(backend_session.explore, net)
    assert result.interface.facets
    assert backend_session.engine.cache_stats.hits > 0
