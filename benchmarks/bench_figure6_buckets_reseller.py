"""Figure 6: bucket number vs. group-by attribute scores (AW_RESELLER).

Three lines — AnnualSales, AnnualRevenue, NumberOfEmployees — under the
product Subcategory→Category roll-up, averaged over all roll-up cases.

Shape check vs the paper: same convergence behaviour as Figure 5
(<5% error by 40-80 basic intervals).
"""

from repro.evalkit import (
    DEFAULT_BUCKET_COUNTS,
    evaluate_buckets_reseller,
    render_series,
)


def test_figure6_bucket_convergence(benchmark, aw_reseller_full):
    evaluation = benchmark.pedantic(
        evaluate_buckets_reseller, args=(aw_reseller_full,),
        kwargs={"bucket_counts": DEFAULT_BUCKET_COUNTS},
        rounds=1, iterations=1,
    )

    counts = list(DEFAULT_BUCKET_COUNTS)
    series = {
        line.label: [line.errors[b] for b in counts]
        for line in evaluation.lines
    }
    print("\n=== Figure 6: bucket count vs. score error % "
          "(AW_RESELLER) ===")
    print(render_series(counts, series, x_label="buckets"))
    for line in evaluation.lines:
        print(f"  ({line.label}: averaged over {line.num_cases} "
              "roll-up cases)")

    assert len(evaluation.lines) == 3
    for line in evaluation.lines:
        assert line.errors[80] <= line.errors[5] + 1e-9
    assert evaluation.converged_by(80, threshold=5.0)
