"""Table 1: sample star nets for "California Mountain Bikes".

Regenerates the paper's Table 1 — the ranked candidate interpretations
with their scores — and benchmarks the differentiate phase (candidate
generation + ranking) at paper scale.

Shape check vs the paper: the correct interpretation
(StateProvince=California x Subcategory=Mountain Bikes) is Top-1, the
street-address reading of "California" appears below it.
"""

from repro.evalkit import render_star_nets


def test_table1_star_nets(benchmark, online_session_full):
    session = online_session_full
    query = "California Mountain Bikes"

    ranked = benchmark(session.differentiate, query, limit=10)

    print("\n=== Table 1: star nets for 'California Mountain Bikes' ===")
    print(render_star_nets(ranked, limit=3))

    top = ranked[0].star_net
    domains = {r.hit_group.domain for r in top.rays}
    assert domains == {
        ("DimGeography", "StateProvinceName"),
        ("DimProductSubcategory", "ProductSubcategoryName"),
    }, "the paper's correct answer must rank first"
    assert any(
        any(r.hit_group.domain == ("DimCustomer", "AddressLine1")
            for r in s.star_net.rays)
        for s in ranked
    ), "the street-address interpretation must be enumerated"
