"""Microbenchmarks of the engine primitives behind KDAP's two phases.

Not a paper artifact — a performance characterisation of this
implementation at paper scale (60k fact rows), so regressions in the hot
paths are visible:

* full-text probe of one keyword (differentiate, step 1);
* candidate generation + ranking for a 3-keyword query (differentiate);
* star-join evaluation of the top star net (explore, subspace slice);
* one categorical partition + aggregation over the subspace (explore);
* fact-aligned attribute resolution, cold cache (the underlying scan).
"""



def test_text_probe(benchmark, online_session_full):
    hits = benchmark(online_session_full.index.search, "California",
                     30)
    assert hits


def test_differentiate_three_keywords(benchmark, online_session_full):
    ranked = benchmark(online_session_full.differentiate,
                       "Sydney Helmet Discount")
    assert ranked


def test_star_join_evaluation(benchmark, online_session_full):
    session = online_session_full
    net = session.differentiate("California Mountain Bikes",
                                limit=1)[0].star_net

    subspace = benchmark(net.evaluate, session.schema)
    assert len(subspace) > 0


def test_partition_aggregation(benchmark, online_session_full):
    session = online_session_full
    schema = session.schema
    net = session.differentiate("California Mountain Bikes",
                                limit=1)[0].star_net
    subspace = net.evaluate(schema)
    gb = schema.groupby_attribute("DimDate", "MonthName")
    schema.groupby_vector(gb)  # warm the resolution cache

    parts = benchmark(subspace.partition_aggregates, gb, "revenue")
    assert len(parts) == 12


def test_fact_vector_resolution_cold(benchmark, aw_online_full):
    schema = aw_online_full
    gb = schema.groupby_attribute("DimGeography", "StateProvinceName")

    def resolve_cold():
        # bypass the cache to measure the raw two-hop scan
        return schema.resolve_column(schema.fact_table, gb.path_from_fact,
                                     gb.ref.column)

    vector = benchmark(resolve_cold)
    assert len(vector) == schema.num_fact_rows
