"""Chunked + morsel-parallel scan-aggregate vs the pre-chunk strategy.

The microbenchmark behind the columnar-storage acceptance gate.  One
workload — scan a million-row fact table, partition by a dictionary-
encoded dimension attribute, fold ``sum(revenue)`` per group — runs
three ways over the same :func:`~repro.datasets.build_scale` warehouse:

* **plain_serial** — a faithful local pin of the pre-chunk vectorized
  strategy (one ``group_rows`` pass over the fact-aligned value vector,
  then a generator fold per group), kept here so the baseline survives
  that code path's evolution;
* **chunked_serial** — the live :class:`InMemoryBackend` with
  ``workers=1``: encoding-aware aggregate states over dictionary/RLE
  chunks, bit-exact serial accumulation;
* **morsel_parallel** — the same backend with ``workers=4``: the chunk
  list packed into morsels, per-worker partial states, order-
  insensitive merge.

A second scenario times a **selective date-range scan** on the
``DateKey``-clustered fact table and asserts the zone maps actually
skipped chunks (the storage layer's other acceptance criterion).

All schema-level caches (fact vectors, measure vector, encoded chunks)
are primed by an untimed warm-up shared by every mode, timed runs are
interleaved, and the gate compares *minimum* runs — same protocol as
:mod:`bench_scan_aggregate`.

Usage::

    PYTHONPATH=src python benchmarks/bench_morsel_scan.py [--repeats N]
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.datasets import build_scale
from repro.obs.metrics import runs_summary
from repro.plan.backends import InMemoryBackend
from repro.plan.builders import attr_key, partition_plan
from repro.plan.nodes import Filter, Scan
from repro.relational import vector
from repro.relational.expressions import Between, Col

MIN_SPEEDUP = 2.0
"""Acceptance floor: the morsel-parallel chunked backend must beat the
pre-chunk plain-vector strategy by at least this factor on the
million-row scan-aggregate workload (ISSUE acceptance criterion)."""

PARALLEL_WORKERS = 4

SKIP_LOW, SKIP_HIGH = 20040301, 20040401
"""One month out of the two-year clustered ``DateKey`` domain: selective
enough that most chunks' zone maps fall wholly outside the range."""


class PlainSerialReference:
    """The pre-chunk ``InMemoryBackend`` partition strategy, pinned.

    One :func:`~repro.relational.vector.group_rows` pass over the
    fact-aligned key vector builds per-value row lists, then a generator
    fold computes each group's sum — exactly the strategy the backend
    used before encoded chunks, deliberately not sharing code with it.
    """

    def __init__(self, schema):
        self.schema = schema

    def execute(self, plan):
        key = plan.child.keys[0]
        values = self.schema.fact_vector(key.path, key.column)
        measure = self.schema.measure_vector("revenue")
        groups = vector.group_rows(values, None)
        return {value: sum(measure[r] for r in rows)
                for value, rows in groups.items()}


def _results_agree(reference: dict, other: dict) -> bool:
    """Same groups, sums equal within float re-association tolerance."""
    if reference.keys() != other.keys():
        return False
    return all(abs(reference[k] - other[k])
               <= 1e-9 * max(1.0, abs(reference[k])) for k in reference)


def build_workload(schema):
    """The shared logical plan: full fact scan, one-key partition,
    sum(revenue).

    The partition key is ``DimDate.MonthName`` resolved through the date
    foreign key: the fact table is clustered on ``DateKey``, so the
    fact-aligned month vector is long runs — RLE chunks whose aggregate
    kernel folds each run with one C-level ``sum``.  This is the storage
    layout the chunk refactor exists for; the dictionary-encoded path is
    exercised by the zone-skip scenario's ``Color`` partition.
    """
    gb = schema.groupby_attribute("DimDate", "MonthName")
    return partition_plan(Scan(schema.fact_table), (attr_key(gb),),
                          schema.measures["revenue"])


def zone_skip_scenario(schema, repeats: int) -> tuple[dict, dict]:
    """Selective ``DateKey`` range scan: timing plus skip counters."""
    gb = schema.groupby_attribute("DimProduct", "Color")
    source = Filter(Scan(schema.fact_table),
                    predicate=Between(Col("DateKey"), SKIP_LOW, SKIP_HIGH))
    plan = partition_plan(source, (attr_key(gb),),
                          schema.measures["revenue"])
    backend = InMemoryBackend(schema)
    result = backend.execute(plan)          # untimed warm-up
    runs = []
    for _ in range(repeats):
        started = time.perf_counter()
        backend.execute(plan)
        runs.append(time.perf_counter() - started)
    stats = backend.counters.as_dict()["Filter"]
    rows_selected = stats["rows"] // stats["calls"]
    benchmark = {
        "median_s": round(statistics.median(runs), 6),
        "min_s": round(min(runs), 6),
        "runs_s": [round(r, 6) for r in runs],
        **runs_summary(runs),
        "meta": {"predicate": f"{SKIP_LOW} <= DateKey < {SKIP_HIGH}",
                 "rows_selected": rows_selected,
                 "groups": len(result)},
    }
    check = {
        "chunks_scanned": stats["chunks_scanned"] // stats["calls"],
        "chunks_skipped": stats["chunks_skipped"] // stats["calls"],
        "rows_selected": rows_selected,
    }
    return benchmark, check


def compare(schema, repeats: int) -> tuple[dict, dict]:
    """Interleaved timings of all three strategies on one workload.

    Returns ``(benchmarks, check)``: per-mode timing dicts in the
    ``run_all`` format plus the min-run speedup gate entry (including
    the zone-map skip scenario's counters).
    """
    plan = build_workload(schema)
    executors = {
        "plain_serial": PlainSerialReference(schema),
        "chunked_serial": InMemoryBackend(schema, workers=1),
        "morsel_parallel": InMemoryBackend(schema,
                                           workers=PARALLEL_WORKERS),
    }
    results = {}
    for mode, executor in executors.items():   # untimed warm-up: primes
        results[mode] = executor.execute(plan)  # vectors + chunks
    for mode in ("chunked_serial", "morsel_parallel"):
        assert _results_agree(results["plain_serial"], results[mode]), \
            f"{mode} disagrees with the plain reference"
    assert results["plain_serial"], "workload selected no groups"

    runs: dict[str, list[float]] = {mode: [] for mode in executors}
    for _ in range(repeats):
        for mode, executor in executors.items():
            started = time.perf_counter()
            executor.execute(plan)
            runs[mode].append(time.perf_counter() - started)

    fact_rows = schema.num_fact_rows
    benchmarks = {}
    for mode in executors:
        benchmarks[f"morsel_scan_{mode}"] = {
            "median_s": round(statistics.median(runs[mode]), 6),
            "min_s": round(min(runs[mode]), 6),
            "runs_s": [round(r, 6) for r in runs[mode]],
            **runs_summary(runs[mode]),
            "meta": {"mode": mode, "fact_rows": fact_rows,
                     "groups": len(results[mode]),
                     "workers": (PARALLEL_WORKERS
                                 if mode == "morsel_parallel" else 1)},
        }
    zone_bench, zone_check = zone_skip_scenario(schema, repeats)
    benchmarks["morsel_scan_zone_skip"] = zone_bench

    plain_min = min(runs["plain_serial"])
    parallel_min = min(runs["morsel_parallel"])
    check = {
        "fact_rows": fact_rows,
        "plain_serial_min_s": round(plain_min, 6),
        "chunked_serial_min_s": round(min(runs["chunked_serial"]), 6),
        "morsel_parallel_min_s": round(parallel_min, 6),
        "speedup": round(plain_min / max(parallel_min, 1e-9), 3),
        "required_speedup": MIN_SPEEDUP,
        "zone_skip": zone_check,
    }
    return benchmarks, check


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--facts", type=int, default=1_000_000,
                        help="fact rows (the gate requires >= 1M)")
    args = parser.parse_args(argv)
    schema = build_scale(num_facts=args.facts, seed=7)
    benchmarks, check = compare(schema, args.repeats)
    for name, entry in benchmarks.items():
        print(f"  {name}: {entry['median_s']:.4f} s "
              f"(min {entry['min_s']:.4f} s)")
    print(f"speedup: {check['speedup']:.2f}x "
          f"(required {check['required_speedup']:.1f}x) | zone skip: "
          f"{check['zone_skip']['chunks_skipped']} of "
          f"{check['zone_skip']['chunks_skipped'] + check['zone_skip']['chunks_scanned']} "
          "chunks")
    ok = (check["speedup"] >= check["required_speedup"]
          and check["zone_skip"]["chunks_skipped"] > 0)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
