"""Ablation (§3): attribute-level vs tuple-level text indexing.

The paper argues that tuple-level virtual documents (the DBXplorer /
DISCOVER approach) cannot support KDAP because a tuple-level hit cannot
say *which attribute* matched — and query disambiguation needs exactly
that.  This ablation quantifies the claim on the Table 3 workload:

* for each query keyword, the attribute-level index reports how many
  distinct attribute domains it hits (the disambiguation fan-out KDAP's
  differentiate phase is built on);
* the tuple-level index reports rows only — zero domain information —
  so every query with a multi-domain keyword is un-disambiguatable.

The benchmark also compares raw probe latency of the two index layouts.
"""

from repro.textindex import TupleTextIndex
from repro.datasets import AW_ONLINE_QUERIES
from repro.evalkit import render_table


def test_attribute_vs_tuple_indexing(benchmark, online_session_full):
    session = online_session_full
    schema = session.schema

    tuple_index = TupleTextIndex()
    tuple_index.index_database(schema.database, schema.searchable)

    keywords = sorted({
        k for q in AW_ONLINE_QUERIES for k in q.text.split()
    })

    def probe_all_attribute_level():
        return [session.index.search(k, limit=30) for k in keywords]

    results = benchmark(probe_all_attribute_level)

    ambiguous = 0
    rows = []
    for keyword, hits in zip(keywords, results):
        domains = {h.domain for h in hits}
        if len(domains) >= 2:
            ambiguous += 1
        if len(domains) >= 3:
            rows.append((keyword, len(domains),
                         ", ".join(sorted(f"{t}.{a}"
                                          for t, a in domains)[:3])))

    print("\n=== Ablation: disambiguation information per index layout ===")
    print(f"keywords probed: {len(keywords)}; with >=2 attribute domains: "
          f"{ambiguous} ({ambiguous / len(keywords):.0%})")
    print("most ambiguous keywords (attribute-level index):")
    rows.sort(key=lambda r: -r[1])
    print(render_table(("keyword", "#domains", "example domains"),
                       rows[:8]))
    print("\ntuple-level index on the same keywords: every hit is a bare "
          "(table, row) pair —\n0 of them carry the attribute domain "
          "needed for hit groups and star seeds.")

    # the structural claim itself
    sample_hits = tuple_index.search("California", limit=10)
    assert sample_hits, "tuple index must at least retrieve rows"
    assert all(len(hit) == 3 for hit in sample_hits)  # (table, row, score)
    assert ambiguous >= len(keywords) // 4, (
        "a realistic OLAP vocabulary should make a sizable share of "
        "keywords multi-domain — that is why attribute-level indexing "
        "is required"
    )
