"""Telemetry overhead benchmark: the always-on tax must stay under 5%.

Two identical :class:`repro.service.KdapService` deployments — one with
the full telemetry stack (event log, tail sampler, SLO tracker, runtime
poller), one with ``telemetry=False`` — serve the same mixed template
workload over real sockets.  Both services are live *simultaneously*
and repeats are tightly interleaved on/off per template, so machine
drift cannot bias either side, and each request template's cost is
taken as its **floor** — the minimum latency across every repeat of
every paired round of that mode.
The deterministic workload's best case is its true cost; anything above
the floor is scheduler/allocator noise, which calibration shows swamps
a 5% band on small concurrent samples (two *identical* configurations
differ by ~20% at the concurrent p95).  The gate:

* **overhead** — the workload p95 computed over the per-template floor
  latencies with telemetry on must stay within ``MAX_OVERHEAD`` (5%) of
  telemetry off, with a two-millisecond absolute floor so
  sub-timer-resolution jitter on the smoke-scale workload cannot fail
  the relative band.  The summed floors are reported alongside as a
  whole-workload cross-check.

A second scenario validates the tail-sampling contract itself against a
fault-injecting service (a dispatch override raising
:class:`~repro.relational.errors.DeadlineExceeded` for a magic query):

* every errored request's trace must be persisted (100% tail capture);
* healthy fast requests must persist at no more than the head-sampling
  cadence (1-in-``head_n``);
* every persisted trace file must be complete, parseable JSON.

``compare(schema)`` returns ``(benchmarks, check)`` in the
``run_all.py`` convention; the module also runs standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \
        --trace-dir traces
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import tempfile
import time

from repro.datasets import build_aw_online
from repro.relational.errors import DeadlineExceeded
from repro.service import KdapService, ServiceConfig
from repro.textindex.index import AttributeTextIndex

from bench_service_concurrency import DEFAULT_QUERIES, _post, _templates

#: Relative p95 ceiling for the always-on telemetry stack.
MAX_OVERHEAD = 0.05
#: Absolute slack under the relative band: timer/scheduler jitter on the
#: smoke-scale workload, not a real per-request telemetry cost.
ABS_SLACK_S = 0.003

#: Query the fault-injecting service fails with a deadline expiry.
FAIL_QUERY = "__telemetry_bench_fault__"

ROUNDS = 3
WARMUPS = 2
REPEATS = 10
HEAD_N = 4


def _exact_p95(latencies_s) -> float:
    """Nearest-rank p95 over the raw samples (no histogram buckets —
    the 5% gate needs more resolution than bucket interpolation)."""
    ordered = sorted(latencies_s)
    if not ordered:
        return 0.0
    rank = max(math.ceil(0.95 * len(ordered)) - 1, 0)
    return ordered[rank]


class _FaultService(KdapService):
    """Fails :data:`FAIL_QUERY` with a deadline expiry so the sampling
    scenario gets deterministic 504s through the public HTTP surface."""

    def _dispatch(self, session, spec, budget):
        if spec.query == FAIL_QUERY:
            raise DeadlineExceeded("injected fault (sampling validation)")
        return super()._dispatch(session, spec, budget)


def _round(schema, index, queries
           ) -> dict[bool, dict[str, list[float]]]:
    """One *paired* service lifetime: both modes live at the same time,
    each template warmed on both (fresh per-worker sessions pay a
    first-request cost that must not read as overhead), then repeats
    tightly interleaved on/off — a single sequential client, so machine
    drift (CPU frequency, page cache, allocator state) lands on both
    sides of the comparison equally instead of on whichever mode ran
    second."""
    configs = {
        mode: ServiceConfig(workers=2, queue_depth=32,
                            enqueue_deadline_ms=60_000.0, telemetry=mode)
        for mode in (True, False)
    }
    latencies: dict[bool, dict[str, list[float]]] = {True: {}, False: {}}
    with KdapService(schema, configs[True], index=index) as on_service, \
            KdapService(schema, configs[False], index=index) as off_service:
        ports = {True: on_service.port, False: off_service.port}
        for position, (path, payload) in enumerate(_templates(queries)):
            key = f"{position}:{path}"
            for mode in (True, False):
                for _ in range(WARMUPS):
                    _post(ports[mode], path, payload)
            for repeat in range(REPEATS):
                order = ((True, False) if repeat % 2 == 0
                         else (False, True))
                for mode in order:
                    started = time.perf_counter()
                    status, _body = _post(ports[mode], path, payload)
                    elapsed = time.perf_counter() - started
                    if status >= 500:
                        raise RuntimeError(f"{path} answered {status} "
                                           "during overhead run")
                    latencies[mode].setdefault(key, []).append(elapsed)
    return latencies


def _mode_entry(rounds: list[dict[str, list[float]]]) -> dict:
    """Fold a mode's rounds into per-template floors and the workload
    p95/sum over those floors."""
    floors: dict[str, float] = {}
    requests = 0
    for latencies in rounds:
        for key, runs in latencies.items():
            requests += len(runs)
            best = min(runs)
            floors[key] = min(floors.get(key, best), best)
    values = list(floors.values())
    return {
        "requests": requests,
        "template_floor_ms": {key: round(value * 1000.0, 3)
                              for key, value in sorted(floors.items())},
        "p95_s": round(_exact_p95(values), 6),
        "sum_s": round(sum(values), 6),
    }


def _sampling_scenario(schema, index, trace_dir: str,
                       healthy: int = 20, errored: int = 5) -> dict:
    """Drive healthy + failing requests at a trace-enabled service and
    audit the tail sampler's contract from its own accounting, the
    event log, and the files actually on disk."""
    config = ServiceConfig(workers=2, queue_depth=32,
                           enqueue_deadline_ms=60_000.0,
                           trace_dir=trace_dir, trace_head_n=HEAD_N,
                           trace_slow_ms=60_000.0)
    with _FaultService(schema, config, index=index) as service:
        for n in range(healthy):
            status, _ = _post(service.port, "/v1/explore",
                              {"query": DEFAULT_QUERIES[n % 2]})
            assert status == 200, f"healthy request got {status}"
        for _ in range(errored):
            status, _ = _post(service.port, "/v1/explore",
                              {"query": FAIL_QUERY})
            assert status == 504, f"injected fault got {status}"
        sampling = service.sampler.snapshot()
        error_events = [event for event in service.events.tail(256)
                        if event["kind"] == "errored"]
    trace_files = sorted(glob.glob(os.path.join(trace_dir, "*.json")))
    parsed = 0
    for path in trace_files:
        with open(path, encoding="utf-8") as fh:
            json.load(fh)  # raises on a truncated/partial write
        parsed += 1
    head_budget = math.ceil(sampling["considered"] / HEAD_N)
    return {
        "healthy": healthy,
        "errored": errored,
        "head_n": HEAD_N,
        "sampling": sampling,
        "errored_events_with_trace": sum(
            1 for event in error_events if event.get("trace") == "error"),
        "trace_files": len(trace_files),
        "trace_files_parsed": parsed,
        "head_budget": head_budget,
    }


def compare(schema, queries=DEFAULT_QUERIES, rounds: int = ROUNDS,
            trace_dir: str | None = None) -> tuple[dict, dict]:
    """Interleaved on/off rounds + the sampling audit; ``(benchmarks,
    check)`` for run_all."""
    index = AttributeTextIndex()
    index.index_database(schema.database, schema.searchable)

    per_mode: dict[bool, list[dict]] = {True: [], False: []}
    for _ in range(rounds):
        paired = _round(schema, index, queries)
        for telemetry in (True, False):
            per_mode[telemetry].append(paired[telemetry])
    benchmarks = {
        "service_telemetry_on": _mode_entry(per_mode[True]),
        "service_telemetry_off": _mode_entry(per_mode[False]),
    }

    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        sampling = _sampling_scenario(schema, index, trace_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            sampling = _sampling_scenario(schema, index, tmp)

    on = benchmarks["service_telemetry_on"]
    off = benchmarks["service_telemetry_off"]
    check = {
        "p95_on_s": on["p95_s"],
        "p95_off_s": off["p95_s"],
        "overhead": round(on["p95_s"] / max(off["p95_s"], 1e-9) - 1.0, 4),
        "abs_delta_s": round(on["p95_s"] - off["p95_s"], 6),
        "sum_on_s": on["sum_s"],
        "sum_off_s": off["sum_s"],
        "sum_overhead": round(on["sum_s"] / max(off["sum_s"], 1e-9) - 1.0,
                              4),
        "rounds": rounds,
        "max_overhead": MAX_OVERHEAD,
        "abs_slack_s": ABS_SLACK_S,
        "sampling": sampling,
    }
    return benchmarks, check


def passes(check: dict) -> bool:
    """The telemetry acceptance gate over ``compare``'s check dict."""
    overhead_ok = (check["overhead"] <= check["max_overhead"]
                   or check["abs_delta_s"] <= check["abs_slack_s"])
    sampling = check["sampling"]
    persisted = sampling["sampling"]["persisted"]
    sampling_ok = (
        # 100% of errored requests tail-sampled and written
        persisted["error"] == sampling["errored"]
        and sampling["errored_events_with_trace"] == sampling["errored"]
        # healthy fast traffic persists at no more than the head cadence
        and persisted["head"] <= sampling["head_budget"]
        and persisted["slow"] == 0
        # every persisted trace landed on disk as complete JSON
        and sampling["trace_files"]
        == sampling["sampling"]["persisted_total"]
        and sampling["trace_files_parsed"] == sampling["trace_files"])
    return overhead_ok and sampling_ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--facts", type=int, default=8000)
    parser.add_argument("--rounds", type=int, default=ROUNDS)
    parser.add_argument("--trace-dir", default=None,
                        help="keep the sampling scenario's persisted "
                             "traces here (CI artifact)")
    args = parser.parse_args(argv)
    schema = build_aw_online(num_customers=300, num_facts=args.facts,
                             seed=42)
    benchmarks, check = compare(schema, rounds=args.rounds,
                                trace_dir=args.trace_dir)
    for name in ("service_telemetry_on", "service_telemetry_off"):
        entry = benchmarks[name]
        print(f"{name}: {entry['requests']} requests over "
              f"{check['rounds']} rounds, floor p95 "
              f"{entry['p95_s'] * 1000:.2f} ms, workload sum "
              f"{entry['sum_s'] * 1000:.2f} ms")
    print(f"telemetry overhead: {check['overhead'] * 100:+.2f}% p95 "
          f"({check['abs_delta_s'] * 1000:+.3f} ms, ceiling "
          f"{check['max_overhead'] * 100:.0f}%; workload sum "
          f"{check['sum_overhead'] * 100:+.2f}%)")
    sampling = check["sampling"]
    print(f"tail sampling: {sampling['sampling']['persisted']} persisted "
          f"of {sampling['sampling']['considered']} considered, "
          f"{sampling['trace_files']} trace files "
          f"({sampling['trace_files_parsed']} parse clean)")
    ok = passes(check)
    print("telemetry gate:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
