"""Dynamic facet construction (paper §5).

Given the user-selected star net and its sub-dataspace DS', this module
assembles the multi-faceted interface:

* one :class:`DynamicFacet` per dimension, in a static dimension order
  (the paper assumes a fixed order and ranks only attributes/instances);
* inside each facet, the top-k most interesting group-by attributes,
  scored by roll-up partitioning — except attributes of *hitted*
  dimensions that appear in a hit group, which are promoted directly for
  navigational access;
* inside each attribute, ranked attribute instances (Eq. 2) for
  categorical domains, or annealed display intervals for numerical ones.

Roll-up spaces are derived from the star net itself: rolling DS' up along
a hitted dimension generalises that dimension's hit groups one hierarchy
level (or drops them when no parent level exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs.tracer import current_tracer
from ..relational import vector
from ..relational.errors import ResourceExhausted
from ..resilience.budget import current_budget
from ..warehouse.graph import JoinPath
from ..warehouse.rollup import generalize_values
from ..warehouse.schema import (
    AttributeKind,
    AttributeRef,
    GroupByAttribute,
    StarSchema,
)
from ..warehouse.subspace import Subspace
from .annealing import AnnealingConfig, anneal_splits, merge_series
from .attribute_ranking import (
    DEFAULT_NUM_BUCKETS,
    numerical_series,
    rank_groupby_attributes,
)
from .bucketing import Interval
from .hits import HitGroup
from .instance_ranking import rank_instances_batch
from .interestingness import InterestingnessMeasure, SURPRISE
from .starnet import Ray, StarNet


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs for the explore phase."""

    measure_name: str = "revenue"
    top_k_attributes: int = 3
    top_k_instances: int = 6
    num_buckets: int = DEFAULT_NUM_BUCKETS
    display_intervals: int = 5
    skew_limit: float = 4.0
    annealing_iterations: int = 300
    seed: int = 7


@dataclass(frozen=True)
class FacetEntry:
    """One attribute instance (or display interval) inside a facet."""

    label: str
    value: object
    aggregate: float
    score: float


@dataclass(frozen=True)
class FacetAttribute:
    """One selected group-by attribute with its ranked entries."""

    attribute: GroupByAttribute
    score: float
    promoted: bool
    entries: tuple[FacetEntry, ...]


@dataclass(frozen=True)
class DynamicFacet:
    """All selected attributes of one dimension."""

    dimension: str
    attributes: tuple[FacetAttribute, ...]


@dataclass(frozen=True)
class FacetedInterface:
    """The full explore-phase output."""

    subspace: Subspace
    total_aggregate: float
    facets: tuple[DynamicFacet, ...]

    def facet(self, dimension: str) -> DynamicFacet:
        """The facet of one dimension."""
        for facet in self.facets:
            if facet.dimension == dimension:
                return facet
        raise KeyError(f"no facet for dimension {dimension!r}")


# ----------------------------------------------------------------------
# roll-up space construction
# ----------------------------------------------------------------------
def rollup_ray(schema: StarSchema, ray: Ray) -> Ray | None:
    """Generalise one ray a hierarchy level up; None = roll up to ALL."""
    ref = AttributeRef(ray.hit_group.table, ray.hit_group.attribute)
    generalised = generalize_values(schema, ref, ray.hit_group.values)
    if generalised is None:
        return None
    parent_ref, parent_values = generalised
    from ..textindex.index import SearchHit

    hits = tuple(
        SearchHit(parent_ref.table, parent_ref.column, value, 0.0)
        for value in sorted(parent_values)
    )
    group = HitGroup(parent_ref.table, parent_ref.column, hits,
                     ray.hit_group.keywords)
    if parent_ref.table == ray.hit_group.table:
        path = ray.path_to_fact
    else:
        link = schema._hierarchy_link_path(ray.hit_group.table,
                                           parent_ref.table)
        path = JoinPath(link.reversed().steps + ray.path_to_fact.steps)
    return Ray(group, path, ray.dimension)


def rollup_subspace(schema: StarSchema, star_net: StarNet,
                    dimension: str, engine=None) -> Subspace:
    """RUP(DS') along one hitted dimension.

    Every ray of ``dimension`` is generalised one hierarchy level (or
    dropped at the top — roll-up to ALL); rays of other dimensions keep
    their selections.  With an ``engine`` the rolled-up net is evaluated
    through the plan layer (and the result stays engine-bound).
    """
    new_rays: list[Ray] = []
    for ray in star_net.rays:
        if ray.dimension == dimension:
            rolled = rollup_ray(schema, ray)
            if rolled is not None:
                new_rays.append(rolled)
        else:
            new_rays.append(ray)
    rolled_net = StarNet(star_net.fact_table, tuple(new_rays))
    if engine is not None:
        subspace = engine.evaluate(rolled_net)
    else:
        subspace = rolled_net.evaluate(schema)
    return Subspace(subspace.schema, subspace.fact_rows,
                    label=f"RUP[{dimension}]({star_net})",
                    engine=subspace.engine)


def rollup_subspaces(schema: StarSchema, star_net: StarNet,
                     engine=None) -> list[Subspace]:
    """One roll-up space per hitted dimension; the full dataspace when the
    star net has no hitted dimensions (e.g. only fact-attribute hits)."""
    dims = star_net.hitted_dimensions
    if not dims:
        return [Subspace.full(schema, engine=engine)]
    return [rollup_subspace(schema, star_net, d, engine=engine)
            for d in dims]


# ----------------------------------------------------------------------
# facet assembly
# ----------------------------------------------------------------------
def _promoted_attributes(schema: StarSchema, star_net: StarNet,
                         dimension: str) -> list[GroupByAttribute]:
    """Hit-group attributes of a hitted dimension, promoted directly
    (§5.2.1: "the attributes from the hit groups are directly selected")."""
    promoted: list[GroupByAttribute] = []
    seen: set[tuple[str, str]] = set()
    for ray in star_net.rays:
        if ray.dimension != dimension:
            continue
        key = (ray.hit_group.table, ray.hit_group.attribute)
        if key in seen:
            continue
        seen.add(key)
        ref = AttributeRef(*key)
        declared = [
            gb
            for dim in schema.dimensions
            for gb in dim.groupbys
            if gb.ref == ref
        ]
        if declared:
            promoted.append(declared[0])
        else:
            promoted.append(
                GroupByAttribute(
                    ref, AttributeKind.CATEGORICAL,
                    ray.path_to_fact.reversed(),
                )
            )
    return promoted


def _numerical_entries(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    gb: GroupByAttribute,
    config: ExploreConfig,
) -> tuple[FacetEntry, ...]:
    """Bucketize, anneal to display intervals, and render interval entries.

    The annealing objective compares correlations against the first
    roll-up space (when several exist, the first hitted dimension's).
    """
    rollup = rollups[0]
    try:
        pair, buckets = numerical_series(
            subspace, rollup, gb, config.measure_name, config.num_buckets
        )
    except ValueError:
        return ()
    x = list(pair.subspace_series)
    y = list(pair.rollup_series)
    k = min(config.display_intervals, len(x))
    if k < 1:
        return ()
    if k == len(x):
        splits: tuple[int, ...] = tuple(range(1, len(x)))
    else:
        with current_tracer().span("facet.anneal", attribute=str(gb.ref),
                                   buckets=len(x), intervals=k):
            result = anneal_splits(
                x, y,
                AnnealingConfig(
                    num_intervals=k,
                    skew_limit=config.skew_limit,
                    iterations=config.annealing_iterations,
                    seed=config.seed,
                ),
            )
        splits = result.splits
    merged_x = merge_series(x, splits)
    merged_y = merge_series(y, splits)
    total_x = sum(merged_x) or 1.0
    total_y = sum(merged_y) or 1.0
    boundaries = [0, *splits, len(x)]
    entries = []
    for i in range(len(boundaries) - 1):
        first = pair.categories[boundaries[i]]
        last = pair.categories[boundaries[i + 1] - 1]
        interval = Interval(first.low, last.high, last.closed_right)
        score = merged_x[i] / total_x - merged_y[i] / total_y
        entries.append(
            FacetEntry(
                label=f"{interval.low:g} - {interval.high:g}",
                value=interval,
                aggregate=merged_x[i],
                score=score,
            )
        )
    return tuple(entries)


def expand_interval(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    gb: GroupByAttribute,
    interval,
    config: ExploreConfig = ExploreConfig(),
) -> tuple[FacetEntry, ...]:
    """Expand one displayed numeric interval into sub-intervals.

    §5.3.2: limiting the display to ~K merged intervals "is acceptable for
    multi-faceted search sessions, as a user can always choose to expand
    further into subsequent subintervals."  This re-runs bucketization and
    annealing *inside* the chosen interval: the sub-dataspace is restricted
    to rows whose attribute value falls in ``interval``, and fresh display
    intervals are fitted over that narrower domain.
    """
    schema = subspace.schema
    values = schema.groupby_vector(gb)
    rows = vector.select_range(values, interval.low, interval.high,
                               subspace.fact_rows,
                               inclusive_high=interval.closed_right)
    inner = Subspace.of(schema, rows,
                        label=f"{subspace.label} / {gb.ref} in {interval}",
                        engine=subspace.engine)
    if inner.is_empty:
        return ()
    inner_rollups = [
        Subspace.of(
            schema,
            vector.select_range(values, interval.low, interval.high,
                                rollup.fact_rows,
                                inclusive_high=interval.closed_right),
            label=f"{rollup.label} / {gb.ref} in {interval}",
            engine=rollup.engine,
        )
        for rollup in rollups
    ]
    inner_rollups = [r for r in inner_rollups if not r.is_empty]
    if not inner_rollups:
        inner_rollups = [inner]
    return _numerical_entries(inner, inner_rollups, gb, config)


def build_facets(
    schema: StarSchema,
    star_net: StarNet,
    subspace: Subspace | None = None,
    interestingness: InterestingnessMeasure = SURPRISE,
    config: ExploreConfig = ExploreConfig(),
    rollups: Sequence[Subspace] | None = None,
    engine=None,
    promote: Sequence[GroupByAttribute] = (),
) -> FacetedInterface:
    """Construct the full dynamic multi-faceted interface for a star net.

    ``rollups`` overrides the background spaces; by default one roll-up
    per hitted dimension is derived from the star net (§5.2.1).  Drill-
    down navigation passes the previous subspace here so interestingness
    is measured against the space the user just left.

    ``promote`` lists extra group-by attributes (metadata/pattern match
    hints such as "by month") promoted into their dimension's facet
    exactly like hit-group attributes, ahead of interestingness-ranked
    ones.

    With an ``engine`` (a :class:`~repro.plan.engine.QueryEngine`), the
    subspace, roll-up spaces, and all facet aggregation evaluate through
    the logical-plan layer on that engine's backend, sharing its
    fingerprint-keyed result cache.
    """
    tracer = current_tracer()
    if engine is not None and subspace is not None:
        subspace = engine.bind(subspace)
    if subspace is None:
        subspace = (engine.evaluate(star_net) if engine is not None
                    else star_net.evaluate(schema))
    budget = current_budget()
    with tracer.span("facets", rows=len(subspace.fact_rows)):
        if rollups is None:
            try:
                with tracer.span("facets.rollups"):
                    rollups = rollup_subspaces(schema, star_net,
                                               engine=engine)
            except ResourceExhausted as exc:
                if budget is None:
                    raise
                budget.record_truncation(
                    "rollup", exc.reason,
                    "no facets built: roll-up spaces exceeded the budget")
                return FacetedInterface(
                    subspace=subspace,
                    total_aggregate=_safe_total(subspace, config, budget),
                    facets=(),
                )
        rollups = list(rollups)
        if engine is not None:
            rollups = [engine.bind(r) for r in rollups]
        facets: list[DynamicFacet] = []
        dims = sorted(schema.dimensions, key=lambda d: d.name)
        for position, dim in enumerate(dims):
            try:
                with tracer.span("facet.dimension", dimension=dim.name):
                    facet = _build_dimension_facet(
                        schema, star_net, dim, subspace, rollups,
                        interestingness, config, promote=promote)
            except ResourceExhausted as exc:
                if budget is None:
                    raise
                skipped = [d.name for d in dims[position:]]
                budget.record_truncation(
                    f"facet:{dim.name}", exc.reason,
                    f"facet building stopped; dimensions skipped: "
                    f"{', '.join(skipped)}")
                break
            if facet is not None:
                facets.append(facet)

        return FacetedInterface(
            subspace=subspace,
            total_aggregate=_safe_total(subspace, config, budget),
            facets=tuple(facets),
        )


def _build_dimension_facet(
    schema: StarSchema,
    star_net: StarNet,
    dim,
    subspace: Subspace,
    rollups: Sequence[Subspace],
    interestingness: InterestingnessMeasure,
    config: ExploreConfig,
    promote: Sequence[GroupByAttribute] = (),
) -> DynamicFacet | None:
    """One dimension's facet (None when nothing qualifies)."""
    promoted = _promoted_attributes(schema, star_net, dim.name)
    promoted_refs = {gb.ref for gb in promoted}
    for gb in promote:
        if gb in dim.groupbys and gb.ref not in promoted_refs:
            promoted.append(gb)
            promoted_refs.add(gb.ref)
    others = [gb for gb in dim.groupbys if gb.ref not in promoted_refs]
    remaining_slots = max(config.top_k_attributes - len(promoted), 0)
    ranked_others = rank_groupby_attributes(
        subspace, rollups, others, config.measure_name,
        interestingness, top_k=remaining_slots,
        num_buckets=config.num_buckets,
    ) if remaining_slots and others else []

    selected: list[tuple[GroupByAttribute, float, bool]] = [
        (gb, float("inf"), True) for gb in promoted
    ]
    selected.extend((r.attribute, r.score, False) for r in ranked_others)
    if not selected:
        return None

    # all selected categorical attributes rank their instances in one
    # fused multi-partition query per space (DS' + each roll-up)
    categorical = [gb for gb, _, _ in selected
                   if gb.kind is not AttributeKind.NUMERICAL]
    instance_lists = rank_instances_batch(
        subspace, rollups, categorical, config.measure_name,
        top_k=config.top_k_instances,
    ) if categorical else {}

    attributes = []
    for gb, score, is_promoted in selected:
        if gb.kind is AttributeKind.NUMERICAL:
            entries = _numerical_entries(subspace, rollups, gb, config)
        else:
            entries = tuple(
                FacetEntry(str(r.value), r.value, r.aggregate, r.score)
                for r in instance_lists[gb]
            )
        if not entries:
            continue
        attributes.append(
            FacetAttribute(gb, score, is_promoted, entries)
        )
    if not attributes:
        return None
    return DynamicFacet(dim.name, tuple(attributes))


def apply_modifier(interface: FacetedInterface, modifier,
                   targets: Sequence[GroupByAttribute] = ()
                   ) -> FacetedInterface:
    """Re-shape facet entries per a pattern-match :class:`Modifier`.

    "top 3" / "lowest" style hints never filter the subspace (§4 keeps
    keywords non-predicative); they only re-order and truncate the entry
    lists shown for the hinted attributes.  ``targets`` limits the
    rewrite to specific group-bys (the modifier's own group-by hints);
    when empty, every attribute's entries are reshaped.
    """
    if modifier is None or not modifier.active:
        return interface
    target_refs = {gb.ref for gb in targets}
    facets = []
    for facet in interface.facets:
        attributes = []
        for attr in facet.attributes:
            if target_refs and attr.attribute.ref not in target_refs:
                attributes.append(attr)
                continue
            entries = attr.entries
            if modifier.order == "desc":
                entries = tuple(sorted(
                    entries, key=lambda e: (-e.aggregate, e.label)))
            elif modifier.order == "asc":
                entries = tuple(sorted(
                    entries, key=lambda e: (e.aggregate, e.label)))
            if modifier.limit is not None:
                entries = entries[:modifier.limit]
            attributes.append(FacetAttribute(
                attr.attribute, attr.score, attr.promoted, entries))
        facets.append(DynamicFacet(facet.dimension, tuple(attributes)))
    return FacetedInterface(
        subspace=interface.subspace,
        total_aggregate=interface.total_aggregate,
        facets=tuple(facets),
    )


def _safe_total(subspace: Subspace, config: ExploreConfig,
                budget) -> float:
    """G(DS') even under an exhausted budget: fall back to the local
    unbudgeted fold over the already-materialised rows (one cheap pass)
    so a partial interface still reports its subspace total."""
    try:
        return subspace.aggregate(config.measure_name)
    except ResourceExhausted as exc:
        if budget is None:
            raise
        budget.record_truncation(
            "total", exc.reason,
            "subspace total computed locally outside the engine")
        unbound = Subspace(subspace.schema, subspace.fact_rows,
                           subspace.label)
        return unbound.aggregate(config.measure_name)
