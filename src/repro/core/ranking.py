"""Star-net ranking (paper §4.4).

The standard score is

    SCORE(SN, q) =
        sum_over_hit_groups( avg_hit_sim / (1 + ln|HG|) ) / |SN|^2

where each hit's similarity is Sim(h.val, q) against the *full* query.
Two normalisations act on top of the raw IR scores:

* **group size** — dividing a group's average similarity by
  ``1 + ln|HG|`` penalises domains where the keyword sprays across many
  instances ("California Street" addresses);
* **group number** — dividing by ``|SN|^2`` prioritises star nets where
  several keywords land in the *same* attribute instance ("San Jose" as a
  city beats "San Antonio" + "Jose").

Figure 4 of the paper ablates each normalisation and compares against a
baseline that simply averages the raw engine scores; all four methods are
implemented here.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .starnet import StarNet


class RankingMethod(enum.Enum):
    """The four ranking methods evaluated in Figure 4, plus the
    DISCOVER/DBXplorer-style size heuristic mentioned as related work
    ("rank tuples simply based on the size of the corresponding join
    networks") for additional comparison."""

    STANDARD = "standard"
    NO_GROUP_NUMBER_NORM = "no-group-number-norm"
    NO_GROUP_SIZE_NORM = "no-group-size-norm"
    BASELINE = "baseline"
    JOIN_SIZE = "join-size"


def _group_term(mean_sim: float, group_size: int, use_size_norm: bool) -> float:
    if use_size_norm:
        return mean_sim / (1.0 + math.log(group_size))
    return mean_sim


def score_star_net(star_net: StarNet,
                   method: RankingMethod = RankingMethod.STANDARD) -> float:
    """SCORE(SN, q) under one of the four ranking methods.

    Hits are assumed to already carry Sim(h.val, q) against the full query
    (as produced by :func:`repro.core.generation.rescore_group`).
    """
    if star_net.size == 0:
        return 0.0

    if method is RankingMethod.JOIN_SIZE:
        # DISCOVER-style: smaller join networks first, no IR scores at
        # all.  Size = number of join edges + number of hit groups.
        edges = sum(len(r.path_to_fact.steps) for r in star_net.rays)
        return 1.0 / (1.0 + edges + star_net.size)

    if method is RankingMethod.BASELINE:
        # Hristidis et al.-style baseline: the raw per-keyword engine
        # scores averaged over all hits, ignoring the group structure and
        # the full-query rescoring entirely.
        all_hits = [h for g in star_net.hit_groups for h in g.hits]
        return sum(h.raw_score for h in all_hits) / len(all_hits)

    use_size_norm = method is not RankingMethod.NO_GROUP_SIZE_NORM
    total = sum(
        _group_term(group.mean_score(), group.size, use_size_norm)
        for group in star_net.hit_groups
    )
    if method is RankingMethod.NO_GROUP_NUMBER_NORM:
        return total
    return total / (star_net.size ** 2)


@dataclass(frozen=True)
class ScoredStarNet:
    """A candidate star net with its ranking score.

    ``subspace_size`` is an optional fact-row-count preview attached when
    the caller asks for it — useful for showing the user how much data an
    interpretation covers before committing to the (more expensive)
    explore phase.
    """

    star_net: StarNet
    score: float
    subspace_size: int | None = None

    def __str__(self) -> str:
        size = "" if self.subspace_size is None \
            else f" ({self.subspace_size} facts)"
        return f"{self.star_net}  [{self.score:.6f}]{size}"


def rank_candidates(
    candidates: list[StarNet],
    method: RankingMethod = RankingMethod.STANDARD,
) -> list[ScoredStarNet]:
    """Score and sort candidates, best first.

    Ties break deterministically on the star net's textual form.
    """
    scored = [ScoredStarNet(sn, score_star_net(sn, method)) for sn in candidates]
    scored.sort(key=lambda s: (-s.score, str(s.star_net)))
    return scored
