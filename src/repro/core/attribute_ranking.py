"""Group-by attribute ranking via roll-up partitioning (paper §5.2).

For each candidate group-by attribute we build two aggregate series over
the same categories — X from the sub-dataspace DS', Y from a roll-up space
RUP(DS') — and hand them to an interestingness measure.  With several
roll-up dimensions, the paper keeps the worst (most interesting) score:
"We pick the worst score from all scores, so that the most dissimilar case
can be captured."

Categorical attributes partition by distinct value; numerical attributes
are first bucketized into basic intervals (:mod:`repro.core.bucketing`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..relational import vector
from ..warehouse.schema import AttributeKind, GroupByAttribute
from ..warehouse.subspace import Subspace
from .bucketing import (
    Bucketization,
    Interval,
    bucket_series,
    distinct_value_buckets,
    equal_width,
)
from .interestingness import InterestingnessMeasure

DEFAULT_NUM_BUCKETS = 40
"""The paper's default basic-interval count (§6.4 sets the system default
to 40 after the convergence study)."""


@dataclass(frozen=True)
class SeriesPair:
    """Aligned aggregate series (X over DS', Y over RUP(DS')) plus the
    category labels they cover."""

    categories: tuple
    subspace_series: tuple[float, ...]
    rollup_series: tuple[float, ...]


def categorical_series(
    subspace: Subspace,
    rollup: Subspace,
    gb: GroupByAttribute,
    measure_name: str,
) -> SeriesPair:
    """Series over DOM(DS', attr): one point per distinct categorical value.

    RUP(DS') is restricted to the categories that exist in DS' (the paper's
    PAR(RUP(DS'), attr) convention).
    """
    domain = subspace.domain(gb)
    x = subspace.partition_aggregates(gb, measure_name, domain=domain)
    y = rollup.partition_aggregates(gb, measure_name, domain=domain)
    return _series_pair(domain, x, y)


def _series_pair(domain, x: dict, y: dict) -> SeriesPair:
    return SeriesPair(
        categories=tuple(domain),
        subspace_series=tuple(float(x[c] or 0.0) for c in domain),
        rollup_series=tuple(float(y[c] or 0.0) for c in domain),
    )


def categorical_scores(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    candidates: Sequence[GroupByAttribute],
    measure_name: str,
    measure: InterestingnessMeasure,
) -> list[float]:
    """SCORE(attr, DS') for many categorical candidates at once.

    Score-identical to calling :func:`attribute_score` per candidate, but
    the per-space aggregation is fused: one multi-partition query over
    DS' plus one per roll-up space answers **all** candidates, instead of
    one query per (candidate, space) pair — the facet-construction hot
    path the paper's Table 2 workload exercises.
    """
    if not rollups:
        raise ValueError("at least one roll-up space is required")
    if not candidates:
        return []
    domains = [subspace.domain(gb) for gb in candidates]
    xs = subspace.multi_partition_aggregates(
        candidates, measure_name, domains=domains)
    scores: list[list[float]] = [[] for _ in candidates]
    for rollup in rollups:
        ys = rollup.multi_partition_aggregates(
            candidates, measure_name, domains=domains)
        for per_candidate, domain, x, y in zip(scores, domains, xs, ys):
            if not domain:
                continue  # nothing to partition: degenerate candidate
            pair = _series_pair(domain, x, y)
            per_candidate.append(
                measure.score_series(pair.subspace_series,
                                     pair.rollup_series)
            )
    return [max(s) if s else float("-inf") for s in scores]


def numerical_series(
    subspace: Subspace,
    rollup: Subspace,
    gb: GroupByAttribute,
    measure_name: str,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    buckets: Bucketization | None = None,
) -> tuple[SeriesPair, Bucketization]:
    """Series over basic intervals of the attribute domain.

    Bucket boundaries default to equal width over the *subspace's* value
    domain: the paper restricts PAR(RUP(DS'), attr) to the segments that
    also exist in PAR(DS', attr), so roll-up values outside DS''s range
    carry no information and would only dilute the bucket resolution.
    Buckets empty in DS' are additionally dropped from both series.

    Returns the (possibly masked) series pair and the bucketization used.
    """
    schema = subspace.schema
    measure_vector = schema.measure_vector(measure_name)
    sub_values = subspace.groupby_values(gb)
    roll_values = rollup.groupby_values(gb)
    if buckets is None:
        domain_values = [v for v in sub_values if v is not None]
        if not domain_values:
            raise ValueError(
                f"attribute {gb.ref} has no non-null values in the subspace"
            )
        buckets = equal_width(min(domain_values), max(domain_values), num_buckets)
    sub_weights = vector.take(measure_vector, subspace.fact_rows)
    roll_weights = vector.take(measure_vector, rollup.fact_rows)
    x = bucket_series(sub_values, sub_weights, buckets)
    y = bucket_series(roll_values, roll_weights, buckets)
    # Restrict to segments that exist in DS' by *merging* each DS'-empty
    # bucket into its left non-empty neighbour (leading empties merge
    # right).  Dropping them instead would discard roll-up mass that the
    # distinct-value ground truth keeps, so the correlation would not
    # converge with the bucket count.
    sub_counts = bucket_series(sub_values, [1.0] * len(sub_values), buckets)
    anchors = [i for i, count in enumerate(sub_counts) if count > 0]
    if not anchors:
        raise ValueError(
            f"attribute {gb.ref} has no in-domain values in the subspace"
        )
    merged_x = [0.0] * len(anchors)
    merged_y = [0.0] * len(anchors)
    spans: list[list[int]] = [[] for _ in anchors]
    anchor_idx = 0
    for i in range(len(buckets)):
        if anchor_idx + 1 < len(anchors) and i >= anchors[anchor_idx + 1]:
            anchor_idx += 1
        merged_x[anchor_idx] += x[i]
        merged_y[anchor_idx] += y[i]
        spans[anchor_idx].append(i)
    categories = []
    for span in spans:
        first = buckets.intervals[span[0]]
        last = buckets.intervals[span[-1]]
        categories.append(Interval(first.low, last.high, last.closed_right))
    pair = SeriesPair(
        categories=tuple(categories),
        subspace_series=tuple(merged_x),
        rollup_series=tuple(merged_y),
    )
    return pair, buckets


def ground_truth_series(
    subspace: Subspace,
    rollup: Subspace,
    gb: GroupByAttribute,
    measure_name: str,
) -> SeriesPair:
    """Series with one bucket per distinct value — the §6.4 ground truth:
    "each distinct value from the subspace has its own bucket"."""
    sub_values = [v for v in subspace.groupby_values(gb) if v is not None]
    buckets = distinct_value_buckets(sub_values)
    pair, _ = numerical_series(
        subspace, rollup, gb, measure_name, buckets=buckets
    )
    return pair


def attribute_score(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    gb: GroupByAttribute,
    measure_name: str,
    measure: InterestingnessMeasure,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> float:
    """SCORE(attr, DS') combined over all roll-up spaces (worst-case pick).

    Eq. (1) instantiated through the interestingness measure; with several
    hitted dimensions the maximum (most interesting) score wins.
    """
    if not rollups:
        raise ValueError("at least one roll-up space is required")
    scores = []
    for rollup in rollups:
        if gb.kind is AttributeKind.NUMERICAL:
            try:
                pair, _ = numerical_series(
                    subspace, rollup, gb, measure_name, num_buckets
                )
            except ValueError:
                continue
        else:
            pair = categorical_series(subspace, rollup, gb, measure_name)
        if not pair.categories:
            continue  # nothing to partition: degenerate for this roll-up
        scores.append(
            measure.score_series(pair.subspace_series, pair.rollup_series)
        )
    if not scores:
        return float("-inf")
    return max(scores)


@dataclass(frozen=True)
class RankedAttribute:
    """A group-by candidate with its interestingness score."""

    attribute: GroupByAttribute
    score: float


def rank_groupby_attributes(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    candidates: Sequence[GroupByAttribute],
    measure_name: str,
    measure: InterestingnessMeasure,
    top_k: int | None = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> list[RankedAttribute]:
    """Rank candidate group-by attributes of one dimension, best first.

    Candidates whose partitions are degenerate (empty domains) sink to the
    bottom with -inf scores and are dropped when ``top_k`` is set.

    Categorical candidates are scored in one fused batch per space
    (:func:`categorical_scores`); numerical candidates keep their
    per-candidate bucketized path.
    """
    categorical = [gb for gb in candidates
                   if gb.kind is not AttributeKind.NUMERICAL]
    batched = dict(zip(
        categorical,
        categorical_scores(subspace, rollups, categorical,
                           measure_name, measure),
    )) if categorical else {}
    ranked = [
        RankedAttribute(
            gb,
            batched[gb] if gb in batched
            else attribute_score(subspace, rollups, gb, measure_name,
                                 measure, num_buckets),
        )
        for gb in candidates
    ]
    ranked.sort(key=lambda r: (-r.score, str(r.attribute.ref)))
    if top_k is not None:
        ranked = [r for r in ranked if r.score != float("-inf")][:top_k]
    return ranked
