"""Numerical domain bucketization (paper §5.2.2).

Numerical group-by candidates are split into *basic intervals* before any
correlation is computed: equal-width buckets over the attribute's domain in
the roll-up space (which contains the sub-dataspace's domain).  The paper's
empirical claim — reproduced in Figures 5/6 — is that beyond roughly 40-80
buckets the correlation value converges to the ground truth, where ground
truth assigns every distinct value its own bucket.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Interval:
    """A half-open numeric interval [low, high); the last interval of a
    domain is closed on the right so the domain maximum is covered."""

    low: float
    high: float
    closed_right: bool = False

    def contains(self, value: float) -> bool:
        """Membership test honouring the right-closure flag."""
        if self.closed_right:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    def __str__(self) -> str:
        right = "]" if self.closed_right else ")"
        return f"[{self.low:g}, {self.high:g}{right}"


@dataclass(frozen=True)
class Bucketization:
    """A partition of a numeric domain into contiguous intervals."""

    intervals: tuple[Interval, ...]

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ValueError("bucketization needs at least one interval")

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def boundaries(self) -> list[float]:
        """Interior boundaries (len(intervals) - 1 values)."""
        return [iv.high for iv in self.intervals[:-1]]

    def assign(self, value: float) -> int | None:
        """Index of the interval containing ``value``, or None if outside."""
        if value < self.intervals[0].low:
            return None
        last = self.intervals[-1]
        if value > last.high or (value == last.high and not last.closed_right):
            return None
        idx = bisect.bisect_right(self.boundaries, value)
        return min(idx, len(self.intervals) - 1)


def equal_width(low: float, high: float, num_buckets: int) -> Bucketization:
    """Equal-width bucketization of [low, high] into ``num_buckets`` parts.

    Degenerate domains (low == high) collapse to a single closed interval.
    """
    if num_buckets < 1:
        raise ValueError("num_buckets must be >= 1")
    if high < low:
        raise ValueError(f"empty domain: high {high} < low {low}")
    if high == low:
        return Bucketization((Interval(low, high, closed_right=True),))
    width = (high - low) / num_buckets
    intervals = []
    for i in range(num_buckets):
        lo = low + i * width
        hi = low + (i + 1) * width if i < num_buckets - 1 else high
        intervals.append(Interval(lo, hi, closed_right=(i == num_buckets - 1)))
    return Bucketization(tuple(intervals))


def distinct_value_buckets(values: Sequence[float]) -> Bucketization:
    """Ground-truth bucketization: one bucket per distinct value.

    This realises the paper's ground truth — "dividing the attribute domain
    into smallest intervals such that each distinct value from the subspace
    has its own bucket".
    """
    distinct = sorted(set(values))
    if not distinct:
        raise ValueError("no values to bucketize")
    if len(distinct) == 1:
        return Bucketization((Interval(distinct[0], distinct[0], True),))
    intervals = []
    for i, value in enumerate(distinct):
        low = value
        if i + 1 < len(distinct):
            high = distinct[i + 1]
            intervals.append(Interval(low, high, closed_right=False))
        else:
            intervals.append(Interval(low, low, closed_right=True))
    return Bucketization(tuple(intervals))


def bucket_series(
    values: Sequence[float],
    weights: Sequence[float],
    buckets: Bucketization,
) -> list[float]:
    """Aggregate (sum) ``weights`` into ``buckets`` keyed by ``values``.

    Produces one aggregation value per interval — the "new attribute
    values" of §5.2.2.  Values falling outside the bucketized domain (or
    None) are skipped.
    """
    series = [0.0] * len(buckets)
    for value, weight in zip(values, weights):
        if value is None or weight is None:
            continue
        idx = buckets.assign(value)
        if idx is not None:
            series[idx] += weight
    return series


def nonempty_mask(series: Sequence[float], reference: Sequence[float]) -> list[int]:
    """Indices where ``reference`` (the DS' series) is non-zero.

    Implements the paper's restriction of PAR(RUP(DS')) to the segments
    that also exist in PAR(DS').
    """
    return [i for i, value in enumerate(reference) if value != 0.0]
