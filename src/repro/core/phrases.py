"""Phrase-query handling (paper §4.3).

Within a candidate star seed, two hit groups drawn from *different* hit
sets merge when (a) they come from the same attribute domain and (b) their
hit intersection is non-empty.  The merged group is replaced by the
intersection, and its hits are re-scored against the merged phrase query —
so ``San Jose`` (the city) ends up with a much higher score than the noise
hits ``San Antonio`` and ``Jose`` (the first name).

The non-empty-intersection condition deliberately keeps side-by-side
slices apart: "Software Electronics" stays two independent product-group
selections.
"""

from __future__ import annotations

from ..textindex.index import AttributeTextIndex, SearchHit
from .hits import HitGroup


def try_merge(
    left: HitGroup,
    right: HitGroup,
    index: AttributeTextIndex,
) -> HitGroup | None:
    """Merge two hit groups per the §4.3 conditions, or return None.

    The merged group keeps only hits present in both groups (the
    intersection), re-scored with the concatenated keyword phrase.
    """
    if left.domain != right.domain:
        return None
    shared_values = set(left.values) & set(right.values)
    if not shared_values:
        return None
    keywords = left.keywords + right.keywords
    phrase = " ".join(keywords)
    raw_left = {h.value: h.raw_score for h in left.hits}
    raw_right = {h.value: h.raw_score for h in right.hits}
    merged_hits = []
    for value in sorted(shared_values):
        score = index.score_value(left.table, left.attribute, value, phrase)
        # the retrieval score stays a per-keyword engine score (mean of the
        # two constituents) — the Figure 4 baseline must not benefit from
        # phrase re-scoring, which Hristidis et al. do not perform
        raw = (raw_left[value] + raw_right[value]) / 2.0
        merged_hits.append(
            SearchHit(left.table, left.attribute, value, score,
                      retrieval_score=raw)
        )
    merged_hits.sort(key=lambda h: (-h.score, h.value))
    return HitGroup(left.table, left.attribute, tuple(merged_hits), keywords)


def merge_seed_groups(
    groups: tuple[HitGroup, ...],
    index: AttributeTextIndex,
) -> tuple[HitGroup, ...]:
    """Apply phrase merging exhaustively across a star seed's hit groups.

    Generalises pairwise merging to phrases of more than two keywords by
    iterating to a fixed point (the paper: "the above merge process can be
    easily generalized to cases beyond two hit groups").
    """
    current = list(groups)
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                merged = try_merge(current[i], current[j], index)
                if merged is not None:
                    current[i] = merged
                    del current[j]
                    changed = True
                    break
            if changed:
                break
    return tuple(current)
