"""Alternative interval-merge algorithms (the paper's §7 extension).

"Our simulated annealing solution for merging numerical intervals has
been shown to be effective, but we hypothesize the existence of more
efficient algorithms for finding partitions."  This module supplies two:

* :func:`exhaustive_splits` — the exact optimum by enumerating every
  valid splitting (with skew-constraint pruning).  Feasible for the basic
  interval counts the system actually produces (m ≲ 25, K ≲ 7); used as
  the gold standard in the ablation benchmark.
* :func:`beam_splits` — a left-to-right beam search over splitting
  points, scoring partial states by the objective over the segments
  formed so far plus the unsplit remainder.  Near-optimal at a fraction
  of the annealing iterations.

Both return the same :class:`~repro.core.annealing.AnnealingResult`
shape so they are drop-in comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .annealing import (
    AnnealingResult,
    is_valid_splitting,
    merged_correlation,
)
from .interestingness import pearson_correlation


def _result(x: Sequence[float], y: Sequence[float], splits: tuple[int, ...],
            basic: float, evaluations: int) -> AnnealingResult:
    merged = merged_correlation(x, y, splits)
    return AnnealingResult(
        splits=splits,
        merged_correlation=merged,
        basic_correlation=basic,
        error_history=[abs(merged - basic)] * max(evaluations, 1),
    )


def exhaustive_splits(
    x: Sequence[float],
    y: Sequence[float],
    num_intervals: int,
    skew_limit: float = 4.0,
    max_states: int = 2_000_000,
) -> AnnealingResult:
    """The exact optimal splitting under the L-skew constraint.

    Enumerates split positions recursively, pruning branches whose
    segment lengths already violate the constraint's feasible bounds.
    Raises :class:`ValueError` when the state space exceeds
    ``max_states`` (use :func:`beam_splits` there instead).
    """
    m = len(x)
    if m != len(y):
        raise ValueError(f"series length mismatch: {m} vs {len(y)}")
    k = num_intervals
    if k < 1 or k > m:
        raise ValueError(f"cannot split {m} basic intervals into {k}")
    basic = pearson_correlation(x, y)
    if k == 1:
        return _result(x, y, (), basic, 1)

    best_splits: tuple[int, ...] | None = None
    best_error = float("inf")
    evaluations = 0
    current: list[int] = []

    def recurse(position: int, segments_left: int) -> None:
        nonlocal best_splits, best_error, evaluations
        if evaluations > max_states:
            raise ValueError(
                f"exhaustive search exceeds {max_states} states; "
                "use beam_splits for this size"
            )
        if segments_left == 1:
            splits = tuple(current)
            if not is_valid_splitting(splits, m, skew_limit):
                return
            evaluations += 1
            error = abs(merged_correlation(x, y, splits) - basic)
            if error < best_error:
                best_error = error
                best_splits = splits
            return
        # the remaining segments each need at least one basic interval
        for split in range(position + 1, m - segments_left + 2):
            current.append(split)
            recurse(split, segments_left - 1)
            current.pop()

    recurse(0, k)
    if best_splits is None:
        raise ValueError(
            f"no valid splitting of {m} intervals into {k} segments "
            f"with skew limit {skew_limit}"
        )
    return _result(x, y, best_splits, basic, evaluations)


@dataclass(frozen=True)
class _BeamState:
    splits: tuple[int, ...]
    score: float


def beam_splits(
    x: Sequence[float],
    y: Sequence[float],
    num_intervals: int,
    skew_limit: float = 4.0,
    beam_width: int = 64,
) -> AnnealingResult:
    """Beam search over splitting points, left to right.

    Each level fixes the next split position; partial states are scored by
    the objective computed over the closed segments plus the open
    remainder as one segment — an admissible-enough heuristic in practice
    (the ablation benchmark quantifies it against the exact optimum).
    """
    m = len(x)
    if m != len(y):
        raise ValueError(f"series length mismatch: {m} vs {len(y)}")
    k = num_intervals
    if k < 1 or k > m:
        raise ValueError(f"cannot split {m} basic intervals into {k}")
    basic = pearson_correlation(x, y)
    if k == 1:
        return _result(x, y, (), basic, 1)

    def partial_score(splits: tuple[int, ...]) -> float:
        return abs(merged_correlation(x, y, splits) - basic)

    beam = [_BeamState((), 0.0)]
    evaluations = 0
    for level in range(1, k):
        segments_after = k - level
        candidates: list[_BeamState] = []
        for state in beam:
            start = state.splits[-1] if state.splits else 0
            for split in range(start + 1, m - segments_after + 1):
                splits = state.splits + (split,)
                evaluations += 1
                candidates.append(_BeamState(splits,
                                             partial_score(splits)))
        if not candidates:
            raise ValueError("beam search found no extension")
        candidates.sort(key=lambda s: (s.score, s.splits))
        beam = candidates[:beam_width]

    valid = [s for s in beam if is_valid_splitting(s.splits, m, skew_limit)]
    if not valid:
        # fall back to the best beam state repaired towards equal width
        raise ValueError(
            f"beam search found no valid splitting for skew limit "
            f"{skew_limit}; widen the beam"
        )
    final = [(abs(merged_correlation(x, y, s.splits) - basic), s.splits)
             for s in valid]
    final.sort()
    _error, best = final[0]
    return _result(x, y, best, basic, evaluations)
