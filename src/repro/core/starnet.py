"""Star seeds, rays, and star nets (paper §4.2).

A *star seed* picks one hit group per keyword; a *star net* additionally
fixes a join path from every hit group's table to the fact table.  The
star net is the unit the user disambiguates among — it fully determines a
sub-dataspace.

The OLAP-specific join semantics of §4.2 are implemented here:

* every star net contains the fact table and all rays join *through* it
  (no DISCOVER-style dimension-to-dimension joins);
* rays whose paths lie in the same dimension share table aliases when the
  path prefixes agree (intersection semantics, e.g. two hierarchies of the
  Product dimension both meeting at the Product table);
* the same physical table reached through different dimensions gets
  distinct aliases (Location as customer-city vs store-city).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

from ..plan.compile import compile_plan
from ..plan.nodes import Filter, PlanNode, Scan, SemiJoin
from ..relational.sql import JoinQuery, qualify_measure
from ..warehouse.graph import JoinPath
from ..warehouse.rollup import select_rows_by_values, slice_facts
from ..warehouse.schema import StarSchema
from ..warehouse.subspace import Subspace
from .hits import HitGroup


@dataclass(frozen=True)
class StarSeed:
    """One hit group chosen from each keyword's hit set."""

    hit_groups: tuple[HitGroup, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(g) for g in self.hit_groups) + "}"


@dataclass(frozen=True)
class Ray:
    """One hit group plus its join path to the fact table.

    ``path_to_fact`` is oriented hit-table → fact; an empty path means the
    hit group matched a fact-table attribute (selecting fact points
    directly, per the paper's "hit groups from the fact table further
    select a subset of data points").

    ``dimension`` is the dimension the path runs through (None for
    fact-table hits); it drives alias merging.
    """

    hit_group: HitGroup
    path_to_fact: JoinPath
    dimension: str | None

    def __str__(self) -> str:
        if not self.path_to_fact.steps:
            return f"{self.hit_group} (fact attribute)"
        return f"{self.hit_group} via {self.path_to_fact}"


@dataclass(frozen=True)
class StarNet:
    """A candidate interpretation: rays joined through the fact table.

    ``measure_predicates`` (the §7 extension) are deterministic fact-level
    filters parsed from keywords like ``revenue>5000``; they constrain the
    subspace but carry no textual ambiguity and do not affect ranking.
    """

    fact_table: str
    rays: tuple[Ray, ...]
    measure_predicates: tuple = ()

    @property
    def size(self) -> int:
        """|SN|: the number of hit groups in the star net."""
        return len(self.rays)

    @property
    def hit_groups(self) -> tuple[HitGroup, ...]:
        """The hit groups, in ray order."""
        return tuple(r.hit_group for r in self.rays)

    @property
    def hitted_dimensions(self) -> tuple[str, ...]:
        """Names of dimensions touched by some ray (deduplicated, ordered)."""
        seen: list[str] = []
        for ray in self.rays:
            if ray.dimension is not None and ray.dimension not in seen:
                seen.append(ray.dimension)
        return tuple(seen)

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"StarNet through {self.fact_table}:"]
        for ray in self.rays:
            lines.append(f"  - {ray}")
        for predicate in self.measure_predicates:
            lines.append(f"  - measure filter: {predicate}")
        return "\n".join(lines)

    def __str__(self) -> str:
        parts = [str(r.hit_group) for r in self.rays]
        parts.extend(f"[{p}]" for p in self.measure_predicates)
        return " & ".join(parts)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def ray_facts(self, schema: StarSchema, ray: Ray) -> set[int]:
        """Fact rows selected by one ray (OR across the hit group's values)."""
        from ..warehouse.schema import AttributeRef

        ref = AttributeRef(ray.hit_group.table, ray.hit_group.attribute)
        rows = select_rows_by_values(schema, ref, ray.hit_group.values)
        return slice_facts(schema, ray.hit_group.table, rows, ray.path_to_fact)

    def evaluate(self, schema: StarSchema) -> Subspace:
        """The sub-dataspace DS': intersection of all rays' fact rows
        (further constrained by any measure predicates)."""
        if self.rays:
            row_sets = [self.ray_facts(schema, ray) for ray in self.rays]
            rows = reduce(set.intersection, row_sets)
        else:
            rows = set(range(schema.num_fact_rows))
        if self.measure_predicates:
            from .measure_hits import measure_fact_rows

            for predicate in self.measure_predicates:
                rows &= measure_fact_rows(schema, predicate)
        return Subspace.of(schema, rows, label=str(self))

    # ------------------------------------------------------------------
    # logical plan / SQL rendering
    # ------------------------------------------------------------------
    def to_plan(self, schema: StarSchema) -> PlanNode:
        """The row-producing logical plan this star net denotes: a scan of
        the fact table narrowed by one semi-join per ray (carrying the
        ray's dimension for alias merging) and one filter per measure
        predicate."""
        node: PlanNode = Scan(self.fact_table)
        for ray in self.rays:
            node = SemiJoin(
                child=node,
                source_table=ray.hit_group.table,
                column=ray.hit_group.attribute,
                values=tuple(ray.hit_group.values),
                path=ray.path_to_fact,
                dimension=ray.dimension,
            )
        if self.measure_predicates:
            from ..relational.expressions import Col, Compare, Const

            for mp in self.measure_predicates:
                if mp.is_measure:
                    expr = schema.measures[mp.target].expression
                else:
                    expr = Col(mp.target)
                node = Filter(node,
                              predicate=Compare(mp.op, expr, Const(mp.value)))
        return node

    def to_join_query(self, schema: StarSchema, measure_name: str,
                      group_by: list[tuple[str, str]] | None = None) -> JoinQuery:
        """Compile this star net into a fact-rooted :class:`JoinQuery`.

        Delegates to the plan compiler (:mod:`repro.plan.compile`), which
        implements the alias-merge semantics: walking each ray's path
        fact → hit table, a step reuses an existing alias when a ray of
        the *same dimension* already took the identical step from the same
        alias; otherwise it mints a fresh alias.
        """
        measure = schema.measures[measure_name]
        query = compile_plan(self.to_plan(schema), schema.database)
        query.aggregate = measure.aggregate
        query.measure_sql = qualify_measure(str(measure.expression), "f")
        query.measure_expr = measure.expression
        query.group_by = list(group_by or [])
        return query

    def to_sql(self, schema: StarSchema, measure_name: str) -> str:
        """The SQL text this star net denotes (aggregate over the subspace)."""
        return self.to_join_query(schema, measure_name).to_sql()
