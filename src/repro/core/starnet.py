"""Star seeds, rays, and star nets (paper §4.2).

A *star seed* picks one hit group per keyword; a *star net* additionally
fixes a join path from every hit group's table to the fact table.  The
star net is the unit the user disambiguates among — it fully determines a
sub-dataspace.

The OLAP-specific join semantics of §4.2 are implemented here:

* every star net contains the fact table and all rays join *through* it
  (no DISCOVER-style dimension-to-dimension joins);
* rays whose paths lie in the same dimension share table aliases when the
  path prefixes agree (intersection semantics, e.g. two hierarchies of the
  Product dimension both meeting at the Product table);
* the same physical table reached through different dimensions gets
  distinct aliases (Location as customer-city vs store-city).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

from ..relational.expressions import isin
from ..relational.sql import AliasFilter, JoinEdge, JoinQuery
from ..warehouse.graph import JoinPath
from ..warehouse.rollup import select_rows_by_values, slice_facts
from ..warehouse.schema import StarSchema
from ..warehouse.subspace import Subspace
from .hits import HitGroup


@dataclass(frozen=True)
class StarSeed:
    """One hit group chosen from each keyword's hit set."""

    hit_groups: tuple[HitGroup, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(g) for g in self.hit_groups) + "}"


@dataclass(frozen=True)
class Ray:
    """One hit group plus its join path to the fact table.

    ``path_to_fact`` is oriented hit-table → fact; an empty path means the
    hit group matched a fact-table attribute (selecting fact points
    directly, per the paper's "hit groups from the fact table further
    select a subset of data points").

    ``dimension`` is the dimension the path runs through (None for
    fact-table hits); it drives alias merging.
    """

    hit_group: HitGroup
    path_to_fact: JoinPath
    dimension: str | None

    def __str__(self) -> str:
        if not self.path_to_fact.steps:
            return f"{self.hit_group} (fact attribute)"
        return f"{self.hit_group} via {self.path_to_fact}"


@dataclass(frozen=True)
class StarNet:
    """A candidate interpretation: rays joined through the fact table.

    ``measure_predicates`` (the §7 extension) are deterministic fact-level
    filters parsed from keywords like ``revenue>5000``; they constrain the
    subspace but carry no textual ambiguity and do not affect ranking.
    """

    fact_table: str
    rays: tuple[Ray, ...]
    measure_predicates: tuple = ()

    @property
    def size(self) -> int:
        """|SN|: the number of hit groups in the star net."""
        return len(self.rays)

    @property
    def hit_groups(self) -> tuple[HitGroup, ...]:
        """The hit groups, in ray order."""
        return tuple(r.hit_group for r in self.rays)

    @property
    def hitted_dimensions(self) -> tuple[str, ...]:
        """Names of dimensions touched by some ray (deduplicated, ordered)."""
        seen: list[str] = []
        for ray in self.rays:
            if ray.dimension is not None and ray.dimension not in seen:
                seen.append(ray.dimension)
        return tuple(seen)

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"StarNet through {self.fact_table}:"]
        for ray in self.rays:
            lines.append(f"  - {ray}")
        for predicate in self.measure_predicates:
            lines.append(f"  - measure filter: {predicate}")
        return "\n".join(lines)

    def __str__(self) -> str:
        parts = [str(r.hit_group) for r in self.rays]
        parts.extend(f"[{p}]" for p in self.measure_predicates)
        return " & ".join(parts)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def ray_facts(self, schema: StarSchema, ray: Ray) -> set[int]:
        """Fact rows selected by one ray (OR across the hit group's values)."""
        from ..warehouse.schema import AttributeRef

        ref = AttributeRef(ray.hit_group.table, ray.hit_group.attribute)
        rows = select_rows_by_values(schema, ref, ray.hit_group.values)
        return slice_facts(schema, ray.hit_group.table, rows, ray.path_to_fact)

    def evaluate(self, schema: StarSchema) -> Subspace:
        """The sub-dataspace DS': intersection of all rays' fact rows
        (further constrained by any measure predicates)."""
        if self.rays:
            row_sets = [self.ray_facts(schema, ray) for ray in self.rays]
            rows = reduce(set.intersection, row_sets)
        else:
            rows = set(range(schema.num_fact_rows))
        if self.measure_predicates:
            from .measure_hits import measure_fact_rows

            for predicate in self.measure_predicates:
                rows &= measure_fact_rows(schema, predicate)
        return Subspace.of(schema, rows, label=str(self))

    # ------------------------------------------------------------------
    # SQL rendering
    # ------------------------------------------------------------------
    def to_join_query(self, schema: StarSchema, measure_name: str,
                      group_by: list[tuple[str, str]] | None = None) -> JoinQuery:
        """Compile this star net into a fact-rooted :class:`JoinQuery`.

        Alias assignment implements the merge semantics: walking each ray's
        path fact → hit table, a step reuses an existing alias when a ray of
        the *same dimension* already took the identical step from the same
        alias; otherwise it mints a fresh alias.
        """
        measure = schema.measures[measure_name]
        query = JoinQuery(
            fact_table=self.fact_table,
            fact_alias="f",
            aggregate=measure.aggregate,
            measure_sql=_qualified_measure_sql(str(measure.expression), "f"),
            measure_expr=measure.expression,
            group_by=list(group_by or []),
        )
        # (dimension, alias_of_source, fk_name, towards_parent) -> alias
        step_alias: dict[tuple, str] = {}
        alias_count = 0
        for ray in self.rays:
            alias = "f"
            for step in ray.path_to_fact.reversed().steps:
                key = (ray.dimension, alias, step.fk.name, step.towards_parent)
                if key in step_alias:
                    alias = step_alias[key]
                    continue
                alias_count += 1
                new_alias = f"t{alias_count}"
                query.edges.append(
                    JoinEdge(
                        left_alias=alias,
                        left_column=step.source_column,
                        right_table=step.target,
                        right_alias=new_alias,
                        right_column=step.target_column,
                    )
                )
                step_alias[key] = new_alias
                alias = new_alias
            predicate = isin(ray.hit_group.attribute, ray.hit_group.values)
            query.filters.append(AliasFilter(alias, predicate))
        if self.measure_predicates:
            from ..relational.expressions import Col, Compare, Const

            for mp in self.measure_predicates:
                if mp.is_measure:
                    expr = schema.measures[mp.target].expression
                else:
                    expr = Col(mp.target)
                query.filters.append(
                    AliasFilter("f", Compare(mp.op, expr, Const(mp.value)))
                )
        return query

    def to_sql(self, schema: StarSchema, measure_name: str) -> str:
        """The SQL text this star net denotes (aggregate over the subspace)."""
        return self.to_join_query(schema, measure_name).to_sql()


def _qualified_measure_sql(measure_sql: str, fact_alias: str) -> str:
    """Qualify bare identifiers in a rendered measure with the fact alias."""
    out: list[str] = []
    i = 0
    n = len(measure_sql)
    while i < n:
        ch = measure_sql[i]
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (measure_sql[j].isalnum() or measure_sql[j] == "_"):
                j += 1
            out.append(f"{fact_alias}.{measure_sql[i:j]}")
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)
