"""Attribute-instance ranking inside a chosen facet (paper §5.3.1, Eq. 2).

For a categorical attribute value ``cat_p`` the intra-attribute score is

    SCORE(cat_p, DS') =   G(DS'|cat_p)       / G(DS')
                        - G(RUP(DS')|cat_p)  / G(RUP(DS'))

— the deviation of the category's *share* of the subspace aggregate from
its share of the roll-up aggregate.  With several hitted dimensions the
scores of the roll-up partitionings must be combined; we keep the score of
largest magnitude (the most deviating case), consistent with the
worst-case combination used for attribute ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..warehouse.schema import GroupByAttribute
from ..warehouse.subspace import Subspace


@dataclass(frozen=True)
class RankedInstance:
    """One attribute value with its aggregate and deviation score."""

    value: object
    aggregate: float
    score: float


def instance_score(
    subspace: Subspace,
    rollup: Subspace,
    gb: GroupByAttribute,
    value,
    measure_name: str,
) -> float:
    """Eq. (2) for a single category against a single roll-up space."""
    total_sub = subspace.aggregate(measure_name)
    total_roll = rollup.aggregate(measure_name)
    sub_part = subspace.partition_aggregates(gb, measure_name, domain=[value])
    roll_part = rollup.partition_aggregates(gb, measure_name, domain=[value])
    share_sub = (sub_part[value] or 0.0) / total_sub if total_sub else 0.0
    share_roll = (roll_part[value] or 0.0) / total_roll if total_roll else 0.0
    return share_sub - share_roll


def rank_instances(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    gb: GroupByAttribute,
    measure_name: str,
    top_k: int | None = None,
) -> list[RankedInstance]:
    """Rank the categories of one attribute, most deviating first.

    The per-category score combines multiple roll-ups by maximum absolute
    deviation.  Ordering is by |score| descending (both surprisingly high
    and surprisingly low shares are interesting), ties broken by aggregate
    then value for determinism.
    """
    return rank_instances_batch(subspace, rollups, [gb], measure_name,
                                top_k=top_k)[gb]


def rank_instances_batch(
    subspace: Subspace,
    rollups: Sequence[Subspace],
    gbs: Sequence[GroupByAttribute],
    measure_name: str,
    top_k: int | None = None,
) -> dict[GroupByAttribute, list[RankedInstance]]:
    """:func:`rank_instances` for several attributes with fused queries.

    Result-identical to ranking each attribute separately, but each space
    (DS' and every roll-up) is partitioned by all attributes in one
    multi-partition query, so facet construction touches every space once
    per dimension instead of once per selected attribute.
    """
    gbs = list(gbs)
    if not gbs:
        return {}
    total_sub = subspace.aggregate(measure_name)
    domains = [subspace.domain(gb) for gb in gbs]
    sub_parts = subspace.multi_partition_aggregates(
        gbs, measure_name, domains=domains)

    # per roll-up: one fused partitioning, turned into per-gb share maps
    shares_roll: list[list[dict]] = [[] for _ in gbs]
    for rollup in rollups:
        total_roll = rollup.aggregate(measure_name)
        roll_parts = rollup.multi_partition_aggregates(
            gbs, measure_name, domains=domains)
        for index, (domain, roll_part) in enumerate(zip(domains, roll_parts)):
            shares_roll[index].append(
                {
                    value: ((roll_part[value] or 0.0) / total_roll
                            if total_roll else 0.0)
                    for value in domain
                }
            )

    out: dict[GroupByAttribute, list[RankedInstance]] = {}
    for gb, domain, sub_part, gb_shares in zip(gbs, domains, sub_parts,
                                               shares_roll):
        ranked: list[RankedInstance] = []
        for value in domain:
            aggregate = float(sub_part[value] or 0.0)
            share_sub = aggregate / total_sub if total_sub else 0.0
            scores = [share_sub - shares[value] for shares in gb_shares]
            best = max(scores, key=abs) if scores else 0.0
            ranked.append(RankedInstance(value, aggregate, best))
        ranked.sort(key=lambda r: (-abs(r.score), -r.aggregate, str(r.value)))
        if top_k is not None:
            ranked = ranked[:top_k]
        out[gb] = ranked
    return out
