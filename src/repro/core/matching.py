"""The pluggable keyword-matcher chain (interpretation stage 2).

The seed front end assumed every keyword resolves to a
:class:`~repro.core.hits.HitGroup` — a set of *cell values* the text
index found.  SODA-style keyword interpretation widens that: a keyword
may instead name a piece of *schema metadata* ("month" →
``DimDate.MonthName``), a *measure* ("revenue"), or take part in a
*business pattern* ("top 3", "by month") that compiles into
group-by/order/limit hints rather than predicates.

This module defines the typed :class:`MatchCandidate` the whole
pipeline speaks, and the three concrete matchers:

* :class:`ValueMatcher` — the existing text-index probe, emitting
  ``VALUE`` candidates with confidence 1.0 (an exact cell hit is the
  strongest evidence there is);
* :class:`MetadataMatcher` — table/attribute/measure names (CamelCase
  split + Porter stem) and the schema's
  :class:`~repro.core.synonyms.SynonymRegistry`;
* :class:`PatternMatcher` — multi-token business phrases, scanned
  *before* per-keyword matching so "top 3" is never mistaken for two
  independent keywords.

:class:`MatcherChain` runs them with fallback semantics: pattern spans
claim their tokens first, then each remaining keyword tries the value
matcher and falls back to metadata only when no cell value matched.
A query whose keywords all value-match therefore produces byte-identical
candidates to the pre-refactor front end.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Sequence

from ..textindex.index import AttributeTextIndex
from ..textindex.stemmer import stem
from ..warehouse.schema import GroupByAttribute, StarSchema
from .hits import HitGroup, retrieve_hit_groups
from .synonyms import SynonymRegistry

#: Matcher names in their default chain order.
DEFAULT_MATCHERS: tuple[str, ...] = ("value", "metadata", "pattern")

#: Comparatives that compile into an ordering hint without a count.
_DESC_WORDS = frozenset(
    {"highest", "largest", "biggest", "best", "most"})
_ASC_WORDS = frozenset(
    {"lowest", "smallest", "cheapest", "least", "worst", "fewest"})


class MatchKind(enum.Enum):
    """What a candidate contributes to an interpretation."""

    VALUE = "value"          # predicate group (table.attr IN values)
    ATTRIBUTE = "attribute"  # group-by attribute reference
    MEASURE = "measure"      # measure reference
    MODIFIER = "modifier"    # group-by/order/limit hints


@dataclass(frozen=True)
class Modifier:
    """Presentation hints a pattern compiles into (never predicates)."""

    group_by: tuple[GroupByAttribute, ...] = ()
    order: str | None = None  # "desc" | "asc"
    limit: int | None = None

    @property
    def active(self) -> bool:
        return bool(self.group_by or self.order or self.limit)

    def merged(self, other: "Modifier") -> "Modifier":
        """Combine two modifiers; the first one wins on conflicts."""
        group_by = list(self.group_by)
        for gb in other.group_by:
            if gb not in group_by:
                group_by.append(gb)
        return Modifier(
            group_by=tuple(group_by),
            order=self.order or other.order,
            limit=self.limit if self.limit is not None else other.limit,
        )

    def __str__(self) -> str:
        parts = []
        if self.group_by:
            parts.append("by " + ", ".join(str(gb.ref)
                                           for gb in self.group_by))
        if self.order:
            parts.append(f"order {self.order}")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return "; ".join(parts)


EMPTY_MODIFIER = Modifier()


@dataclass(frozen=True)
class MatchCandidate:
    """One way a keyword (or token span) can be interpreted.

    Exactly one payload field is set, per ``kind``; ``matcher`` records
    provenance (which chain stage produced it) and ``confidence`` is
    folded into the interpretation score downstream.
    """

    kind: MatchKind
    keywords: tuple[str, ...]
    matcher: str
    confidence: float
    hit_group: HitGroup | None = None
    attribute: GroupByAttribute | None = None
    measure: str | None = None
    modifier: Modifier | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0, 1], got {self.confidence}")

    @property
    def target(self) -> str:
        """A stable textual label of what was matched (for dedup/sort)."""
        if self.kind is MatchKind.VALUE:
            return f"{self.hit_group.table}.{self.hit_group.attribute}"
        if self.kind is MatchKind.ATTRIBUTE:
            return str(self.attribute.ref)
        if self.kind is MatchKind.MEASURE:
            return f"measure:{self.measure}"
        return str(self.modifier)

    def __str__(self) -> str:
        words = " ".join(self.keywords)
        return (f"{words!r} -> {self.kind.value} {self.target} "
                f"[{self.matcher} {self.confidence:.2f}]")


@dataclass(frozen=True)
class MatchSlot:
    """One consumed token span with its alternative candidates.

    Enumeration takes the cross product over slots, picking one
    candidate per slot — exactly the per-keyword hit-group cross
    product of the legacy front end, generalised to mixed kinds.
    """

    keywords: tuple[str, ...]
    candidates: tuple[MatchCandidate, ...]
    matcher: str


@dataclass(frozen=True)
class PatternSpan:
    """A pattern match over ``tokens[start:stop]``."""

    start: int
    stop: int
    candidates: tuple[MatchCandidate, ...]


@dataclass
class MatchOutcome:
    """Everything the match stage hands to enumeration + diagnostics."""

    slots: list[MatchSlot] = field(default_factory=list)
    unmatched: tuple[str, ...] = ()
    skipped: tuple[str, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)


def camel_words(name: str) -> list[str]:
    """Lowercased word split of an identifier: CamelCase, digits, and
    separators all break words (``"CalendarYearName"`` → ``["calendar",
    "year", "name"]``)."""
    parts = re.findall(r"[A-Z]+(?![a-z])|[A-Z][a-z]+|[a-z]+|\d+", name)
    return [p.lower() for p in parts]


# ----------------------------------------------------------------------
# concrete matchers
# ----------------------------------------------------------------------
class ValueMatcher:
    """The pre-refactor behaviour: probe the text index per keyword."""

    name = "value"

    def __init__(self, index: AttributeTextIndex):
        self.index = index

    def match_keyword(self, keyword: str,
                      config) -> list[MatchCandidate]:
        groups = retrieve_hit_groups(
            self.index, keyword,
            max_hits=config.max_hits_per_keyword,
            max_groups=config.max_groups_per_keyword,
            fuzzy=config.fuzzy_matching,
        )
        return [
            MatchCandidate(
                kind=MatchKind.VALUE, keywords=(keyword,),
                matcher=self.name, confidence=1.0, hit_group=group,
                detail=f"{group.size} hits in {group.table}."
                       f"{group.attribute}",
            )
            for group in groups
        ]


class MetadataMatcher:
    """Schema metadata + synonym registry lookups.

    The name table is built once per schema: every declared group-by
    attribute contributes its full column name (confidence 0.9) and
    each CamelCase word of it (0.7); measures contribute their names
    (0.9); a dimension-table name match expands to that table's first
    few group-bys (0.5, the vaguest evidence); synonym targets land in
    between (0.8 attributes, 0.85 measures).  All keys are Porter
    stems, matching the text index's analysis.
    """

    name = "metadata"

    _CONF_FULL_NAME = 0.9
    _CONF_MEASURE = 0.9
    _CONF_SYN_MEASURE = 0.85
    _CONF_SYNONYM = 0.8
    _CONF_NAME_WORD = 0.7
    _CONF_TABLE = 0.5
    _TABLE_EXPANSION_CAP = 3

    def __init__(self, schema: StarSchema,
                 synonyms: SynonymRegistry | None = None):
        self.schema = schema
        if synonyms is None:
            synonyms = SynonymRegistry(getattr(schema, "synonyms", None))
        self.synonyms = synonyms
        # stem -> {(kind, target-label): (confidence, candidate fields)}
        self._attrs: dict[str, dict[str, tuple[float, GroupByAttribute,
                                               str]]] = {}
        self._measures: dict[str, dict[str, tuple[float, str, str]]] = {}
        self._build_tables()

    # -- name-table construction ---------------------------------------
    def _add_attr(self, key: str, conf: float, gb: GroupByAttribute,
                  detail: str) -> None:
        bucket = self._attrs.setdefault(key, {})
        label = str(gb.ref)
        if label not in bucket or bucket[label][0] < conf:
            bucket[label] = (conf, gb, detail)

    def _add_measure(self, key: str, conf: float, measure: str,
                     detail: str) -> None:
        bucket = self._measures.setdefault(key, {})
        if measure not in bucket or bucket[measure][0] < conf:
            bucket[measure] = (conf, measure, detail)

    def _build_tables(self) -> None:
        schema = self.schema
        by_table: dict[str, list[GroupByAttribute]] = {}
        for dim in schema.dimensions:
            for gb in dim.groupbys:
                by_table.setdefault(gb.ref.table, []).append(gb)
                words = camel_words(gb.ref.column)
                full = stem("".join(words))
                self._add_attr(full, self._CONF_FULL_NAME, gb,
                               f"attribute name {gb.ref}")
                for word in words:
                    key = stem(word)
                    if key == full:
                        continue
                    self._add_attr(key, self._CONF_NAME_WORD, gb,
                                   f"word of {gb.ref}")
        for table, groupbys in by_table.items():
            bare = re.sub(r"^(Dim|Fact)", "", table)
            for word in camel_words(bare):
                for gb in groupbys[:self._TABLE_EXPANSION_CAP]:
                    self._add_attr(stem(word), self._CONF_TABLE, gb,
                                   f"table name {table}")
        for name in schema.measures:
            for word in camel_words(name):
                self._add_measure(stem(word), self._CONF_MEASURE, name,
                                  f"measure name {name}")
        for term in self.synonyms:
            for target in self.synonyms.lookup(term):
                if target.kind == "measure":
                    if target.measure in schema.measures:
                        self._add_measure(
                            stem(term.lower()), self._CONF_SYN_MEASURE,
                            target.measure, f"synonym {term!r}")
                    continue
                gb = self._declared_groupby(target.table, target.column)
                if gb is not None:
                    self._add_attr(stem(term.lower()),
                                   self._CONF_SYNONYM, gb,
                                   f"synonym {term!r}")

    def _declared_groupby(self, table: str,
                          column: str) -> GroupByAttribute | None:
        for dim in self.schema.dimensions:
            for gb in dim.groupbys:
                if gb.ref.table == table and gb.ref.column == column:
                    return gb
        return None

    # -- matching -------------------------------------------------------
    def resolve_attributes(self, token: str,
                           cap: int = 3) -> list[tuple[float,
                                                       GroupByAttribute,
                                                       str]]:
        """Attribute resolutions of one token, best first (for the
        pattern matcher's "by <attribute>" clause)."""
        key = stem(token.lower())
        found = sorted(self._attrs.get(key, {}).values(),
                       key=lambda t: (-t[0], str(t[1].ref)))
        return found[:cap]

    def match_keyword(self, keyword: str,
                      config) -> list[MatchCandidate]:
        key = stem(keyword.lower())
        out: list[MatchCandidate] = []
        for conf, name, detail in self._measures.get(key, {}).values():
            out.append(MatchCandidate(
                kind=MatchKind.MEASURE, keywords=(keyword,),
                matcher=self.name, confidence=conf, measure=name,
                detail=detail))
        for conf, gb, detail in self._attrs.get(key, {}).values():
            out.append(MatchCandidate(
                kind=MatchKind.ATTRIBUTE, keywords=(keyword,),
                matcher=self.name, confidence=conf, attribute=gb,
                detail=detail))
        out.sort(key=lambda c: (-c.confidence, c.kind.value, c.target))
        return out[:config.max_groups_per_keyword]


class PatternMatcher:
    """Multi-token business phrases → :class:`Modifier` hints.

    Recognised patterns (scanned left to right, longest first):

    * ``top <K>`` / ``bottom <K>`` — order desc/asc + limit K;
    * comparatives (``highest``, ``lowest``, ...) — order only;
    * ``by <attr>`` / ``per <attr>`` — group-by hint, accepted only
      when ``<attr>`` metadata-resolves (otherwise the tokens stay
      available to the rest of the chain).
    """

    name = "pattern"

    _CONF_TOP_K = 0.9
    _CONF_GROUP_BY = 0.85
    _CONF_COMPARATIVE = 0.8
    _MAX_LIMIT = 1000

    def __init__(self, metadata: MetadataMatcher):
        self.metadata = metadata

    def scan(self, keywords: Sequence[str]) -> list[PatternSpan]:
        tokens = [k.lower() for k in keywords]
        spans: list[PatternSpan] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            nxt = tokens[i + 1] if i + 1 < len(tokens) else None
            if tok in ("top", "bottom") and nxt is not None \
                    and nxt.isdigit() and 0 < int(nxt) <= self._MAX_LIMIT:
                order = "desc" if tok == "top" else "asc"
                spans.append(PatternSpan(i, i + 2, (MatchCandidate(
                    kind=MatchKind.MODIFIER,
                    keywords=(keywords[i], keywords[i + 1]),
                    matcher=self.name, confidence=self._CONF_TOP_K,
                    modifier=Modifier(order=order, limit=int(nxt)),
                    detail=f"{tok} {nxt}"),)))
                i += 2
                continue
            if tok in _DESC_WORDS or tok in _ASC_WORDS:
                order = "desc" if tok in _DESC_WORDS else "asc"
                spans.append(PatternSpan(i, i + 1, (MatchCandidate(
                    kind=MatchKind.MODIFIER, keywords=(keywords[i],),
                    matcher=self.name,
                    confidence=self._CONF_COMPARATIVE,
                    modifier=Modifier(order=order),
                    detail=f"comparative {tok!r}"),)))
                i += 1
                continue
            if tok in ("by", "per") and nxt is not None:
                resolved = self.metadata.resolve_attributes(nxt)
                if resolved:
                    candidates = tuple(MatchCandidate(
                        kind=MatchKind.MODIFIER,
                        keywords=(keywords[i], keywords[i + 1]),
                        matcher=self.name,
                        confidence=self._CONF_GROUP_BY,
                        modifier=Modifier(group_by=(gb,)),
                        detail=f"{tok} {nxt} -> {gb.ref} ({why})")
                        for _conf, gb, why in resolved)
                    spans.append(PatternSpan(i, i + 2, candidates))
                    i += 2
                    continue
            i += 1
        return spans


# ----------------------------------------------------------------------
# the chain
# ----------------------------------------------------------------------
def validate_matchers(names: Sequence[str]) -> tuple[str, ...]:
    """Normalise a matcher selection; raises ValueError on junk."""
    out: list[str] = []
    for name in names:
        if name not in DEFAULT_MATCHERS:
            raise ValueError(
                f"unknown matcher {name!r}; choose from "
                f"{', '.join(DEFAULT_MATCHERS)}")
        if name not in out:
            out.append(name)
    if not out:
        raise ValueError("matcher chain must not be empty")
    return tuple(out)


class MatcherChain:
    """Ordered matcher chain bound to one schema + index.

    Built once per session — the metadata name table is derived from
    the schema eagerly so per-query matching is dictionary lookups.
    """

    def __init__(self, schema: StarSchema, index: AttributeTextIndex,
                 synonyms: SynonymRegistry | None = None):
        self.schema = schema
        self.index = index
        self.value = ValueMatcher(index)
        self.metadata = MetadataMatcher(schema, synonyms)
        self.pattern = PatternMatcher(self.metadata)

    def match(self, keywords: Sequence[str], config,
              matchers: Sequence[str] = DEFAULT_MATCHERS
              ) -> MatchOutcome:
        """Run the chain over a keyword list.

        Fallback semantics: pattern spans consume their tokens first;
        each remaining keyword is offered to the value matcher, then to
        the metadata matcher only when no cell value hit.  Stopword-only
        keywords are skipped (they carry no selection, as before); a
        keyword no enabled matcher accepts lands in ``unmatched``.
        """
        enabled = validate_matchers(matchers)
        outcome = MatchOutcome()
        counters = outcome.counters
        for name in enabled:
            counters.setdefault(f"{name}.candidates", 0)
            counters.setdefault(f"{name}.accepted", 0)
        consumed = [False] * len(keywords)
        positioned: list[tuple[int, MatchSlot]] = []

        if "pattern" in enabled:
            for span in self.pattern.scan(keywords):
                if any(consumed[span.start:span.stop]):
                    continue
                for i in range(span.start, span.stop):
                    consumed[i] = True
                counters["pattern.candidates"] += len(span.candidates)
                counters["pattern.accepted"] += 1
                positioned.append((span.start, MatchSlot(
                    tuple(keywords[span.start:span.stop]),
                    span.candidates, "pattern")))

        skipped: list[str] = []
        unmatched: list[str] = []
        for i, keyword in enumerate(keywords):
            if consumed[i]:
                continue
            if not self.index.analyzer.analyze(keyword):
                skipped.append(keyword)
                continue
            matched = False
            for name in enabled:
                if name == "pattern":
                    continue
                matcher = self.value if name == "value" else self.metadata
                candidates = matcher.match_keyword(keyword, config)
                counters[f"{name}.candidates"] += len(candidates)
                if candidates:
                    counters[f"{name}.accepted"] += 1
                    positioned.append((i, MatchSlot(
                        (keyword,), tuple(candidates), name)))
                    matched = True
                    break
            if not matched:
                unmatched.append(keyword)

        positioned.sort(key=lambda pair: pair[0])
        outcome.slots = [slot for _, slot in positioned]
        outcome.unmatched = tuple(unmatched)
        outcome.skipped = tuple(skipped)
        return outcome
