"""Splitting-point assignment by simulated annealing (paper §5.3.2, Alg. 2).

Given the m basic-interval aggregate series (X from DS', Y from RUP(DS'))
computed during attribute ranking, merge adjacent basic intervals into K
display categories such that

* the correlation over the merged series stays as close as possible to the
  correlation over the basic intervals (exploration objective), and
* no merged range spans more than L times the basic intervals of the
  smallest range (navigational skew constraint).

The search starts from equal-width splitting points and repeatedly proposes
a neighbour (one splitting point moved by one basic-interval unit).  A
better neighbour is recorded as the best-so-far; the *current* state also
jumps to the neighbour with a fixed probability, which lets the walk escape
local optima — exactly the structure of the paper's Algorithm 2.  The whole
search runs on in-memory arrays and never touches the database.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from .interestingness import pearson_correlation


@dataclass(frozen=True)
class AnnealingConfig:
    """Knobs of Algorithm 2."""

    num_intervals: int = 6
    """K: target number of merged display intervals."""

    skew_limit: float = 4.0
    """L: the largest range may span at most L x the smallest range."""

    iterations: int = 500
    """N: neighbour proposals."""

    accept_probability: float = 0.3
    """Chance of moving the current state to a non-improving neighbour."""

    seed: int = 7
    """RNG seed (annealing is deterministic given the seed)."""


@dataclass
class AnnealingResult:
    """Outcome of one splitting-point search."""

    splits: tuple[int, ...]
    """Best splitting points found (indices into the basic intervals;
    strictly increasing, in (0, m))."""

    merged_correlation: float
    """Correlation over the merged series at the best splits."""

    basic_correlation: float
    """Ground objective: correlation over the basic intervals."""

    error_history: list[float]
    """|merged - basic| of the best-so-far after each iteration — the
    series plotted in Figure 7."""

    @property
    def error(self) -> float:
        """Final |merged correlation - basic correlation|."""
        return abs(self.merged_correlation - self.basic_correlation)


def merge_series(series: Sequence[float], splits: Sequence[int]) -> list[float]:
    """Sum ``series`` into the segments delimited by ``splits``.

    ``splits`` are interior cut positions; segment i covers
    ``[boundaries[i], boundaries[i+1])`` with implicit 0 and len(series)
    boundaries at the ends.
    """
    boundaries = [0, *splits, len(series)]
    return [
        sum(series[boundaries[i]: boundaries[i + 1]])
        for i in range(len(boundaries) - 1)
    ]


def segment_lengths(splits: Sequence[int], m: int) -> list[int]:
    """Basic-interval counts of each merged segment."""
    boundaries = [0, *splits, m]
    return [boundaries[i + 1] - boundaries[i] for i in range(len(boundaries) - 1)]


def is_valid_splitting(splits: Sequence[int], m: int, skew_limit: float) -> bool:
    """Check strict monotonicity, range, and the L-skew constraint."""
    previous = 0
    for split in splits:
        if split <= previous or split >= m:
            return False
        previous = split
    lengths = segment_lengths(splits, m)
    return max(lengths) <= skew_limit * min(lengths)


def equal_width_splits(m: int, k: int) -> tuple[int, ...]:
    """The paper's starting point: equal-width splitting of m basic
    intervals into k segments."""
    if k < 1 or k > m:
        raise ValueError(f"cannot split {m} basic intervals into {k} segments")
    return tuple(round(i * m / k) for i in range(1, k))


def merged_correlation(
    x: Sequence[float], y: Sequence[float], splits: Sequence[int]
) -> float:
    """Correlation of the two series after merging by ``splits``."""
    return pearson_correlation(merge_series(x, splits), merge_series(y, splits))


def anneal_splits(
    x: Sequence[float],
    y: Sequence[float],
    config: AnnealingConfig = AnnealingConfig(),
) -> AnnealingResult:
    """Algorithm 2: find display splitting points for basic series X, Y."""
    m = len(x)
    if m != len(y):
        raise ValueError(f"series length mismatch: {m} vs {len(y)}")
    k = config.num_intervals
    if k > m:
        raise ValueError(
            f"cannot display {k} intervals from only {m} basic intervals"
        )
    rng = random.Random(config.seed)
    basic = pearson_correlation(x, y)

    current = list(equal_width_splits(m, k))
    best = tuple(current)
    best_error = abs(merged_correlation(x, y, best) - basic)
    history: list[float] = []

    for _ in range(config.iterations):
        neighbour = _propose_neighbour(current, m, config.skew_limit, rng)
        if neighbour is not None:
            error = abs(merged_correlation(x, y, neighbour) - basic)
            if error < best_error:
                best = tuple(neighbour)
                best_error = error
                current = list(neighbour)
            elif rng.random() < config.accept_probability:
                current = list(neighbour)
        history.append(best_error)

    return AnnealingResult(
        splits=best,
        merged_correlation=merged_correlation(x, y, best),
        basic_correlation=basic,
        error_history=history,
    )


def _propose_neighbour(
    splits: list[int], m: int, skew_limit: float, rng: random.Random,
    max_tries: int = 8,
) -> list[int] | None:
    """One valid neighbour: a random splitting point moved +-1 unit.

    Retries a few times when the sampled move is invalid; None when no
    valid neighbour was found (the caller just skips the iteration).
    """
    if not splits:
        return None
    for _ in range(max_tries):
        idx = rng.randrange(len(splits))
        delta = 1 if rng.random() < 0.5 else -1
        candidate = list(splits)
        candidate[idx] += delta
        if is_valid_splitting(candidate, m, skew_limit):
            return candidate
    return None
