"""The staged keyword-interpretation pipeline: tokenize → match →
enumerate → rank.

This replaces the monolithic keyword→hit-group→star-net path as the
session front end.  The stages:

1. **tokenize** — whitespace keyword split + measure-predicate peeling
   (unchanged from :mod:`repro.core.generation`);
2. **match** — the :class:`~repro.core.matching.MatcherChain` turns the
   keyword list into ordered :class:`~repro.core.matching.MatchSlot`\\ s
   of typed candidates (predicate hit groups, attribute/measure
   references, modifier hints) plus per-keyword diagnostics;
3. **enumerate** — the cross product over slots generalises the legacy
   hit-group cross product: value candidates still phrase-merge,
   rescore against the full query, and fan out over OLAP-valid join
   paths, while attribute/measure/modifier candidates ride along as
   hints on the :class:`Interpretation`;
4. **rank** — the paper's star-net score, multiplied by the combined
   match confidence.  Value candidates carry confidence 1.0, so a
   query whose keywords all hit cell values ranks *identically* to the
   pre-refactor front end (the parity suite pins this).

An interpretation whose slots produced no hit group at all ("revenue
by month top 3" on a warehouse with no such cell values) yields an
empty-ray star net — the whole dataspace — plus hints; the explore
phase promotes the hinted group-bys and applies order/limit.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from ..obs.tracer import current_tracer
from ..relational.errors import ResourceExhausted
from ..resilience.budget import current_budget
from ..textindex.index import AttributeTextIndex
from ..warehouse.schema import GroupByAttribute, StarSchema
from .generation import (
    DEFAULT_CONFIG,
    GenerationConfig,
    rescore_group,
    split_query,
    valid_ray_paths,
)
from .matching import (
    DEFAULT_MATCHERS,
    EMPTY_MODIFIER,
    MatchCandidate,
    MatcherChain,
    MatchKind,
    Modifier,
)
from .phrases import merge_seed_groups
from .ranking import RankingMethod, score_star_net
from .starnet import Ray, StarNet


@dataclass(frozen=True)
class Interpretation:
    """One candidate reading of a keyword query.

    Generalises the bare :class:`~repro.core.starnet.StarNet`: besides
    the predicate structure (rays + measure predicates) it carries the
    *hints* non-value matchers contributed — group-by attributes,
    measure references, and presentation modifiers — plus the match
    provenance and combined confidence.
    """

    star_net: StarNet
    attributes: tuple[GroupByAttribute, ...] = ()
    measures: tuple[str, ...] = ()
    modifier: Modifier = EMPTY_MODIFIER
    matches: tuple[MatchCandidate, ...] = ()
    confidence: float = 1.0

    @property
    def group_by_hints(self) -> tuple[GroupByAttribute, ...]:
        """Attribute hints + modifier group-bys, deduplicated in order."""
        out: list[GroupByAttribute] = []
        for gb in (*self.attributes, *self.modifier.group_by):
            if gb not in out:
                out.append(gb)
        return tuple(out)

    @property
    def measure_hint(self) -> str | None:
        """The first matched measure name, if any."""
        return self.measures[0] if self.measures else None

    @property
    def has_hints(self) -> bool:
        return bool(self.attributes or self.measures
                    or self.modifier.active)

    def fingerprint(self) -> str:
        """Stable digest of the interpretation's full shape (star net,
        hints, modifiers) — the cache/slow-log analogue of a plan
        fingerprint for the widened interpretation space."""
        return hashlib.sha1(
            self.describe().encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        parts = [str(self.star_net)] if self.star_net.rays \
            or self.star_net.measure_predicates else []
        if self.attributes:
            parts.append("attrs[" + ", ".join(
                str(gb.ref) for gb in self.attributes) + "]")
        if self.measures:
            parts.append("measures[" + ", ".join(self.measures) + "]")
        if self.modifier.active:
            parts.append(f"modifier[{self.modifier}]")
        if not parts:
            return str(self.star_net)
        return " ".join(parts)

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ScoredInterpretation:
    """A ranked interpretation (drop-in for the old ``ScoredStarNet``:
    ``.star_net``, ``.score`` and ``.subspace_size`` keep working)."""

    interpretation: Interpretation
    score: float
    subspace_size: int | None = None

    @property
    def star_net(self) -> StarNet:
        return self.interpretation.star_net

    def __str__(self) -> str:
        size = "" if self.subspace_size is None \
            else f" ({self.subspace_size} facts)"
        return f"{self.interpretation}  [{self.score:.6f}]{size}"


@dataclass
class MatchReport:
    """Per-query diagnostics of the match stage.

    ``counters`` holds ``<matcher>.candidates`` / ``<matcher>.accepted``
    for every enabled matcher; ``unmatched`` lists keywords no matcher
    accepted (each becomes a diagnostics note instead of being silently
    dropped, as the seed front end did).
    """

    query: str = ""
    keywords: tuple[str, ...] = ()
    matchers: tuple[str, ...] = DEFAULT_MATCHERS
    unmatched: tuple[str, ...] = ()
    skipped: tuple[str, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    interpretations: int = 0

    def notes(self) -> list[str]:
        return [f"keyword {kw!r} matched no enabled matcher "
                f"({', '.join(self.matchers)})"
                for kw in self.unmatched]

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "keywords": list(self.keywords),
            "matchers": list(self.matchers),
            "unmatched": list(self.unmatched),
            "skipped": list(self.skipped),
            "counters": dict(sorted(self.counters.items())),
            "interpretations": self.interpretations,
        }


# ----------------------------------------------------------------------
# stage 3: enumeration
# ----------------------------------------------------------------------
def _combine(combo) -> tuple[tuple, tuple[GroupByAttribute, ...],
                             tuple[str, ...], Modifier, float]:
    """Split one slot-candidate combo into its typed parts."""
    groups = tuple(c.hit_group for c in combo
                   if c.kind is MatchKind.VALUE)
    attributes: list[GroupByAttribute] = []
    measures: list[str] = []
    modifier = EMPTY_MODIFIER
    confidence = 1.0
    for cand in combo:
        confidence *= cand.confidence
        if cand.kind is MatchKind.ATTRIBUTE:
            if cand.attribute not in attributes:
                attributes.append(cand.attribute)
        elif cand.kind is MatchKind.MEASURE:
            if cand.measure not in measures:
                measures.append(cand.measure)
        elif cand.kind is MatchKind.MODIFIER:
            modifier = modifier.merged(cand.modifier)
    return groups, tuple(attributes), tuple(measures), modifier, \
        confidence


def _hint_key(attributes, measures, modifier) -> tuple:
    return (tuple(str(gb.ref) for gb in attributes), measures,
            str(modifier))


def enumerate_interpretations(
    schema: StarSchema,
    index: AttributeTextIndex,
    query: str,
    slots,
    measure_predicates: tuple,
    config: GenerationConfig,
) -> list[Interpretation]:
    """Cross product over slots → deduplicated interpretations.

    Mirrors the legacy two-level enumeration (seed cross product, then
    join-path cross product) with the same caps, budget charging, and
    truncation messages, generalised to mixed candidate kinds.
    """
    budget = current_budget()
    seeds: list[tuple] = []
    seen_seeds: set[tuple] = set()
    for combo in itertools.islice(
        itertools.product(*[slot.candidates for slot in slots]),
        config.max_seeds * 4,
    ):
        if budget is not None:
            try:
                budget.check_deadline("generation")
            except ResourceExhausted as exc:
                budget.record_truncation(
                    "generation", exc.reason,
                    f"seed enumeration stopped after {len(seeds)} seeds")
                break
        groups, attributes, measures, modifier, confidence = \
            _combine(combo)
        merged = merge_seed_groups(groups, index) if groups else ()
        merged = tuple(rescore_group(g, index, query) for g in merged)
        key = (tuple(sorted((g.domain, g.values) for g in merged)),
               _hint_key(attributes, measures, modifier))
        if key in seen_seeds:
            continue
        seen_seeds.add(key)
        seeds.append((merged, attributes, measures, modifier,
                      confidence, combo))
        if len(seeds) >= config.max_seeds:
            break

    interpretations: list[Interpretation] = []
    seen: set[tuple] = set()
    for merged, attributes, measures, modifier, confidence, combo \
            in seeds:
        path_options = []
        feasible = True
        for group in merged:
            options = valid_ray_paths(schema, group.table,
                                      config.max_path_length)
            if not options:
                feasible = False
                break
            path_options.append(
                [(group, path, dim) for path, dim in options])
        if not feasible:
            continue
        for path_combo in itertools.product(*path_options):
            rays = tuple(Ray(group, path, dim)
                         for group, path, dim in path_combo)
            key = (tuple(sorted((r.hit_group.domain, r.hit_group.values,
                                 r.path_to_fact.fk_names)
                                for r in rays)),
                   _hint_key(attributes, measures, modifier))
            if key in seen:
                continue
            seen.add(key)
            if budget is not None:
                try:
                    budget.check_deadline("generation")
                    budget.charge_interpretations(1)
                except ResourceExhausted as exc:
                    budget.record_truncation(
                        "generation", exc.reason,
                        f"star-net enumeration stopped after "
                        f"{len(interpretations)} candidates")
                    return interpretations
            interpretations.append(Interpretation(
                star_net=StarNet(schema.fact_table, rays,
                                 measure_predicates=measure_predicates),
                attributes=attributes,
                measures=measures,
                modifier=modifier,
                matches=tuple(combo),
                confidence=confidence,
            ))
            if len(interpretations) >= config.max_candidates:
                return interpretations
    return interpretations


# ----------------------------------------------------------------------
# the pipeline end to end
# ----------------------------------------------------------------------
def interpret_query(
    schema: StarSchema,
    index: AttributeTextIndex,
    query: str,
    config: GenerationConfig = DEFAULT_CONFIG,
    matchers: tuple[str, ...] = DEFAULT_MATCHERS,
    chain: MatcherChain | None = None,
) -> tuple[list[Interpretation], MatchReport]:
    """Stages 1–3: tokenize, match, enumerate.

    Returns the candidate interpretations plus the match-stage report.
    ``chain`` lets a session reuse its prebuilt matcher chain (the
    metadata name table is schema-derived and query-independent).
    """
    if chain is None:
        chain = MatcherChain(schema, index)
    keywords, predicates = split_query(schema, query, config)
    measure_predicates = tuple(predicates)
    tracer = current_tracer()

    with tracer.span("interpret.match", query=query):
        outcome = chain.match(keywords, config, matchers)
    report = MatchReport(
        query=query,
        keywords=tuple(keywords),
        matchers=tuple(matchers),
        unmatched=outcome.unmatched,
        skipped=outcome.skipped,
        counters=outcome.counters,
    )

    if not keywords and measure_predicates:
        # pure measure queries select a subspace of the whole dataspace
        report.interpretations = 1
        return [Interpretation(StarNet(
            schema.fact_table, (),
            measure_predicates=measure_predicates))], report
    if outcome.unmatched and config.require_all_keywords:
        return [], report
    if not outcome.slots:
        return [], report

    with tracer.span("starnet.enumerate") as span:
        interpretations = enumerate_interpretations(
            schema, index, query, outcome.slots, measure_predicates,
            config)
        span.set_tag("candidates", len(interpretations))
    report.interpretations = len(interpretations)
    return interpretations, report


def score_interpretation(
    interpretation: Interpretation,
    method: RankingMethod = RankingMethod.STANDARD,
) -> float:
    """The star-net score with match confidence folded in.

    Interpretations with rays keep the paper's SCORE(SN, q) as the
    base — all-value interpretations have confidence 1.0, so their
    scores equal the pre-refactor ranking exactly.  A ray-less
    interpretation that still says something (hints or measure
    predicates from non-value matchers) gets base 1.0 scaled by its
    confidence; a ray-less one without hints (pure measure-predicate
    queries) keeps the legacy score of 0.0.
    """
    net = interpretation.star_net
    if net.rays:
        base = score_star_net(net, method)
    elif interpretation.has_hints:
        base = 1.0
    else:
        base = 0.0
    return base * interpretation.confidence


def rank_interpretations(
    interpretations: list[Interpretation],
    method: RankingMethod = RankingMethod.STANDARD,
) -> list[ScoredInterpretation]:
    """Score and sort, best first; ties break on textual form (star
    net first, hints second), matching the legacy order for all-value
    interpretations."""
    scored = [
        ScoredInterpretation(interp, score_interpretation(interp, method))
        for interp in interpretations
    ]
    scored.sort(key=lambda s: (-s.score, str(s.star_net),
                               s.interpretation.describe()))
    return scored
