"""KDAP core: the paper's contribution.

Public surface::

    from repro.core import (
        HitGroup, retrieve_hit_groups,
        StarSeed, Ray, StarNet,
        GenerationConfig, generate_candidates, generate_star_seeds,
        RankingMethod, ScoredStarNet, score_star_net, rank_candidates,
        SurpriseMeasure, BellwetherMeasure, SURPRISE, BELLWETHER,
        pearson_correlation,
        Bucketization, Interval, equal_width, distinct_value_buckets,
        rank_groupby_attributes, attribute_score,
        rank_instances, instance_score,
        AnnealingConfig, AnnealingResult, anneal_splits,
        ExploreConfig, FacetedInterface, build_facets,
        rollup_subspace, rollup_subspaces,
        KdapSession, ExploreResult,
    )
"""

from .annealing import (
    AnnealingConfig,
    AnnealingResult,
    anneal_splits,
    equal_width_splits,
    is_valid_splitting,
    merge_series,
    merged_correlation,
    segment_lengths,
)
from .attribute_ranking import (
    DEFAULT_NUM_BUCKETS,
    RankedAttribute,
    SeriesPair,
    attribute_score,
    categorical_series,
    ground_truth_series,
    numerical_series,
    rank_groupby_attributes,
)
from .bucketing import (
    Bucketization,
    Interval,
    bucket_series,
    distinct_value_buckets,
    equal_width,
)
from .facets import (
    DynamicFacet,
    expand_interval,
    ExploreConfig,
    FacetAttribute,
    FacetEntry,
    FacetedInterface,
    build_facets,
    rollup_subspace,
    rollup_subspaces,
)
from .generation import (
    DEFAULT_CONFIG,
    GenerationConfig,
    generate_candidates,
    generate_star_seeds,
    split_keywords,
    valid_ray_paths,
)
from .hits import HitGroup, group_hits, retrieve_hit_groups, retrieve_hit_set
from .instance_ranking import RankedInstance, instance_score, rank_instances
from .interestingness import (
    BELLWETHER,
    MAX_SHARE_DEVIATION,
    MaxShareDeviationMeasure,
    BellwetherMeasure,
    InterestingnessMeasure,
    SURPRISE,
    SurpriseMeasure,
    pearson_correlation,
)
from .measure_hits import (
    MeasurePredicate,
    measure_fact_rows,
    parse_measure_keyword,
)
from .optimal_merge import beam_splits, exhaustive_splits
from .phrases import merge_seed_groups, try_merge
from .ranking import (
    RankingMethod,
    ScoredStarNet,
    rank_candidates,
    score_star_net,
)
from .session import ExploreResult, KdapSession
from .starnet import Ray, StarNet, StarSeed

__all__ = [
    "AnnealingConfig",
    "AnnealingResult",
    "BELLWETHER",
    "BellwetherMeasure",
    "Bucketization",
    "DEFAULT_CONFIG",
    "DEFAULT_NUM_BUCKETS",
    "DynamicFacet",
    "ExploreConfig",
    "ExploreResult",
    "FacetAttribute",
    "FacetEntry",
    "FacetedInterface",
    "GenerationConfig",
    "HitGroup",
    "InterestingnessMeasure",
    "Interval",
    "KdapSession",
    "MAX_SHARE_DEVIATION",
    "MaxShareDeviationMeasure",
    "MeasurePredicate",
    "RankedAttribute",
    "RankedInstance",
    "RankingMethod",
    "Ray",
    "SURPRISE",
    "ScoredStarNet",
    "SeriesPair",
    "StarNet",
    "StarSeed",
    "SurpriseMeasure",
    "anneal_splits",
    "attribute_score",
    "beam_splits",
    "bucket_series",
    "build_facets",
    "categorical_series",
    "distinct_value_buckets",
    "equal_width",
    "equal_width_splits",
    "exhaustive_splits",
    "expand_interval",
    "generate_candidates",
    "generate_star_seeds",
    "ground_truth_series",
    "group_hits",
    "instance_score",
    "is_valid_splitting",
    "merge_seed_groups",
    "measure_fact_rows",
    "merge_series",
    "merged_correlation",
    "parse_measure_keyword",
    "numerical_series",
    "pearson_correlation",
    "rank_candidates",
    "rank_groupby_attributes",
    "rank_instances",
    "retrieve_hit_groups",
    "retrieve_hit_set",
    "rollup_subspace",
    "rollup_subspaces",
    "score_star_net",
    "segment_lengths",
    "split_keywords",
    "try_merge",
    "valid_ray_paths",
]
