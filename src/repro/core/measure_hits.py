"""Measure predicates as keywords — the paper's §7 extension.

"Our current model does not consider measure attributes as hit candidates;
it is interesting to investigate how we can incorporate such measure in
the KDAP model."  This module does so with the simplest useful surface: a
keyword of the form ``revenue>5000`` or ``Quantity<=2`` is recognised as a
*measure predicate* rather than a full-text keyword.

Measure predicates are deterministic fact-level filters: they carry no
textual ambiguity, so they do not participate in hit groups or the SCORE
ranking — they simply constrain every candidate star net's subspace (and
compile into the WHERE clause of the generated SQL).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..warehouse.schema import StarSchema

_PREDICATE_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?P<op><=|>=|<|>|=)"
    r"(?P<value>-?\d+(?:\.\d+)?)$"
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
}


@dataclass(frozen=True)
class MeasurePredicate:
    """A comparison against a named measure or numeric fact column.

    ``target`` is the resolved name; ``is_measure`` says whether it names a
    declared measure (evaluated through its expression) or a raw numeric
    fact column.
    """

    target: str
    op: str
    value: float
    is_measure: bool

    def __str__(self) -> str:
        return f"{self.target} {self.op} {self.value:g}"

    def holds(self, measured: float | None) -> bool:
        """Apply the comparison to one per-row value."""
        if measured is None:
            return False
        return _OPS[self.op](measured, self.value)

    def select(self, values) -> set[int]:
        """Row ids whose aligned value satisfies the comparison — one
        batch pass with the operator resolved outside the loop."""
        op, bound = _OPS[self.op], self.value
        return {rid for rid, v in enumerate(values)
                if v is not None and op(v, bound)}


def parse_measure_keyword(schema: StarSchema,
                          keyword: str) -> MeasurePredicate | None:
    """Recognise ``name op number`` keywords against the schema.

    The name must match a declared measure (case-insensitive) or a numeric
    column of the fact table; anything else returns None and the keyword
    is treated as ordinary text.
    """
    match = _PREDICATE_RE.match(keyword)
    if match is None:
        return None
    name = match.group("name")
    op = match.group("op")
    value = float(match.group("value"))
    for measure_name in schema.measures:
        if measure_name.lower() == name.lower():
            return MeasurePredicate(measure_name, op, value,
                                    is_measure=True)
    fact = schema.database.table(schema.fact_table)
    for column in fact.columns:
        if column.name.lower() == name.lower() and column.type.is_numeric:
            return MeasurePredicate(column.name, op, value,
                                    is_measure=False)
    return None


def measure_fact_rows(schema: StarSchema,
                      predicate: MeasurePredicate) -> set[int]:
    """Fact rows satisfying one measure predicate."""
    if predicate.is_measure:
        values = schema.measure_vector(predicate.target)
    else:
        fact = schema.database.table(schema.fact_table)
        values = fact.column_values(predicate.target)
    return predicate.select(values)


def predicate_sql(schema: StarSchema, predicate: MeasurePredicate,
                  fact_alias: str) -> str:
    """Render the predicate for the generated SQL's WHERE clause."""
    if predicate.is_measure:
        from .starnet import _qualified_measure_sql

        expr = str(schema.measures[predicate.target].expression)
        lhs = _qualified_measure_sql(expr, fact_alias)
    else:
        lhs = f"{fact_alias}.{predicate.target}"
    return f"{lhs} {predicate.op} {predicate.value:g}"
