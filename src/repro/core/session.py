"""The end-to-end KDAP session API.

:class:`KdapSession` wires together both phases of Figure 1:

* :meth:`differentiate` — keyword query → ranked candidate star nets;
* :meth:`explore` — chosen star net → aggregated subspace + dynamic facets.

:meth:`search` runs both with the top-ranked interpretation, which is the
"I'll know it when I see it" happy path.
"""

from __future__ import annotations

import contextvars
import logging
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Sequence

from ..obs.explain import ExplainResult, profile_plan
from ..obs.metrics import MetricsRegistry, metrics_scope
from ..obs.slowlog import SlowQueryLog
from ..obs.tracer import (
    Tracer,
    current_request_id,
    current_tracer,
    plan_digest,
    tracing_scope,
)
from ..plan.backends import ExecutionBackend
from ..plan.builders import subspace_aggregate_plan
from ..plan.engine import QueryEngine
from ..relational.errors import ResourceExhausted
from ..resilience.budget import Budget, budget_scope, current_budget
from ..resilience.diagnostics import Diagnostics
from ..textindex.index import AttributeTextIndex
from ..warehouse.operations import drill_down as _drill_subspace
from ..warehouse.schema import GroupByAttribute, StarSchema
from ..warehouse.subspace import Subspace
from .facets import (
    ExploreConfig,
    FacetedInterface,
    apply_modifier,
    build_facets,
)
from .generation import DEFAULT_CONFIG, GenerationConfig
from .interestingness import InterestingnessMeasure, SURPRISE
from .interpret import (
    Interpretation,
    MatchReport,
    ScoredInterpretation,
    interpret_query,
    rank_interpretations,
)
from .matching import DEFAULT_MATCHERS, MatcherChain, validate_matchers
from .ranking import RankingMethod
from .starnet import StarNet
from .synonyms import SynonymRegistry


@dataclass(frozen=True)
class ExploreResult:
    """Outcome of the explore phase for one chosen star net.

    Under a :class:`~repro.resilience.budget.Budget` the result may be
    *partial*: ``diagnostics`` then records which stages were truncated,
    why, and how much work was done before the budget ran out.
    """

    star_net: StarNet
    subspace: Subspace
    interface: FacetedInterface
    diagnostics: Diagnostics | None = None
    interpretation: Interpretation | None = None
    """The full interpretation explored, when the caller passed one
    (hints + provenance beyond the bare star net)."""

    @property
    def total_aggregate(self) -> float:
        """The aggregated measure over the whole subspace."""
        return self.interface.total_aggregate

    @property
    def is_partial(self) -> bool:
        """True when a budget truncated part of this result."""
        return self.diagnostics is not None and self.diagnostics.partial


logger = logging.getLogger(__name__)


class KdapSession:
    """A stateful KDAP session over one star schema.

    Parameters
    ----------
    schema:
        The warehouse to search.
    index:
        An attribute-level full-text index over the schema; built on the
        fly from ``schema.searchable`` when omitted.
    backend:
        Execution backend name (``"memory"`` or ``"sqlite"``) or a
        pre-built :class:`~repro.plan.backends.ExecutionBackend`.  All
        query evaluation — star-net materialisation, facet aggregation,
        drill-down — goes through one :class:`~repro.plan.engine.QueryEngine`
        on this backend, with plan-fingerprint caching.
    workers:
        Worker-thread cap for parallel phases: the per-ray semi-join
        prefetch behind size previews, and — on the memory backend —
        morsel-driven parallelism *inside* a single large scan-aggregate
        (the chunk list is partitioned across workers and per-worker
        partial aggregates merge deterministically).  Defaults to
        ``min(4, cpu count)``; 1 disables threading entirely.  The
        sqlite backend opens one mirror connection per worker thread.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the session's
        latency histograms, cache counters, and truncation counters go
        to.  Each session gets its own registry by default, so two
        sessions in one process never mix numbers; pass
        ``repro.obs.metrics.DEFAULT_REGISTRY`` to aggregate
        process-wide instead.
    slow_query_ms:
        When set, explore calls slower than this threshold are recorded
        in :attr:`slow_log` (query text, chosen interpretation, plan
        fingerprint, and — when tracing — the span tree).  None
        disables the slow-query log entirely.
    materialize:
        Materialized sub-cube tier (default True): facet and roll-up
        aggregates are answered from materialized mergeable states —
        exact views, or lattice roll-ups of finer-grained ones — with
        incremental maintenance on fact appends, instead of re-scanning
        fact rows.  ``kdap.materialize.*`` counters land in
        :attr:`metrics`.  False disables the tier; passing a
        :class:`~repro.warehouse.materialize.MaterializationTier`
        shares one (e.g. warm-started from a persisted warehouse).

    **Threading**: a session is a single-caller object — its ray cache,
    slow log, and last-query bookkeeping are not synchronised for
    concurrent public calls.  It *owns* worker threads internally (ray
    prefetch, morsel parallelism), and a sqlite-backed session may be
    driven from a foreign thread because the mirror hands each thread
    its own connection; but those per-thread connections only die with
    the session, so thread-per-request callers leak one connection per
    thread.  Concurrent servers therefore keep **one session per
    long-lived worker thread** (see :mod:`repro.service`).  Using a
    closed sqlite-backed session raises a typed
    :class:`~repro.relational.errors.BackendError` — never a raw
    ``sqlite3.ProgrammingError``.
    """

    def __init__(self, schema: StarSchema,
                 index: AttributeTextIndex | None = None,
                 backend: str | ExecutionBackend = "memory",
                 workers: int | None = None,
                 metrics: MetricsRegistry | None = None,
                 slow_query_ms: float | None = None,
                 materialize: bool | object = True,
                 matchers: Sequence[str] | None = None,
                 synonyms: SynonymRegistry | None = None):
        self.schema = schema
        self.workers = (workers if workers is not None
                        else min(4, os.cpu_count() or 1))
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if index is None:
            index = AttributeTextIndex()
            index.index_database(schema.database, schema.searchable)
        self.index = index
        # the interpretation front end: matcher chain (value/metadata/
        # pattern) built once — the metadata name table is derived from
        # the schema and its synonym registry, not per query
        self.matchers = (validate_matchers(matchers)
                         if matchers is not None else DEFAULT_MATCHERS)
        self.chain = MatcherChain(schema, index, synonyms)
        self.last_match_report: MatchReport | None = None
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_log = (SlowQueryLog(slow_query_ms)
                         if slow_query_ms is not None else None)
        self._last_query = ""
        # sessions default the materialization tier ON (facet roll-ups
        # over recurring subspaces are exactly its workload); pass False
        # for raw execution or a shared MaterializationTier instance to
        # pool admission history across sessions
        self.engine = QueryEngine(schema, backend=backend,
                                  workers=self.workers,
                                  materialize=materialize)
        # per-ray fact-set memo: the same (hit group, path) ray recurs
        # across many candidate star nets of one query.  The engine's plan
        # cache holds the row tuples; this memo only avoids re-building
        # frozensets for the intersection loop in subspace_size.
        self._ray_cache: dict[tuple, frozenset[int]] = {}
        self._closed = False

    def close(self) -> None:
        """Release backend resources (e.g. the sqlite mirror); idempotent."""
        if self._closed:
            return
        self._closed = True
        self.engine.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "KdapSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # cached subspace sizing
    # ------------------------------------------------------------------
    def _ray_facts(self, ray) -> frozenset[int]:
        key = (ray.hit_group.domain, ray.hit_group.values,
               ray.path_to_fact.fk_names)
        if key not in self._ray_cache:
            rows = self.engine.semijoin_rows(
                ray.hit_group.table, ray.hit_group.attribute,
                ray.hit_group.values, ray.path_to_fact, ray.dimension)
            self._ray_cache[key] = frozenset(rows)
        return self._ray_cache[key]

    def _traced_ray_facts(self, ray) -> frozenset[int]:
        """:meth:`_ray_facts` under a ``ray.prefetch`` span.

        Prefetch tasks run in worker threads inside a copied context, so
        this span — and every operator span the engine opens beneath it —
        parents under the originating query's ``preview.sizes`` span even
        though it starts and ends on another thread.
        """
        with current_tracer().span("ray.prefetch",
                                   table=ray.hit_group.table,
                                   attribute=ray.hit_group.attribute):
            return self._ray_facts(ray)

    def subspace_size(self, star_net) -> int:
        """Fact-row count of a star net's subspace, with per-ray caching.

        Cheap enough to preview for every candidate: each distinct ray is
        evaluated once per session, and candidates share most rays.
        """
        if not star_net.rays and not star_net.measure_predicates:
            return self.schema.num_fact_rows
        rows: frozenset[int] | None = None
        for ray in star_net.rays:
            facts = self._ray_facts(ray)
            rows = facts if rows is None else rows & facts
            if not rows:
                return 0
        if star_net.measure_predicates:
            from .measure_hits import measure_fact_rows

            if rows is None:
                rows = frozenset(range(self.schema.num_fact_rows))
            for predicate in star_net.measure_predicates:
                rows = rows & frozenset(
                    measure_fact_rows(self.schema, predicate))
        return len(rows or ())

    # ------------------------------------------------------------------
    # phase 1: differentiate
    # ------------------------------------------------------------------
    def differentiate(
        self,
        query: str,
        method: RankingMethod = RankingMethod.STANDARD,
        limit: int | None = 10,
        config: GenerationConfig = DEFAULT_CONFIG,
        preview_sizes: bool = False,
        budget: Budget | None = None,
        matchers: Sequence[str] | None = None,
    ) -> list[ScoredInterpretation]:
        """Ranked candidate interpretations of a keyword query.

        Runs the staged pipeline (tokenize → match → enumerate → rank):
        the matcher chain turns keywords into typed candidates — cell-
        value hit groups, metadata attribute/measure references, pattern
        modifiers — and enumeration crosses them into
        :class:`~repro.core.interpret.Interpretation` candidates.
        ``matchers`` overrides the session's chain selection for this
        query (e.g. ``("value",)`` for the legacy value-only front end).

        With ``preview_sizes`` each returned candidate carries the number
        of fact rows its subspace would contain (computed with per-ray
        caching, so the cost is one semi-join chain per distinct ray).

        Under a ``budget`` (explicit, or ambient via
        :func:`~repro.resilience.budget.budget_scope`) enumeration is
        truncated cooperatively instead of raising: the ranked prefix
        produced so far is returned and the truncation is recorded on the
        budget's diagnostics.  Keywords no matcher accepted become notes
        on the budget's diagnostics (and :attr:`last_match_report`)
        instead of disappearing silently.
        """
        budget = budget or current_budget()
        tracer = current_tracer()
        selection = (validate_matchers(matchers) if matchers is not None
                     else self.matchers)
        started = time.perf_counter()
        with metrics_scope(self.metrics), budget_scope(budget), \
                tracer.span("differentiate", query=query) as span:
            self._last_query = query
            candidates, report = interpret_query(
                self.schema, self.index, query, config,
                matchers=selection, chain=self.chain)
            self.last_match_report = report
            for name, value in report.counters.items():
                if value:
                    self.metrics.counter(f"kdap.match.{name}").inc(value)
            if budget is not None:
                for note in report.notes():
                    budget.add_note(note)
            with tracer.span("starnet.rank", method=method.value):
                ranked = rank_interpretations(candidates, method)
            logger.info("differentiate %r: %d candidates (%s)", query,
                        len(candidates), method.value)
            if limit is not None:
                ranked = ranked[:limit]
            if preview_sizes:
                with tracer.span("preview.sizes",
                                 candidates=len(ranked)):
                    ranked = self._preview_sizes(ranked, budget)
            span.set_tag("candidates", len(candidates))
        self.metrics.counter("kdap.queries").inc()
        self.metrics.histogram("kdap.differentiate.seconds").observe(
            time.perf_counter() - started)
        return ranked

    def _prefetch_rays(self, ranked: list[ScoredInterpretation]) -> None:
        """Evaluate the distinct uncached rays of ``ranked`` in parallel.

        Candidates of one query share most rays, so sizing N candidates
        serially leaves the per-ray semi-joins — the expensive part — on
        one thread.  This warms :attr:`_ray_cache` (and the engine's plan
        cache) with a bounded pool; the serial sizing loop then runs on
        hits.  Each task runs in its own copied context so the ambient
        budget propagates to (and is charged from) worker threads; a
        task that exhausts the budget is swallowed here — the serial
        loop re-hits the exhaustion and records the truncation exactly
        as in the unthreaded path.
        """
        rays: dict[tuple, object] = {}
        for scored in ranked:
            for ray in scored.star_net.rays:
                key = (ray.hit_group.domain, ray.hit_group.values,
                       ray.path_to_fact.fk_names)
                if key not in self._ray_cache:
                    rays.setdefault(key, ray)
        if len(rays) < 2 or self.workers < 2:
            return
        with ThreadPoolExecutor(
                max_workers=min(self.workers, len(rays)),
                thread_name_prefix="kdap-ray") as pool:
            futures = [
                pool.submit(contextvars.copy_context().run,
                            self._traced_ray_facts, ray)
                for ray in rays.values()
            ]
            for future in futures:
                try:
                    future.result()
                except ResourceExhausted:
                    pass

    def _preview_sizes(self, ranked: list[ScoredInterpretation],
                       budget: Budget | None
                       ) -> list[ScoredInterpretation]:
        """Attach subspace sizes, stopping (not failing) on exhaustion."""
        self._prefetch_rays(ranked)
        previewed: list[ScoredInterpretation] = []
        for position, scored in enumerate(ranked):
            try:
                size = self.subspace_size(scored.star_net)
            except ResourceExhausted as exc:
                if budget is None:
                    raise
                budget.record_truncation(
                    "preview", exc.reason,
                    f"subspace sizes missing for {len(ranked) - position} "
                    f"of {len(ranked)} candidates")
                previewed.extend(ranked[position:])
                break
            previewed.append(ScoredInterpretation(
                scored.interpretation, scored.score, size))
        return previewed

    # ------------------------------------------------------------------
    # phase 2: explore
    # ------------------------------------------------------------------
    def explore(
        self,
        star_net: (StarNet | Interpretation | ScoredInterpretation),
        interestingness: InterestingnessMeasure = SURPRISE,
        config: ExploreConfig = ExploreConfig(),
        budget: Budget | None = None,
    ) -> ExploreResult:
        """Aggregate a chosen interpretation's subspace and build facets.

        Accepts a bare :class:`~repro.core.starnet.StarNet` or a full
        :class:`~repro.core.interpret.Interpretation` (scored or not).
        With an interpretation its hints shape the result: a matched
        measure overrides ``config.measure_name``, hinted group-by
        attributes are promoted into their dimensions' facets, and
        order/limit modifiers ("top 3") re-rank and truncate the hinted
        facet entries.

        Evaluation goes through the session's query engine: the star net
        compiles to a logical plan, the subspace comes back engine-bound,
        and every facet aggregation over it is a fingerprint-cached plan
        on the configured backend.

        Under a ``budget`` this never raises on exhaustion: it degrades
        to a partial :class:`ExploreResult` whose ``diagnostics`` records
        the truncated stages (empty subspace + no facets in the worst
        case of a deadline hit during materialisation).

        When the session has a slow-query log and ambient tracing is
        off, a local tracer is installed for the duration so a slow
        query's record carries its span tree; fast queries only pay for
        spans they would have paid for anyway.
        """
        interpretation: Interpretation | None = None
        if isinstance(star_net, ScoredInterpretation):
            interpretation = star_net.interpretation
        elif isinstance(star_net, Interpretation):
            interpretation = star_net
        net = (interpretation.star_net if interpretation is not None
               else star_net)
        if interpretation is not None:
            hint = interpretation.measure_hint
            if hint is not None and hint in self.schema.measures \
                    and hint != config.measure_name:
                config = replace(config, measure_name=hint)
        label = (interpretation.describe() if interpretation is not None
                 else str(net))
        budget = budget or current_budget()
        tracer = current_tracer()
        local_tracer = None
        if self.slow_log is not None and not tracer.enabled:
            local_tracer = Tracer()
            tracer = local_tracer
        started = time.perf_counter()
        with tracing_scope(local_tracer), metrics_scope(self.metrics), \
                budget_scope(budget), \
                tracer.span("explore", star_net=label) as span:
            result = self._explore_inner(net, interestingness,
                                         config, budget, interpretation)
        elapsed_s = time.perf_counter() - started
        self.metrics.histogram("kdap.explore.seconds").observe(elapsed_s)
        if self.slow_log is not None:
            recorded = self.slow_log.observe(
                self._last_query, label,
                plan_digest(net.to_plan(self.schema)),
                elapsed_s * 1000.0,
                span_tree=(span.to_dict() if tracer.enabled else None),
                request_id=current_request_id())
            if recorded:
                logger.warning(
                    "slow query (%.1f ms > %.1f ms): %s",
                    elapsed_s * 1000.0, self.slow_log.threshold_ms,
                    label)
        return result

    def _explore_inner(
        self,
        star_net: StarNet,
        interestingness: InterestingnessMeasure,
        config: ExploreConfig,
        budget: Budget | None,
        interpretation: Interpretation | None = None,
    ) -> ExploreResult:
        try:
            subspace = self.engine.evaluate(star_net)
        except ResourceExhausted as exc:
            if budget is None:
                raise
            budget.record_truncation(
                "subspace", exc.reason,
                "subspace not materialised; facets skipped")
            subspace = Subspace(self.schema, (), label=str(star_net),
                                engine=self.engine)
            interface = FacetedInterface(subspace, 0.0, ())
            return ExploreResult(star_net, subspace, interface,
                                 diagnostics=Diagnostics.from_budget(
                                     budget),
                                 interpretation=interpretation)
        logger.info("explore %s: %d fact rows (%s backend)", star_net,
                    len(subspace), self.engine.backend_name)
        promote = (interpretation.group_by_hints
                   if interpretation is not None else ())
        interface = build_facets(
            self.schema, star_net, subspace=subspace,
            interestingness=interestingness, config=config,
            engine=self.engine, promote=promote,
        )
        if interpretation is not None \
                and interpretation.modifier.active:
            interface = apply_modifier(interface,
                                       interpretation.modifier,
                                       promote)
        diagnostics = (Diagnostics.from_budget(budget)
                       if budget is not None else None)
        return ExploreResult(star_net, subspace, interface,
                             diagnostics=diagnostics,
                             interpretation=interpretation)

    def drill_down(
        self,
        result: "ExploreResult",
        gb: GroupByAttribute,
        value,
        interestingness: InterestingnessMeasure = SURPRISE,
        config: ExploreConfig = ExploreConfig(),
    ) -> "ExploreResult":
        """Use a facet entry as a drill-down entry point (paper §3).

        The new sub-dataspace fixes ``gb = value`` inside the current
        result's subspace; facets are rebuilt with the *previous* subspace
        as the roll-up background, so interestingness now measures
        deviation from the space the user just left.
        """
        current = self.engine.bind(result.subspace)
        finer, _next_level = _drill_subspace(current, gb, value)
        interface = build_facets(
            self.schema, result.star_net, subspace=finer,
            interestingness=interestingness, config=config,
            rollups=[current], engine=self.engine,
        )
        return ExploreResult(result.star_net, finer, interface)

    # ------------------------------------------------------------------
    # happy path
    # ------------------------------------------------------------------
    def search(
        self,
        query: str,
        interestingness: InterestingnessMeasure = SURPRISE,
        method: RankingMethod = RankingMethod.STANDARD,
        explore_config: ExploreConfig = ExploreConfig(),
        generation_config: GenerationConfig = DEFAULT_CONFIG,
        budget: Budget | None = None,
    ) -> ExploreResult | None:
        """Differentiate, pick the top star net, and explore it.

        Returns None when the query has no interpretation.  A ``budget``
        covers both phases (it is one per-query contract).
        """
        with metrics_scope(self.metrics), \
                current_tracer().span("query", query=query):
            ranked = self.differentiate(query, method=method, limit=1,
                                        config=generation_config,
                                        budget=budget)
            if not ranked:
                return None
            return self.explore(ranked[0],
                                interestingness=interestingness,
                                config=explore_config, budget=budget)

    # ------------------------------------------------------------------
    # EXPLAIN ANALYZE
    # ------------------------------------------------------------------
    def explain(
        self,
        query: str,
        pick: int = 1,
        interestingness: InterestingnessMeasure = SURPRISE,
        method: RankingMethod = RankingMethod.STANDARD,
        explore_config: ExploreConfig = ExploreConfig(),
        generation_config: GenerationConfig = DEFAULT_CONFIG,
        budget: Budget | None = None,
        matchers: Sequence[str] | None = None,
    ) -> ExplainResult | None:
        """EXPLAIN ANALYZE: run a keyword query traced, report actuals.

        Differentiates ``query``, explores its ``pick``-th ranked
        interpretation (1-based), and returns an
        :class:`~repro.obs.explain.ExplainResult` whose plan tree is
        annotated per node with the calls, rows, batches, and inclusive
        seconds the backends actually recorded — plus the phase-level
        span breakdown.  Returns None when the query has fewer than
        ``pick`` interpretations.

        When an enabled tracer is already ambient (e.g. the CLI's
        ``--trace-out``), its trace is reused so the explained spans end
        up in the exported trace too; otherwise a private tracer lives
        just for this call.
        """
        if pick < 1:
            raise ValueError("pick is 1-based and must be >= 1")
        ambient = current_tracer()
        tracer = ambient if ambient.enabled else Tracer()
        started = time.perf_counter()
        with tracing_scope(tracer), metrics_scope(self.metrics), \
                tracer.span("query", query=query, mode="explain"):
            ranked = self.differentiate(query, method=method, limit=pick,
                                        config=generation_config,
                                        budget=budget, matchers=matchers)
            if len(ranked) < pick:
                return None
            scored = ranked[pick - 1]
            net = scored.star_net
            result = self.explore(scored,
                                  interestingness=interestingness,
                                  config=explore_config, budget=budget)
        elapsed_s = time.perf_counter() - started
        measure_name = explore_config.measure_name
        hint = scored.interpretation.measure_hint
        if hint is not None and hint in self.schema.measures:
            measure_name = hint
        total_plan = None
        if not result.subspace.is_empty:
            measure = self.schema.measures[measure_name]
            total_plan = subspace_aggregate_plan(
                self.schema, result.subspace.fact_rows, measure)
        return ExplainResult(
            query=query,
            interpretation=scored.interpretation.describe(),
            backend=self.engine.backend_name,
            elapsed_s=elapsed_s,
            plan=profile_plan(net.to_plan(self.schema), tracer),
            total_plan=(profile_plan(total_plan, tracer)
                        if total_plan is not None else None),
            tracer=tracer,
            match=(self.last_match_report.as_dict()
                   if self.last_match_report is not None else None),
        )
