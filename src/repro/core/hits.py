"""Hits and hit groups (paper §4.2).

For each keyword the system probes the full-text index and obtains a *hit
set*; hits drawn from the same attribute domain form a *hit group*.  A hit
group is the unit star nets are assembled from: it stands for the predicate
``table.attribute IN {matched values}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..textindex.index import AttributeTextIndex, SearchHit


@dataclass(frozen=True)
class HitGroup:
    """All hits of one or more keywords inside one attribute domain.

    ``keywords`` records which query keywords produced this group; phrase
    merging (§4.3) produces groups carrying several keywords.
    """

    table: str
    attribute: str
    hits: tuple[SearchHit, ...]
    keywords: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.hits:
            raise ValueError("a hit group must contain at least one hit")
        for hit in self.hits:
            if hit.table != self.table or hit.attribute != self.attribute:
                raise ValueError(
                    f"hit {hit} does not belong to domain "
                    f"{self.table}/{self.attribute}"
                )

    @property
    def domain(self) -> tuple[str, str]:
        """The attribute domain (table, attribute)."""
        return (self.table, self.attribute)

    @property
    def values(self) -> tuple[str, ...]:
        """The matched attribute instance values."""
        return tuple(h.value for h in self.hits)

    @property
    def size(self) -> int:
        """|HG|: number of hits in the group."""
        return len(self.hits)

    def mean_score(self) -> float:
        """Average full-text relevance over the group's hits."""
        return sum(h.score for h in self.hits) / len(self.hits)

    def __str__(self) -> str:
        values = " OR ".join(repr(v) for v in self.values[:3])
        if len(self.hits) > 3:
            values += f" OR ... ({len(self.hits)} values)"
        return f"{self.table}/{self.attribute}/{{{values}}}"


def retrieve_hit_set(
    index: AttributeTextIndex,
    keyword: str,
    max_hits: int = 200,
    min_score: float = 0.0,
    fuzzy: bool = False,
) -> list[SearchHit]:
    """H_i: the ranked hits of one keyword (capped at ``max_hits``)."""
    return index.search(keyword, limit=max_hits, min_score=min_score,
                        fuzzy=fuzzy)


def group_hits(keyword: str, hits: list[SearchHit]) -> list[HitGroup]:
    """Partition a hit set into hit groups by attribute domain.

    Groups are ordered by their best hit score so downstream candidate caps
    keep the most relevant domains.
    """
    by_domain: dict[tuple[str, str], list[SearchHit]] = {}
    for hit in hits:
        by_domain.setdefault(hit.domain, []).append(hit)
    groups = [
        HitGroup(table, attribute, tuple(domain_hits), (keyword,))
        for (table, attribute), domain_hits in by_domain.items()
    ]
    groups.sort(key=lambda g: (-max(h.score for h in g.hits), g.table, g.attribute))
    return groups


def retrieve_hit_groups(
    index: AttributeTextIndex,
    keyword: str,
    max_hits: int = 200,
    max_groups: int | None = None,
    fuzzy: bool = False,
) -> list[HitGroup]:
    """Probe the index for one keyword and return its hit groups."""
    hits = retrieve_hit_set(index, keyword, max_hits=max_hits, fuzzy=fuzzy)
    groups = group_hits(keyword, hits)
    if max_groups is not None:
        groups = groups[:max_groups]
    return groups
