"""Candidate star-net generation (paper §4.2, Algorithm 1).

Pipeline:

1. split the query into keywords and probe the full-text index per keyword;
2. organise each hit set into hit groups (one per attribute domain);
3. take the cross product of hit groups across keywords → star seeds;
4. apply phrase merging inside each seed (§4.3) and deduplicate;
5. for each hit group, enumerate join paths from its table to the fact
   table, keeping only paths that stay inside a single dimension (the
   OLAP-validity restriction of §4.2);
6. take the cross product of path choices → star nets, with alias/merge
   semantics applied by :class:`~repro.core.starnet.StarNet`.

All fan-outs are capped by :class:`GenerationConfig` so pathological
queries degrade gracefully instead of exploding.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass

from ..obs.tracer import current_tracer
from ..relational.errors import ResourceExhausted
from ..resilience.budget import current_budget
from ..textindex.index import AttributeTextIndex, SearchHit
from ..warehouse.graph import EMPTY_PATH, JoinPath
from ..warehouse.schema import StarSchema
from .hits import HitGroup, retrieve_hit_groups
from .phrases import merge_seed_groups
from .starnet import Ray, StarNet, StarSeed


@dataclass(frozen=True)
class GenerationConfig:
    """Caps and knobs for candidate generation."""

    max_hits_per_keyword: int = 200
    max_groups_per_keyword: int = 8
    max_path_length: int = 5
    max_seeds: int = 200
    max_candidates: int = 400
    require_all_keywords: bool = True
    enable_measure_predicates: bool = True
    """Recognise ``revenue>5000``-style keywords as fact-level filters
    (the paper's §7 measure-attribute extension)."""
    fuzzy_matching: bool = False
    """Also match keywords within one Levenshtein edit (typo
    tolerance), on top of stemming and prefix expansion."""


logger = logging.getLogger(__name__)

DEFAULT_CONFIG = GenerationConfig()


def split_keywords(query: str) -> list[str]:
    """Whitespace keyword split (the paper's q = {k1, ..., kn})."""
    return [k for k in query.split() if k]


def split_query(schema: StarSchema, query: str,
                config: GenerationConfig) -> tuple[list[str], list]:
    """Separate text keywords from measure predicates (§7 extension)."""
    from .measure_hits import parse_measure_keyword

    keywords: list[str] = []
    predicates: list = []
    for keyword in split_keywords(query):
        predicate = (parse_measure_keyword(schema, keyword)
                     if config.enable_measure_predicates else None)
        if predicate is not None:
            predicates.append(predicate)
        else:
            keywords.append(keyword)
    return keywords, predicates


def ray_dimension(schema: StarSchema, path: JoinPath) -> str | None:
    """The dimension a ray's path runs through.

    A valid OLAP ray stays inside one dimension: every non-fact table on
    the path must belong to it.  Returns the dimension name, or None for
    the empty path (fact-table hit).  Paths not containable in any single
    dimension are invalid interpretations → raises ValueError.
    """
    if not path.steps:
        return None
    tables = [t for t in path.tables if t not in schema.fact_complex]
    candidates = [
        dim.name
        for dim in schema.dimensions
        if all(t in dim.tables for t in tables)
    ]
    if not candidates:
        raise ValueError(f"path {path} crosses dimension boundaries")
    return candidates[0]


def valid_ray_paths(
    schema: StarSchema,
    hit_table: str,
    max_path_length: int,
) -> list[tuple[JoinPath, str | None]]:
    """All OLAP-valid (path, dimension) options from a hit table to the fact.

    * a hit on the fact table itself yields the empty path;
    * every other path must end at the fact table with its final step
      arriving as a child (dimensions are parents of the fact) and stay
      within one dimension.
    """
    if hit_table == schema.fact_table:
        return [(EMPTY_PATH, None)]
    options: list[tuple[JoinPath, str | None]] = []
    for path in schema.graph.join_paths(hit_table, schema.fact_table,
                                        max_length=max_path_length):
        try:
            dimension = ray_dimension(schema, path)
        except ValueError:
            continue
        options.append((path, dimension))
    return options


def rescore_group(group: HitGroup, index: AttributeTextIndex,
                  query: str) -> HitGroup:
    """Re-score every hit of a group against the full query string.

    §4.4 defines Sim(h.val, q) against the whole query, which is what lets
    multi-keyword instances dominate; retrieval-time scores were per
    keyword only.
    """
    hits = tuple(
        SearchHit(h.table, h.attribute, h.value,
                  index.score_value(h.table, h.attribute, h.value, query),
                  retrieval_score=h.raw_score)
        for h in group.hits
    )
    return HitGroup(group.table, group.attribute, hits, group.keywords)


def generate_star_seeds(
    schema: StarSchema,
    index: AttributeTextIndex,
    query: str,
    config: GenerationConfig = DEFAULT_CONFIG,
) -> list[StarSeed]:
    """Steps 1-4: keyword probing, hit grouping, cross product, phrase merge."""
    keywords, _predicates = split_query(schema, query, config)
    per_keyword: list[list[HitGroup]] = []
    for keyword in keywords:
        if not index.analyzer.analyze(keyword):
            # stopword-only keyword ("for", "or") — carries no selection
            continue
        groups = retrieve_hit_groups(
            index,
            keyword,
            max_hits=config.max_hits_per_keyword,
            max_groups=config.max_groups_per_keyword,
            fuzzy=config.fuzzy_matching,
        )
        if groups:
            per_keyword.append(groups)
        elif config.require_all_keywords:
            return []
    if not per_keyword:
        return []

    budget = current_budget()
    seeds: list[StarSeed] = []
    seen: set[tuple] = set()
    for combo in itertools.islice(
        itertools.product(*per_keyword), config.max_seeds * 4
    ):
        if budget is not None:
            try:
                budget.check_deadline("generation")
            except ResourceExhausted as exc:
                budget.record_truncation(
                    "generation", exc.reason,
                    f"seed enumeration stopped after {len(seeds)} seeds")
                break
        merged = merge_seed_groups(tuple(combo), index)
        merged = tuple(rescore_group(g, index, query) for g in merged)
        key = tuple(sorted((g.domain, g.values) for g in merged))
        if key in seen:
            continue
        seen.add(key)
        seeds.append(StarSeed(merged))
        if len(seeds) >= config.max_seeds:
            break
    return seeds


def generate_candidates(
    schema: StarSchema,
    index: AttributeTextIndex,
    query: str,
    config: GenerationConfig = DEFAULT_CONFIG,
) -> list[StarNet]:
    """Algorithm 1 end to end: all candidate star nets for a keyword query."""
    with current_tracer().span("starnet.enumerate") as span:
        candidates = _generate_candidates(schema, index, query, config)
        span.set_tag("candidates", len(candidates))
    return candidates


def _generate_candidates(
    schema: StarSchema,
    index: AttributeTextIndex,
    query: str,
    config: GenerationConfig,
) -> list[StarNet]:
    keywords, predicates = split_query(schema, query, config)
    measure_predicates = tuple(predicates)
    if not keywords and measure_predicates:
        # pure measure queries select a subspace of the whole dataspace
        return [StarNet(schema.fact_table, (),
                        measure_predicates=measure_predicates)]
    seeds = generate_star_seeds(schema, index, query, config)
    budget = current_budget()
    candidates: list[StarNet] = []
    seen: set[tuple] = set()
    for seed in seeds:
        path_options = []
        feasible = True
        for group in seed.hit_groups:
            options = valid_ray_paths(schema, group.table,
                                      config.max_path_length)
            if not options:
                feasible = False
                break
            path_options.append([(group, path, dim) for path, dim in options])
        if not feasible:
            continue
        for combo in itertools.product(*path_options):
            rays = tuple(
                Ray(group, path, dim) for group, path, dim in combo
            )
            key = tuple(
                sorted((r.hit_group.domain, r.hit_group.values,
                        r.path_to_fact.fk_names) for r in rays)
            )
            if key in seen:
                continue
            seen.add(key)
            if budget is not None:
                try:
                    budget.check_deadline("generation")
                    budget.charge_interpretations(1)
                except ResourceExhausted as exc:
                    budget.record_truncation(
                        "generation", exc.reason,
                        f"star-net enumeration stopped after "
                        f"{len(candidates)} candidates")
                    return candidates
            candidates.append(
                StarNet(schema.fact_table, rays,
                        measure_predicates=measure_predicates)
            )
            if len(candidates) >= config.max_candidates:
                logger.debug(
                    "candidate cap reached for %r (%d candidates)",
                    query, len(candidates))
                return candidates
    logger.debug("%r: %d seeds -> %d candidate star nets",
                 query, len(seeds), len(candidates))
    return candidates
