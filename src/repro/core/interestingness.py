"""Interestingness measures over (subspace, roll-up) aggregate series.

The paper evaluates a candidate partition by comparing two aggregation
series over the same categories: X from the sub-dataspace DS' and Y from
the roll-up space RUP(DS').  Application-specific measures map the pair to
a single interestingness score (higher = more interesting):

* :class:`SurpriseMeasure`  — Eq. (1): the *negated* Pearson correlation.
  Partitions whose local distribution deviates from the roll-up trend are
  surprising (exception finding, Sarawagi-style).
* :class:`BellwetherMeasure` — the positive correlation.  Partitions whose
  local aggregates track the larger region hint at bellwethers (Chen et
  al., VLDB 2006).

Both are thin wrappers over :func:`pearson_correlation`, which fixes a
documented convention for degenerate series (zero variance).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation with explicit degenerate-case conventions.

    * series shorter than 2 → 0.0 (no trend to compare);
    * either series constant → 1.0 when both are constant (identical
      shape), else 0.0 (no linear relationship measurable).

    These conventions keep the surprise score bounded and deterministic on
    the tiny partitions keyword subspaces routinely produce.
    """
    n = len(x)
    if n != len(y):
        raise ValueError(f"series length mismatch: {len(x)} vs {len(y)}")
    if n < 2:
        return 0.0
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    var_x = sum((v - mean_x) ** 2 for v in x)
    var_y = sum((v - mean_y) ** 2 for v in y)
    if var_x == 0.0 or var_y == 0.0:
        return 1.0 if var_x == var_y == 0.0 else 0.0
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    # take the roots separately: var_x * var_y can underflow to 0.0 for
    # tiny variances even though both factors are positive
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator == 0.0:
        return 0.0
    return max(-1.0, min(1.0, cov / denominator))


class InterestingnessMeasure(Protocol):
    """Scores an (X, Y) aggregate-series pair; higher = more interesting."""

    name: str

    def score_series(self, x: Sequence[float], y: Sequence[float]) -> float:
        """Interestingness of partition series X against roll-up series Y."""
        ...


class SurpriseMeasure:
    """Eq. (1): SCORE = -corr(X, Y).  High when DS' deviates from RUP(DS')."""

    name = "surprise"

    def score_series(self, x: Sequence[float], y: Sequence[float]) -> float:
        return -pearson_correlation(x, y)


class BellwetherMeasure:
    """SCORE = +corr(X, Y).  High when local aggregates track the roll-up."""

    name = "bellwether"

    def score_series(self, x: Sequence[float], y: Sequence[float]) -> float:
        return pearson_correlation(x, y)


class MaxShareDeviationMeasure:
    """An alternative exception measure: the largest absolute difference
    between the subspace's and the roll-up's *share* of any category.

    Where :class:`SurpriseMeasure` reacts to the overall trend shape
    (correlation), this reacts to a single strongly deviating category —
    closer in spirit to Sarawagi's cell-level surprise.  Included to
    demonstrate the framework's pluggability (§3: "Our framework
    accommodates such interestingness measures").
    """

    name = "max-share-deviation"

    def score_series(self, x: Sequence[float], y: Sequence[float]) -> float:
        if len(x) != len(y):
            raise ValueError(f"series length mismatch: {len(x)} vs {len(y)}")
        if not x:
            return 0.0
        total_x = sum(x)
        total_y = sum(y)
        if total_x == 0.0 or total_y == 0.0:
            return 0.0
        return max(abs(a / total_x - b / total_y) for a, b in zip(x, y))


SURPRISE = SurpriseMeasure()
BELLWETHER = BellwetherMeasure()
MAX_SHARE_DEVIATION = MaxShareDeviationMeasure()
