"""Per-schema synonym registry (SODA-style metadata matching).

Business users rarely type the warehouse's physical column names: they
say "sales" for the ``revenue`` measure and "month" for
``DimDate.MonthName``.  A :class:`SynonymRegistry` maps such business
terms onto schema targets so the metadata matcher
(:class:`~repro.core.matching.MetadataMatcher`) can resolve keywords
that have no cell-value hit at all.

Targets use a compact textual form so registries round-trip through a
JSON sidecar (``repro warehouse generate --synonyms out.json``):

* ``"Table.Column"`` — an attribute target (must name a declared
  group-by attribute to resolve);
* ``"measure:name"`` — a measure target.

Lookup keys are normalised with the same Porter stemmer the text index
uses, so "sales"/"sale" and "categories"/"category" collapse onto one
entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..textindex.stemmer import stem


@dataclass(frozen=True)
class SynonymTarget:
    """One resolved synonym target: an attribute domain or a measure."""

    kind: str  # "attribute" | "measure"
    table: str = ""
    column: str = ""
    measure: str = ""

    @staticmethod
    def parse(raw: str) -> "SynonymTarget":
        """Parse the sidecar form (``Table.Column`` / ``measure:name``)."""
        if raw.startswith("measure:"):
            name = raw[len("measure:"):].strip()
            if not name:
                raise ValueError(f"empty measure target in {raw!r}")
            return SynonymTarget(kind="measure", measure=name)
        table, sep, column = raw.partition(".")
        if not sep or not table or not column:
            raise ValueError(
                f"synonym target {raw!r} is neither 'Table.Column' nor "
                f"'measure:name'")
        return SynonymTarget(kind="attribute", table=table, column=column)

    def __str__(self) -> str:
        if self.kind == "measure":
            return f"measure:{self.measure}"
        return f"{self.table}.{self.column}"


def _normalize(term: str) -> str:
    return stem(term.strip().lower())


class SynonymRegistry:
    """Stemmed business-term → schema-target lookup table.

    ``entries`` maps raw terms to target strings; terms are single
    words (multi-word phrases are matched token-by-token upstream, so a
    phrase entry would never be probed).
    """

    def __init__(self,
                 entries: Mapping[str, Sequence[str]] | None = None):
        self._raw: dict[str, tuple[str, ...]] = {}
        self._lookup: dict[str, tuple[SynonymTarget, ...]] = {}
        for term, targets in (entries or {}).items():
            self.add(term, targets)

    def add(self, term: str, targets: Sequence[str]) -> None:
        """Register one term; repeated adds extend its target list."""
        if not term.strip():
            raise ValueError("synonym term must be non-empty")
        parsed = tuple(SynonymTarget.parse(t) for t in targets)
        existing = self._raw.get(term, ())
        self._raw[term] = existing + tuple(str(t) for t in parsed)
        key = _normalize(term)
        self._lookup[key] = self._lookup.get(key, ()) + parsed

    def lookup(self, token: str) -> tuple[SynonymTarget, ...]:
        """All targets of ``token`` (stem-normalised; () when unknown)."""
        return self._lookup.get(_normalize(token), ())

    def terms(self) -> list[str]:
        return sorted(self._raw)

    def __len__(self) -> int:
        return len(self._raw)

    def __bool__(self) -> bool:
        return bool(self._raw)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._raw))

    # ------------------------------------------------------------------
    # JSON sidecar round-trip
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, list[str]]:
        return {term: list(targets)
                for term, targets in sorted(self._raw.items())}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SynonymRegistry":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("synonym sidecar must be a JSON object")
        entries: dict[str, list[str]] = {}
        for term, targets in data.items():
            if isinstance(targets, str):
                targets = [targets]
            if not isinstance(targets, list) or \
                    not all(isinstance(t, str) for t in targets):
                raise ValueError(
                    f"targets of {term!r} must be a list of strings")
            entries[term] = targets
        return cls(entries)

    @classmethod
    def load(cls, path: str) -> "SynonymRegistry":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")


EMPTY_REGISTRY = SynonymRegistry()
