"""Engine-wide exception taxonomy.

Every error raised by the engine derives from :class:`RelationalError`,
so callers can catch engine failures without accidentally swallowing
unrelated bugs.  The taxonomy has three branches:

* schema/type/expression errors — a query or definition is malformed;
* :class:`ResourceExhausted` — a query ran out of its resource budget
  (:class:`BudgetExceeded`) or wall-clock deadline
  (:class:`DeadlineExceeded`); raised cooperatively by the plan layer,
  both execution backends, star-net enumeration, and facet building;
* :class:`BackendError` — an execution backend misbehaved;
  :class:`TransientBackendError` marks failures worth retrying, and
  :class:`BackendUnavailableError` reports that retries *and* failover
  were exhausted.

The CLI maps each branch to a distinct non-zero exit code.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-engine errors."""


class SchemaError(RelationalError):
    """A table, column, or foreign key definition is invalid."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str):
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class DuplicateTableError(SchemaError):
    """A table with the same name already exists in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"duplicate table: {name!r}")
        self.name = name


class TypeMismatchError(RelationalError):
    """A value does not conform to its column's declared type."""


class IntegrityError(RelationalError):
    """A foreign key or row-shape constraint was violated."""


class ExpressionError(RelationalError):
    """An expression tree references unknown columns or is malformed."""


class ResourceExhausted(RelationalError):
    """A query exceeded a resource budget or its wall-clock deadline.

    ``stage`` names where the limit was hit (``"scan"``, ``"generation"``,
    ``"facet:Customer"``, ...), ``reason`` which limit
    (``"deadline"``, ``"rows"``, ``"groups"``, ``"interpretations"``).
    """

    def __init__(self, message: str, stage: str = "", reason: str = ""):
        super().__init__(message)
        self.stage = stage
        self.reason = reason


class BudgetExceeded(ResourceExhausted):
    """A row / group / interpretation budget was exhausted."""


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before the query finished."""

    def __init__(self, message: str, stage: str = ""):
        super().__init__(message, stage=stage, reason="deadline")


class BackendError(RelationalError):
    """An execution backend failed while evaluating a plan."""


class TransientBackendError(BackendError):
    """A backend failure that is worth retrying (lock contention, injected
    fault, flaky I/O)."""


class BackendUnavailableError(BackendError):
    """Retries and failover were exhausted; no backend could serve the
    plan."""
