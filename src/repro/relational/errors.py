"""Exception hierarchy for the in-memory relational engine.

Every error raised by :mod:`repro.relational` derives from
:class:`RelationalError`, so callers can catch engine failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational-engine errors."""


class SchemaError(RelationalError):
    """A table, column, or foreign key definition is invalid."""


class UnknownTableError(SchemaError):
    """A referenced table does not exist in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"unknown table: {name!r}")
        self.name = name


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in its table."""

    def __init__(self, table: str, column: str):
        super().__init__(f"unknown column: {table!r}.{column!r}")
        self.table = table
        self.column = column


class DuplicateTableError(SchemaError):
    """A table with the same name already exists in the catalog."""

    def __init__(self, name: str):
        super().__init__(f"duplicate table: {name!r}")
        self.name = name


class TypeMismatchError(RelationalError):
    """A value does not conform to its column's declared type."""


class IntegrityError(RelationalError):
    """A foreign key or row-shape constraint was violated."""


class ExpressionError(RelationalError):
    """An expression tree references unknown columns or is malformed."""
