"""Encoded column chunks with zone maps.

The storage layer beneath the vectorized executor.  A column is split
into fixed-width *chunks* of :data:`CHUNK_SIZE` rows; each chunk is
stored in whichever encoding fits its data:

* :class:`DictChunk` — dictionary encoding for low-cardinality columns
  (dimension attributes resolved to the fact grain repeat a handful of
  values millions of times);
* :class:`RLEChunk` — run-length encoding for sorted or repetitive
  columns (facts clustered by date key collapse to a few runs per
  chunk);
* :class:`PlainChunk` — a zero-copy view over the raw value list for
  everything else.

Every chunk carries a :class:`ZoneMap` (min/max over non-null values,
null count, distinct-count hint), so selection kernels can discard a
whole chunk with one comparison before doing any per-row work: scan
cost becomes proportional to *relevant* chunks rather than table rows.

Chunk kernels mirror the plain-array kernels of
:mod:`repro.relational.vector` — same arguments, same results, same
NULL semantics — but exploit the encoding: a dictionary ``IN`` probes
the (tiny) dictionary once instead of every row; an RLE selection
expands matching runs with ``range`` instead of testing row by row.
Selection vectors are **global** row ids and must be ascending, exactly
as everywhere else in the engine.

All chunk boundaries are uniform (``chunk i`` covers rows
``[i * size, (i + 1) * size)``), so chunk lists of different columns of
one table stay index-aligned and multi-column operators can walk them
in lockstep.
"""

from __future__ import annotations

from typing import Iterable, Sequence

CHUNK_SIZE = 4096
"""Rows per encoded chunk (matches the executor's batch size, so one
chunk is one unit of budget charging, zone-map pruning, and morsel
scheduling)."""

DICT_MAX_CARD = 256
"""A chunk is dictionary-encoded only below this distinct-value count
(past it, the dictionary stops paying for itself)."""


class ZoneMap:
    """Per-chunk statistics used to skip chunks before reading them."""

    __slots__ = ("lo", "hi", "null_count", "distinct_hint")

    def __init__(self, lo, hi, null_count: int, distinct_hint: int | None):
        self.lo = lo
        self.hi = hi
        self.null_count = null_count
        self.distinct_hint = distinct_hint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ZoneMap(lo={self.lo!r}, hi={self.hi!r}, "
            f"nulls={self.null_count}, distinct={self.distinct_hint})"
        )


def _zone_bounds(non_null: Iterable):
    """(lo, hi) over an iterable of non-null values; (None, None) when the
    values are not mutually comparable (mixed-type object columns)."""
    values = list(non_null)
    if not values:
        return None, None
    try:
        return min(values), max(values)
    except TypeError:
        return None, None


class ColumnChunk:
    """Base class: one encoded span ``[start, stop)`` of a column."""

    __slots__ = ("start", "stop", "zone")

    encoding = "plain"

    def __init__(self, start: int, stop: int, zone: ZoneMap):
        self.start = start
        self.stop = stop
        self.zone = zone

    def __len__(self) -> int:
        return self.stop - self.start

    # -- zone-map skip tests ------------------------------------------
    def may_match_in(self, wanted, keep_null: bool) -> bool:
        """False only when *no* row of this chunk can satisfy an ``IN``
        over ``wanted`` (conservative: True whenever unsure)."""
        zone = self.zone
        if zone.null_count == len(self):
            return keep_null and None in wanted
        if zone.lo is None:
            return True  # bounds unknown: cannot rule anything out
        if keep_null and zone.null_count and None in wanted:
            return True
        lo, hi = zone.lo, zone.hi
        try:
            return any(
                v is not None and lo <= v <= hi for v in wanted
            )
        except TypeError:
            return True

    def may_match_range(self, low, high, inclusive_high: bool) -> bool:
        """False only when no row can fall in ``[low, high)`` (or
        ``[low, high]``); NULLs never match a range."""
        zone = self.zone
        if zone.null_count == len(self):
            return False
        if zone.lo is None:
            return True
        try:
            if zone.hi < low:
                return False
            if inclusive_high:
                return not zone.lo > high
            return not zone.lo >= high
        except TypeError:
            return True

    # -- kernels (implemented per encoding) ---------------------------
    def values(self) -> list:
        """The decoded value slice of this chunk."""
        raise NotImplementedError

    def gather(self, row_ids: Sequence[int]) -> list:
        """Values at the given (ascending, in-chunk) global row ids."""
        raise NotImplementedError

    def select_in(self, wanted, keep_null: bool,
                  row_ids: Sequence[int] | None = None) -> list[int]:
        """Global ids of in-chunk rows whose value is in ``wanted``
        (same NULL semantics as :func:`repro.relational.vector.select_in`);
        ``row_ids=None`` means the whole chunk."""
        raise NotImplementedError

    def select_range(self, low, high, inclusive_high: bool,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        """Global ids of in-chunk rows with ``low <= value < high`` (or
        ``<= high``); NULLs never match."""
        raise NotImplementedError

    def group_into(self, groups: dict,
                   row_ids: Sequence[int] | None = None) -> None:
        """Append this chunk's global row ids into ``groups`` (value →
        ascending id list), dropping NULL keys."""
        raise NotImplementedError


class PlainChunk(ColumnChunk):
    """A zero-copy view over ``base[start:stop]`` of the raw value list.

    Kernels index ``base`` with *global* row ids directly, so the plain
    encoding adds no indirection over the pre-chunk array kernels.
    """

    __slots__ = ("base",)

    encoding = "plain"

    def __init__(self, base: Sequence, start: int, stop: int, zone: ZoneMap):
        super().__init__(start, stop, zone)
        self.base = base

    def values(self) -> list:
        return list(self.base[self.start : self.stop])

    def gather(self, row_ids: Sequence[int]) -> list:
        base = self.base
        return [base[r] for r in row_ids]

    def select_in(self, wanted, keep_null: bool,
                  row_ids: Sequence[int] | None = None) -> list[int]:
        base = self.base
        if row_ids is None:
            row_ids = range(self.start, self.stop)
        if keep_null:
            return [r for r in row_ids if base[r] in wanted]
        return [
            r for r in row_ids if base[r] is not None and base[r] in wanted
        ]

    def select_range(self, low, high, inclusive_high: bool,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        base = self.base
        if row_ids is None:
            row_ids = range(self.start, self.stop)
        if inclusive_high:
            return [
                r
                for r in row_ids
                if base[r] is not None and low <= base[r] <= high
            ]
        return [
            r for r in row_ids if base[r] is not None and low <= base[r] < high
        ]

    def group_into(self, groups: dict,
                   row_ids: Sequence[int] | None = None) -> None:
        base = self.base
        if row_ids is None:
            row_ids = range(self.start, self.stop)
        get = groups.get
        for r in row_ids:
            value = base[r]
            if value is not None:
                group = get(value)
                if group is None:
                    groups[value] = [r]
                else:
                    group.append(r)


class DictChunk(ColumnChunk):
    """Dictionary encoding: per-row small-integer codes into a chunk-local
    value dictionary (built in first-seen order; NULL gets its own code
    when present)."""

    __slots__ = ("codes", "dictionary")

    encoding = "dict"

    def __init__(self, codes: list[int], dictionary: list,
                 start: int, stop: int, zone: ZoneMap):
        super().__init__(start, stop, zone)
        self.codes = codes
        self.dictionary = dictionary

    def values(self) -> list:
        dictionary = self.dictionary
        return [dictionary[c] for c in self.codes]

    def gather(self, row_ids: Sequence[int]) -> list:
        dictionary, codes, start = self.dictionary, self.codes, self.start
        return [dictionary[codes[r - start]] for r in row_ids]

    def _wanted_codes(self, wanted, keep_null: bool) -> set[int]:
        out = set()
        for code, value in enumerate(self.dictionary):
            if value is None:
                if keep_null and None in wanted:
                    out.add(code)
            elif value in wanted:
                out.add(code)
        return out

    def select_in(self, wanted, keep_null: bool,
                  row_ids: Sequence[int] | None = None) -> list[int]:
        hits = self._wanted_codes(wanted, keep_null)
        if not hits:
            return []
        codes, start = self.codes, self.start
        if row_ids is None:
            return [start + i for i, c in enumerate(codes) if c in hits]
        return [r for r in row_ids if codes[r - start] in hits]

    def select_range(self, low, high, inclusive_high: bool,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        if inclusive_high:
            hits = {
                code
                for code, v in enumerate(self.dictionary)
                if v is not None and low <= v <= high
            }
        else:
            hits = {
                code
                for code, v in enumerate(self.dictionary)
                if v is not None and low <= v < high
            }
        if not hits:
            return []
        codes, start = self.codes, self.start
        if row_ids is None:
            return [start + i for i, c in enumerate(codes) if c in hits]
        return [r for r in row_ids if codes[r - start] in hits]

    def group_into(self, groups: dict,
                   row_ids: Sequence[int] | None = None) -> None:
        dictionary, codes, start = self.dictionary, self.codes, self.start
        if row_ids is None:
            buckets: list[list[int]] = [[] for _ in dictionary]
            for i, c in enumerate(codes):
                buckets[c].append(start + i)
            for value, bucket in zip(dictionary, buckets):
                if value is None or not bucket:
                    continue
                group = groups.get(value)
                if group is None:
                    groups[value] = bucket
                else:
                    group.extend(bucket)
            return
        get = groups.get
        for r in row_ids:
            value = dictionary[codes[r - start]]
            if value is not None:
                group = get(value)
                if group is None:
                    groups[value] = [r]
                else:
                    group.append(r)


class RLEChunk(ColumnChunk):
    """Run-length encoding: ``run_values[i]`` repeats over local rows
    ``[run_ends[i-1], run_ends[i])`` (with an implicit 0 start)."""

    __slots__ = ("run_values", "run_ends")

    encoding = "rle"

    def __init__(self, run_values: list, run_ends: list[int],
                 start: int, stop: int, zone: ZoneMap):
        super().__init__(start, stop, zone)
        self.run_values = run_values
        self.run_ends = run_ends

    def values(self) -> list:
        out: list = []
        prev = 0
        for value, end in zip(self.run_values, self.run_ends):
            out.extend([value] * (end - prev))
            prev = end
        return out

    def _runs(self):
        """(value, local_start, local_end) triples."""
        prev = 0
        for value, end in zip(self.run_values, self.run_ends):
            yield value, prev, end
            prev = end

    def gather(self, row_ids: Sequence[int]) -> list:
        out: list = []
        ends, values, start = self.run_ends, self.run_values, self.start
        idx = 0
        for r in row_ids:
            local = r - start
            while ends[idx] <= local:
                idx += 1
            out.append(values[idx])
        return out

    def _select_runs(self, match, row_ids: Sequence[int] | None) -> list[int]:
        out: list[int] = []
        start = self.start
        if row_ids is None:
            for value, lo, hi in self._runs():
                if match(value):
                    out.extend(range(start + lo, start + hi))
            return out
        ends, values = self.run_ends, self.run_values
        idx = 0
        for r in row_ids:
            local = r - start
            while ends[idx] <= local:
                idx += 1
            if match(values[idx]):
                out.append(r)
        return out

    def select_in(self, wanted, keep_null: bool,
                  row_ids: Sequence[int] | None = None) -> list[int]:
        if keep_null:
            return self._select_runs(lambda v: v in wanted, row_ids)
        return self._select_runs(
            lambda v: v is not None and v in wanted, row_ids
        )

    def select_range(self, low, high, inclusive_high: bool,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        if inclusive_high:
            return self._select_runs(
                lambda v: v is not None and low <= v <= high, row_ids
            )
        return self._select_runs(
            lambda v: v is not None and low <= v < high, row_ids
        )

    def group_into(self, groups: dict,
                   row_ids: Sequence[int] | None = None) -> None:
        start = self.start
        if row_ids is None:
            get = groups.get
            for value, lo, hi in self._runs():
                if value is None:
                    continue
                ids = range(start + lo, start + hi)
                group = get(value)
                if group is None:
                    groups[value] = list(ids)
                else:
                    group.extend(ids)
            return
        ends, values = self.run_ends, self.run_values
        idx = 0
        get = groups.get
        for r in row_ids:
            local = r - start
            while ends[idx] <= local:
                idx += 1
            value = values[idx]
            if value is not None:
                group = get(value)
                if group is None:
                    groups[value] = [r]
                else:
                    group.append(r)


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_chunk(base: Sequence, start: int, stop: int) -> ColumnChunk:
    """Encode one span of a value list, picking the cheapest encoding.

    One analysis pass collects run structure, (capped) distinct values,
    and null counts; RLE wins when the span collapses to few runs, a
    dictionary wins at low cardinality, and everything else stays a
    plain zero-copy view.
    """
    span = base[start:stop]
    n = len(span)
    null_count = 0
    run_values: list = []
    run_ends: list[int] = []
    distinct: dict = {}
    distinct_overflow = False
    sentinel = object()
    prev = sentinel
    for i, value in enumerate(span):
        if value is None:
            null_count += 1
        if prev is sentinel or (value is not prev and value != prev):
            if prev is not sentinel:
                run_ends.append(i)
            run_values.append(value)
            prev = value
        if not distinct_overflow:
            try:
                distinct[value] = None
            except TypeError:
                distinct_overflow = True
            if len(distinct) > DICT_MAX_CARD:
                distinct_overflow = True
    if prev is not sentinel:
        run_ends.append(n)

    if distinct_overflow:
        distinct_hint = None
        non_null = set()
    else:
        non_null = {v for v in distinct if v is not None}
        distinct_hint = len(non_null)
    num_runs = len(run_values)
    if num_runs and num_runs * 4 <= n:
        lo, hi = _zone_bounds(v for v in run_values if v is not None)
        zone = ZoneMap(lo, hi, null_count, distinct_hint)
        return RLEChunk(run_values, run_ends, start, start + n, zone)
    lo, hi = _zone_bounds(non_null) if not distinct_overflow else \
        _zone_bounds(v for v in span if v is not None)
    zone = ZoneMap(lo, hi, null_count, distinct_hint)
    if not distinct_overflow and len(distinct) * 4 <= n:
        encoding = {value: code for code, value in enumerate(distinct)}
        codes = [encoding[value] for value in span]
        return DictChunk(codes, list(distinct), start, start + n, zone)
    return PlainChunk(base, start, start + n, zone)


def encode_column(base: Sequence,
                  chunk_size: int = CHUNK_SIZE) -> list[ColumnChunk]:
    """Encode a whole column into uniform-boundary chunks."""
    return [
        encode_chunk(base, start, min(start + chunk_size, len(base)))
        for start in range(0, len(base), chunk_size)
    ]
