"""Persist a :class:`Database` to a sqlite file and load it back.

The synthetic warehouses take a few seconds to generate; persisting them
lets downstream tooling (or plain sqlite clients) reuse a build.  Table
data round-trips through :class:`SqliteBackend`; schema metadata that
sqlite cannot express natively — column types, primary keys, and named
foreign keys — is stored in a ``_repro_meta`` side table.
"""

from __future__ import annotations

import json
import sqlite3

from .catalog import Database
from .sqlite_backend import SqliteBackend
from .table import Table
from .types import Column, ColumnType

_META_TABLE = "_repro_meta"
_VIEWS_TABLE = "_repro_materialized"


def _schema_payload(database: Database) -> dict:
    return {
        "name": database.name,
        "tables": [
            {
                "name": table.name,
                "primary_key": table.primary_key,
                "columns": [
                    {"name": c.name, "type": c.type.value,
                     "nullable": c.nullable}
                    for c in table.columns
                ],
            }
            for table in database.tables()
        ],
        "foreign_keys": [
            {
                "name": fk.name,
                "child_table": fk.child_table,
                "child_column": fk.child_column,
                "parent_table": fk.parent_table,
                "parent_column": fk.parent_column,
            }
            for fk in database.foreign_keys
        ],
    }


def dump_database(database: Database, path: str) -> None:
    """Write ``database`` (data + schema metadata) to a sqlite file."""
    backend = SqliteBackend(database, path)
    try:
        backend.connection.execute(
            f'CREATE TABLE "{_META_TABLE}" (payload TEXT)')
        backend.connection.execute(
            f'INSERT INTO "{_META_TABLE}" VALUES (?)',
            (json.dumps(_schema_payload(database)),),
        )
        backend.connection.commit()
    finally:
        backend.close()


def load_database(path: str) -> Database:
    """Reconstruct a :class:`Database` from a file written by
    :func:`dump_database`."""
    connection = sqlite3.connect(path)
    try:
        rows = connection.execute(
            f'SELECT payload FROM "{_META_TABLE}"').fetchall()
        if len(rows) != 1:
            raise ValueError(f"{path!r} has no repro schema metadata")
        payload = json.loads(rows[0][0])
        database = Database(payload["name"])
        for spec in payload["tables"]:
            columns = [
                Column(c["name"], ColumnType(c["type"]), c["nullable"])
                for c in spec["columns"]
            ]
            table = Table(spec["name"], columns,
                          primary_key=spec["primary_key"])
            names = ", ".join(f'"{c.name}"' for c in columns)
            for row in connection.execute(
                    f'SELECT {names} FROM "{spec["name"]}"'):
                table.insert({
                    column.name: _from_sqlite(value, column)
                    for column, value in zip(columns, row)
                })
            database.add_table(table)
        for fk in payload["foreign_keys"]:
            database.add_foreign_key(
                fk["name"], fk["child_table"], fk["child_column"],
                fk["parent_table"], fk["parent_column"],
            )
        return database
    finally:
        connection.close()


def _from_sqlite(value, column: Column):
    """Undo the sqlite storage mapping (0/1 back to bool)."""
    if value is None:
        return None
    if column.type is ColumnType.BOOLEAN:
        return bool(value)
    return value


def save_materialized(path: str, payload: dict) -> None:
    """Write a materialization-tier snapshot into a warehouse file.

    The payload (see ``MaterializationTier.to_payload``) rides in a
    ``_repro_materialized`` side table next to the schema metadata, so
    one sqlite file carries both the data and its hot aggregates.
    Replaces any previous snapshot in the file.
    """
    connection = sqlite3.connect(path)
    try:
        connection.execute(
            f'CREATE TABLE IF NOT EXISTS "{_VIEWS_TABLE}" '
            '(payload TEXT)')
        connection.execute(f'DELETE FROM "{_VIEWS_TABLE}"')
        connection.execute(
            f'INSERT INTO "{_VIEWS_TABLE}" VALUES (?)',
            (json.dumps(payload),),
        )
        connection.commit()
    finally:
        connection.close()


def load_materialized(path: str) -> dict | None:
    """Read a materialization snapshot written by
    :func:`save_materialized`; None when the file has none (warehouses
    dumped before the tier existed stay loadable)."""
    connection = sqlite3.connect(path)
    try:
        present = connection.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name=?", (_VIEWS_TABLE,)).fetchone()
        if present is None:
            return None
        rows = connection.execute(
            f'SELECT payload FROM "{_VIEWS_TABLE}"').fetchall()
        if not rows:
            return None
        return json.loads(rows[0][0])
    finally:
        connection.close()
