"""Columnar batch kernels: gathers, selections, and group packing.

This module is the vocabulary of the vectorized execution path.  All
kernels operate on *column vectors* (one Python list per column, as
stored by :class:`~repro.relational.table.Table`) and *selection
vectors* (ordered ``list[int]`` of qualifying row ids).  Instead of one
interpreted :meth:`Expression.evaluate` dispatch per row, operators move
whole batches through these kernels, so the per-row work is a C-level
list comprehension / ``zip`` step rather than a Python method call.

Three kernel families live here:

* **gathers** — :func:`take`, :func:`gather_tuples`: column slices for a
  selection vector;
* **selections** — :func:`select_in`, :func:`select_range`,
  :func:`compress`: build or refine selection vectors (vectorized ``IN``
  via set membership over a whole column, range tests for bucketized
  partitioning, mask compaction for arbitrary predicates);
* **grouping** — :func:`group_rows`, :func:`pack_keys`: partition a
  selection by one column, or dictionary-encode composite keys so a
  multi-column group-by folds over small integer codes.

Sorted-set algebra (:func:`intersect_sorted`, :func:`union_sorted`,
:func:`is_subset_sorted`) supports subspace membership checks without
materialising throwaway ``set`` copies of already-sorted row tuples.

This file is written in (and CI-checked against) the ``ruff`` formatter
style; the rest of the tree keeps its original continuation-aligned
style and is lint-checked only.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, Sequence

DEFAULT_BATCH_SIZE = 4096
"""Rows per batch in the vectorized executor (large enough to amortise
per-batch bookkeeping, small enough to keep budget checks responsive)."""


def batches(
    row_ids: Sequence[int], size: int = DEFAULT_BATCH_SIZE
) -> Iterator[Sequence[int]]:
    """Split a selection vector into successive batches (order kept)."""
    if not isinstance(row_ids, (list, tuple, range)):
        row_ids = list(row_ids)
    for start in range(0, len(row_ids), size):
        yield row_ids[start : start + size]


# ----------------------------------------------------------------------
# gathers
# ----------------------------------------------------------------------
def take(values: Sequence, row_ids: Iterable[int] | None) -> list:
    """Gather ``values`` at ``row_ids`` (the whole column when None)."""
    if row_ids is None:
        return list(values)
    return [values[r] for r in row_ids]


def gather_tuples(
    stores: Sequence[Sequence], row_ids: Iterable[int] | None
) -> list[tuple]:
    """Row tuples over several columns for one selection vector."""
    return list(zip(*(take(store, row_ids) for store in stores)))


# ----------------------------------------------------------------------
# selections
# ----------------------------------------------------------------------
def compress(mask: Sequence, row_ids: Sequence[int]) -> list[int]:
    """Row ids whose aligned ``mask`` entry is truthy (mask compaction)."""
    return [r for r, keep in zip(row_ids, mask) if keep]


def select_in(
    values: Sequence,
    wanted,
    row_ids: Iterable[int] | None = None,
    keep_null: bool = False,
) -> list[int]:
    """Selection vector of rows whose value is in ``wanted``.

    The vectorized ``IN``: one set-membership probe per row over the raw
    column, with no expression-tree dispatch.  By default ``None`` never
    matches (even when present in ``wanted``), matching SQL semantics;
    ``keep_null=True`` restores plain set membership, where a ``None``
    in ``wanted`` selects NULL rows (the attribute-filter convention).
    """
    if not isinstance(wanted, (set, frozenset)):
        wanted = set(wanted)
    if keep_null:
        if row_ids is None:
            return [r for r, v in enumerate(values) if v in wanted]
        return [r for r in row_ids if values[r] in wanted]
    if row_ids is None:
        return [r for r, v in enumerate(values) if v is not None and v in wanted]
    return [r for r in row_ids if values[r] is not None and values[r] in wanted]


def refine_members(row_ids: Iterable[int], members) -> list[int]:
    """Narrow a selection vector to the rows present in ``members``.

    The semi-join probe: ``members`` is the (already materialised) set of
    qualifying row ids and the batch is filtered by one membership test
    per row.
    """
    return [r for r in row_ids if r in members]


def select_range(
    values: Sequence,
    low,
    high,
    row_ids: Iterable[int] | None = None,
    inclusive_high: bool = False,
) -> list[int]:
    """Selection vector for ``low <= value < high`` (or ``<= high``)."""
    ids = range(len(values)) if row_ids is None else row_ids
    if inclusive_high:
        return [r for r in ids if values[r] is not None and low <= values[r] <= high]
    return [r for r in ids if values[r] is not None and low <= values[r] < high]


# ----------------------------------------------------------------------
# grouping
# ----------------------------------------------------------------------
def group_rows(values: Sequence, row_ids: Iterable[int] | None = None) -> dict:
    """Partition a selection by one column: value → row ids (NULL dropped)."""
    groups: dict = {}
    if row_ids is None:
        row_ids = range(len(values))
    for r in row_ids:
        value = values[r]
        if value is not None:
            group = groups.get(value)
            if group is None:
                groups[value] = [r]
            else:
                group.append(r)
    return groups


def pack_keys(
    vectors: Sequence[Sequence], row_ids: Sequence[int]
) -> tuple[list[int], list[tuple]]:
    """Dictionary-encode composite group-by keys for a selection.

    Returns ``(codes, keys)``: ``codes[i]`` is the small-integer code of
    row ``row_ids[i]``'s key tuple (−1 when any component is NULL, i.e.
    the row belongs to no group), and ``keys[code]`` is the decoded
    tuple.  Downstream folds then group over dense ints instead of
    hashing wide tuples repeatedly.
    """
    encoding: dict[tuple, int] = {}
    keys: list[tuple] = []
    codes: list[int] = []
    columns = gather_tuples(vectors, row_ids)
    for key in columns:
        if None in key:
            codes.append(-1)
            continue
        code = encoding.get(key)
        if code is None:
            code = encoding[key] = len(keys)
            keys.append(key)
        codes.append(code)
    return codes, keys


def group_rows_packed(
    vectors: Sequence[Sequence], row_ids: Sequence[int]
) -> dict[tuple, list[int]]:
    """Multi-column :func:`group_rows` via dictionary-encoded keys."""
    if not isinstance(row_ids, (list, tuple)):
        row_ids = list(row_ids)
    codes, keys = pack_keys(vectors, row_ids)
    buckets: list[list[int]] = [[] for _ in keys]
    for r, code in zip(row_ids, codes):
        if code >= 0:
            buckets[code].append(r)
    return dict(zip(keys, buckets))


# ----------------------------------------------------------------------
# sorted-set algebra over selection vectors
# ----------------------------------------------------------------------
def intersect_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Intersection of two sorted duplicate-free selections (merge scan)."""
    if len(a) > len(b):
        a, b = b, a
    if len(b) > 8 * max(len(a), 1):
        members = set(b)
        return [r for r in a if r in members]
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def union_sorted(a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Union of two sorted duplicate-free selections (merge scan)."""
    out: list[int] = []
    i = j = 0
    while i < len(a) and j < len(b):
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
    if i < len(a):
        out.extend(a[i:])
    if j < len(b):
        out.extend(b[j:])
    return out


def is_subset_sorted(inner: Sequence[int], outer: Sequence[int]) -> bool:
    """True when sorted selection ``inner`` is contained in ``outer``."""
    if len(inner) > len(outer):
        return False
    j = 0
    n = len(outer)
    for x in inner:
        while j < n and outer[j] < x:
            j += 1
        if j >= n or outer[j] != x:
            return False
        j += 1
    return True


def fold(aggregate_fn, values: Sequence, row_ids: Iterable[int]) -> object:
    """Apply one :data:`~repro.relational.operators.AGGREGATES` fold to a
    gathered measure slice (the batch form of per-row accumulation)."""
    return aggregate_fn([values[r] for r in row_ids])


# ----------------------------------------------------------------------
# chunk-aware kernels (encoded columns + zone-map skipping)
# ----------------------------------------------------------------------
def split_selection(
    row_ids: Sequence[int], chunk_size: int
) -> Iterator[tuple[int, Sequence[int]]]:
    """Split an ascending selection vector at uniform chunk boundaries.

    Yields ``(chunk_index, sub_selection)`` pairs in chunk order; only
    chunks actually hit by the selection appear, so downstream kernels
    touch no chunk without at least one candidate row.
    """
    i, n = 0, len(row_ids)
    while i < n:
        index = row_ids[i] // chunk_size
        j = bisect_left(row_ids, (index + 1) * chunk_size, i)
        yield index, row_ids[i:j]
        i = j


def _chunk_subsets(chunks: Sequence, row_ids: Sequence[int] | None):
    """(chunk, sub_selection_or_None) pairs for a selection over uniform
    chunks; ``None`` sub-selection means the whole chunk qualifies."""
    if row_ids is None:
        for chunk in chunks:
            yield chunk, None
        return
    size = chunks[0].stop if chunks else 0
    for index, sub in split_selection(row_ids, size):
        chunk = chunks[index]
        yield chunk, (None if len(sub) == len(chunk) else sub)


def select_in_chunks(
    chunks: Sequence,
    wanted,
    row_ids: Sequence[int] | None = None,
    keep_null: bool = False,
) -> tuple[list[int], int, int]:
    """Chunked :func:`select_in` with zone-map pruning.

    Returns ``(selection, chunks_scanned, chunks_skipped)``: a chunk
    whose zone map (or dictionary / run values) proves no row can match
    is skipped without materialising anything.
    """
    if not isinstance(wanted, (set, frozenset)):
        wanted = set(wanted)
    out: list[int] = []
    scanned = skipped = 0
    for chunk, sub in _chunk_subsets(chunks, row_ids):
        if not chunk.may_match_in(wanted, keep_null):
            skipped += 1
            continue
        scanned += 1
        out.extend(chunk.select_in(wanted, keep_null, sub))
    return out, scanned, skipped


def select_range_chunks(
    chunks: Sequence,
    low,
    high,
    row_ids: Sequence[int] | None = None,
    inclusive_high: bool = False,
) -> tuple[list[int], int, int]:
    """Chunked :func:`select_range` with zone-map pruning."""
    out: list[int] = []
    scanned = skipped = 0
    for chunk, sub in _chunk_subsets(chunks, row_ids):
        if not chunk.may_match_range(low, high, inclusive_high):
            skipped += 1
            continue
        scanned += 1
        out.extend(chunk.select_range(low, high, inclusive_high, sub))
    return out, scanned, skipped


def group_rows_chunks(
    chunks: Sequence, row_ids: Sequence[int] | None = None
) -> tuple[dict, int]:
    """Chunked :func:`group_rows`: value → ascending global row ids.

    Encoded chunks partition without per-row hashing (dictionary chunks
    bucket by small-int code, RLE chunks extend whole runs); returns the
    groups plus the number of chunks scanned.
    """
    groups: dict = {}
    scanned = 0
    for chunk, sub in _chunk_subsets(chunks, row_ids):
        scanned += 1
        chunk.group_into(groups, sub)
    return groups, scanned
