"""Relational operators over columnar tables.

These are *set-of-row-ids* operators: rather than materialising intermediate
tables, most functions take and return row-id collections against named base
tables.  That is precisely the shape KDAP needs — a subspace is a set of fact
rows, and star joins are chains of semi-joins from dimension selections down
to the fact table.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

from .expressions import Predicate
from .table import Table


def select(table: Table, predicate: Predicate,
           row_ids: Iterable[int] | None = None) -> list[int]:
    """Row ids of ``table`` satisfying ``predicate``.

    When ``row_ids`` is given, only those rows are tested (filter refinement).
    """
    predicate.validate(table)
    candidates = range(len(table)) if row_ids is None else row_ids
    return [rid for rid in candidates if predicate.evaluate(table, rid)]


def semi_join(
    child: Table,
    child_key: str,
    parent_row_ids: Iterable[int],
    parent: Table,
    parent_key: str,
    child_row_ids: Iterable[int] | None = None,
) -> list[int]:
    """Rows of ``child`` whose ``child_key`` matches ``parent_key`` of any
    row in ``parent_row_ids`` — i.e. ``child SEMIJOIN parent``.

    This is the primitive used to push a dimension selection towards the
    fact table along one foreign-key edge.
    """
    parent_values = parent.column_values(parent_key)
    keys = {parent_values[rid] for rid in parent_row_ids}
    keys.discard(None)
    child_values = child.column_values(child_key)
    candidates = range(len(child)) if child_row_ids is None else child_row_ids
    return [rid for rid in candidates if child_values[rid] in keys]


def hash_join(
    left: Table,
    left_key: str,
    right: Table,
    right_key: str,
    left_row_ids: Iterable[int] | None = None,
    right_row_ids: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Equi-join returning ``(left_row_id, right_row_id)`` pairs."""
    right_index: dict[Hashable, list[int]] = defaultdict(list)
    right_values = right.column_values(right_key)
    right_candidates = range(len(right)) if right_row_ids is None else right_row_ids
    for rid in right_candidates:
        value = right_values[rid]
        if value is not None:
            right_index[value].append(rid)
    out: list[tuple[int, int]] = []
    left_values = left.column_values(left_key)
    left_candidates = range(len(left)) if left_row_ids is None else left_row_ids
    for lid in left_candidates:
        value = left_values[lid]
        if value is None:
            continue
        for rid in right_index.get(value, ()):
            out.append((lid, rid))
    return out


def project(table: Table, columns: Sequence[str],
            row_ids: Iterable[int] | None = None,
            distinct: bool = False) -> list[tuple]:
    """Tuples of the selected columns over the given rows."""
    stores = [table.column_values(c) for c in columns]
    ids = range(len(table)) if row_ids is None else row_ids
    rows = [tuple(store[rid] for store in stores) for rid in ids]
    if distinct:
        seen: set[tuple] = set()
        unique: list[tuple] = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        return unique
    return rows


def group_by(
    table: Table,
    key_of: Callable[[int], Hashable],
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by an arbitrary key function; drops ``None`` keys.

    ``key_of`` receives a row id and returns the group key.  KDAP uses this
    with plain column getters (categorical partitioning) and with bucket
    assignment functions (numerical partitioning).
    """
    groups: dict[Hashable, list[int]] = defaultdict(list)
    ids = range(len(table)) if row_ids is None else row_ids
    for rid in ids:
        key = key_of(rid)
        if key is not None:
            groups[key].append(rid)
    return dict(groups)


def group_by_column(
    table: Table,
    column: str,
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by the value of one column (NULLs dropped)."""
    values = table.column_values(column)
    return group_by(table, lambda rid: values[rid], row_ids)


def aggregate_sum(values: Iterable[float]) -> float:
    """SUM over an iterable, ignoring ``None``."""
    return sum(v for v in values if v is not None)


def aggregate_count(values: Iterable) -> int:
    """COUNT of non-null values."""
    return sum(1 for v in values if v is not None)


def aggregate_avg(values: Iterable[float]) -> float | None:
    """AVG over non-null values; None on empty input."""
    total = 0.0
    count = 0
    for value in values:
        if value is not None:
            total += value
            count += 1
    if count == 0:
        return None
    return total / count


def aggregate_min(values: Iterable) -> object | None:
    """MIN over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value < best):
            best = value
    return best


def aggregate_max(values: Iterable) -> object | None:
    """MAX over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value > best):
            best = value
    return best


AGGREGATES: dict[str, Callable] = {
    "sum": aggregate_sum,
    "count": aggregate_count,
    "avg": aggregate_avg,
    "min": aggregate_min,
    "max": aggregate_max,
}
"""Aggregate functions addressable by name (used by measures and SQL gen)."""


def fused_group_aggregates(
    rows: Iterable[int],
    vectors: Sequence[Sequence],
    measure_values: Sequence,
    aggregate: str,
    on_chunk: Callable[[], None] | None = None,
    chunk_size: int = 8192,
) -> list[dict]:
    """Per-group aggregates for N key vectors in **one pass** over ``rows``.

    The fused equivalent of N separate partition-then-fold evaluations:
    each row is visited once, updating one accumulator dict per key
    vector.  NULL keys are dropped per key (a row excluded from one
    partitioning still counts in the others) and NULL measures are
    ignored inside every group, exactly matching the per-key
    :data:`AGGREGATES` folds — sum/count of an all-NULL group are 0,
    avg/min/max are None.

    ``on_chunk`` (if given) runs every ``chunk_size`` rows so long scans
    can cooperatively honour deadlines/budgets.
    """
    if aggregate not in AGGREGATES:
        raise KeyError(aggregate)
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    states: list[dict] = [{} for _ in vectors]
    # the (vector, accumulator) pairing is hoisted out of the row loop —
    # the inner loop must stay allocation-free for fusion to beat N
    # independent folds
    pairs = list(zip(vectors, states))
    chunks = range(0, len(rows), chunk_size)
    if aggregate in ("sum", "count"):
        counting = aggregate == "count"
        for start in chunks:
            if on_chunk is not None:
                on_chunk()
            for r in rows[start:start + chunk_size]:
                m = measure_values[r]
                if m is None:
                    # a NULL measure still creates its groups, so an
                    # all-NULL group yields 0, not absence
                    for vector, groups in pairs:
                        value = vector[r]
                        if value is not None and value not in groups:
                            groups[value] = 0
                    continue
                if counting:
                    m = 1
                for vector, groups in pairs:
                    value = vector[r]
                    if value is not None:
                        groups[value] = groups.get(value, 0) + m
        return states
    if aggregate == "avg":
        for start in chunks:
            if on_chunk is not None:
                on_chunk()
            for r in rows[start:start + chunk_size]:
                m = measure_values[r]
                for vector, groups in pairs:
                    value = vector[r]
                    if value is None:
                        continue
                    state = groups.get(value)
                    if state is None:
                        state = groups[value] = [0, 0]
                    if m is not None:
                        state[0] += m
                        state[1] += 1
        return [{value: (s[0] / s[1] if s[1] else None)
                 for value, s in groups.items()} for groups in states]
    # min / max: keep the best non-NULL measure per group (None when the
    # whole group's measure is NULL)
    prefer_smaller = aggregate == "min"
    for start in chunks:
        if on_chunk is not None:
            on_chunk()
        for r in rows[start:start + chunk_size]:
            m = measure_values[r]
            for vector, groups in pairs:
                value = vector[r]
                if value is None:
                    continue
                if value not in groups:
                    groups[value] = m
                elif m is not None:
                    best = groups[value]
                    if best is None or (m < best if prefer_smaller
                                        else m > best):
                        groups[value] = m
    return states
