"""Relational operators over columnar tables.

These are *set-of-row-ids* operators: rather than materialising intermediate
tables, most functions take and return row-id collections against named base
tables.  That is precisely the shape KDAP needs — a subspace is a set of fact
rows, and star joins are chains of semi-joins from dimension selections down
to the fact table.

Execution is columnar: every operator moves whole selection vectors
through the batch kernels of :mod:`repro.relational.vector` (and the
predicates' ``select_batch`` API) instead of dispatching one interpreted
``Expression.evaluate`` call per row.  The scalar evaluation path stays
available as the reference semantics; the two are result-identical.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

from . import vector
from .chunks import ColumnChunk, DictChunk, RLEChunk
from .expressions import Predicate
from .table import Table


def select(table: Table, predicate: Predicate,
           row_ids: Iterable[int] | None = None) -> list[int]:
    """Row ids of ``table`` satisfying ``predicate``.

    When ``row_ids`` is given, only those rows are tested (filter
    refinement).  The predicate runs as one batch kernel over the
    candidate selection, not per row.
    """
    predicate.validate(table)
    if row_ids is not None and not isinstance(row_ids, (list, tuple, range)):
        row_ids = list(row_ids)
    return predicate.select_batch(table, row_ids)


def semi_join(
    child: Table,
    child_key: str,
    parent_row_ids: Iterable[int],
    parent: Table,
    parent_key: str,
    child_row_ids: Iterable[int] | None = None,
) -> list[int]:
    """Rows of ``child`` whose ``child_key`` matches ``parent_key`` of any
    row in ``parent_row_ids`` — i.e. ``child SEMIJOIN parent``.

    This is the primitive used to push a dimension selection towards the
    fact table along one foreign-key edge; the probe side is one
    vectorized set-membership pass over the child's key column.
    """
    parent_values = parent.column_values(parent_key)
    keys = {parent_values[rid] for rid in parent_row_ids}
    keys.discard(None)
    if not keys:
        return []
    return vector.select_in(child.column_values(child_key), keys,
                            child_row_ids)


def hash_join(
    left: Table,
    left_key: str,
    right: Table,
    right_key: str,
    left_row_ids: Iterable[int] | None = None,
    right_row_ids: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Equi-join returning ``(left_row_id, right_row_id)`` pairs.

    Build side: the right key column is dictionary-grouped in one pass;
    probe side: the left key column is gathered as a batch and probed
    against the index.
    """
    right_values = right.column_values(right_key)
    right_index = vector.group_rows(right_values, right_row_ids)
    if not right_index:
        return []
    left_values = left.column_values(left_key)
    if left_row_ids is None:
        left_row_ids = range(len(left))
    elif not isinstance(left_row_ids, (list, tuple, range)):
        left_row_ids = list(left_row_ids)
    probe = vector.take(left_values, left_row_ids)
    out: list[tuple[int, int]] = []
    get = right_index.get
    for lid, value in zip(left_row_ids, probe):
        if value is None:
            continue
        for rid in get(value, ()):
            out.append((lid, rid))
    return out


def project(table: Table, columns: Sequence[str],
            row_ids: Iterable[int] | None = None,
            distinct: bool = False) -> list[tuple]:
    """Tuples of the selected columns over the given rows (one columnar
    gather per column, zipped back into row tuples)."""
    stores = [table.column_values(c) for c in columns]
    if row_ids is not None and not isinstance(row_ids, (list, tuple, range)):
        row_ids = list(row_ids)
    rows = vector.gather_tuples(stores, row_ids)
    if distinct:
        # dict preserves first-seen order, deduplicating in one C pass
        return list(dict.fromkeys(rows))
    return rows


def group_by(
    table: Table,
    key_of: Callable[[int], Hashable],
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by an arbitrary key function; drops ``None`` keys.

    ``key_of`` receives a row id and returns the group key.  This is the
    scalar escape hatch for computed keys (bucket assignment functions);
    column partitioning goes through the vectorized
    :func:`group_by_column`.
    """
    groups: dict[Hashable, list[int]] = defaultdict(list)
    ids = range(len(table)) if row_ids is None else row_ids
    for rid in ids:
        key = key_of(rid)
        if key is not None:
            groups[key].append(rid)
    return dict(groups)


def group_by_column(
    table: Table,
    column: str,
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by the value of one column (NULLs dropped) in one
    columnar pass."""
    return vector.group_rows(table.column_values(column), row_ids)


def aggregate_sum(values: Iterable[float]) -> float:
    """SUM over an iterable, ignoring ``None``."""
    return sum(v for v in values if v is not None)


def aggregate_count(values: Iterable) -> int:
    """COUNT of non-null values."""
    return sum(1 for v in values if v is not None)


def aggregate_avg(values: Iterable[float]) -> float | None:
    """AVG over non-null values; None on empty input."""
    total = 0.0
    count = 0
    for value in values:
        if value is not None:
            total += value
            count += 1
    if count == 0:
        return None
    return total / count


def aggregate_min(values: Iterable) -> object | None:
    """MIN over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value < best):
            best = value
    return best


def aggregate_max(values: Iterable) -> object | None:
    """MAX over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value > best):
            best = value
    return best


AGGREGATES: dict[str, Callable] = {
    "sum": aggregate_sum,
    "count": aggregate_count,
    "avg": aggregate_avg,
    "min": aggregate_min,
    "max": aggregate_max,
}
"""Aggregate functions addressable by name (used by measures and SQL gen)."""


def fused_group_aggregates(
    rows: Iterable[int],
    vectors: Sequence[Sequence],
    measure_values: Sequence,
    aggregate: str,
    on_chunk: Callable[[int], None] | None = None,
    chunk_size: int = 8192,
) -> list[dict]:
    """Per-group aggregates for N key vectors over one shared row set.

    The fused equivalent of N separate partition-then-fold evaluations:
    the row set is materialised once and each chunk is partitioned per
    key with the :func:`~repro.relational.vector.group_rows` kernel (a
    single tight loop per key, not one interpreted dispatch per row).
    NULL keys are dropped per key (a row excluded from one partitioning
    still counts in the others) and NULL measures are ignored inside
    every group, exactly matching the per-key :data:`AGGREGATES` folds
    — sum/count of an all-NULL group are 0, avg/min/max are None.

    ``on_chunk`` (if given) receives each chunk's row count before the
    chunk is folded, so long scans can cooperatively honour deadlines
    and charge budgets at batch granularity.
    """
    if aggregate not in AGGREGATES:
        raise KeyError(aggregate)
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    fn = AGGREGATES[aggregate]
    partitions: list[dict] = [{} for _ in vectors]
    for start in range(0, len(rows), chunk_size):
        if on_chunk is not None:
            on_chunk(min(chunk_size, len(rows) - start))
        batch = rows[start:start + chunk_size]
        for key_vector, groups in zip(vectors, partitions):
            part = vector.group_rows(key_vector, batch)
            if not groups:
                groups.update(part)
                continue
            for value, ids in part.items():
                known = groups.get(value)
                if known is None:
                    groups[value] = ids
                else:
                    known.extend(ids)
    return [
        {value: vector.fold(fn, measure_values, ids)
         for value, ids in groups.items()}
        for groups in partitions
    ]


# ----------------------------------------------------------------------
# mergeable aggregate states over encoded chunks
# ----------------------------------------------------------------------
class AggregateStates:
    """Mergeable partial states for one aggregate function.

    Each group's state is a small mutable list so partial aggregation
    can run per morsel and the per-morsel dicts merge afterwards.  The
    accumulation loops add measure values *in ascending row order*, so a
    serial pass over chunks produces bit-identical floats to the
    :data:`AGGREGATES` folds it replaces; only a cross-morsel
    :meth:`merge` re-associates additions (at morsel boundaries).

    Group-existence semantics match :func:`~repro.relational.vector.
    group_rows` + fold exactly: a group exists whenever its (non-NULL)
    key occurs in the selection, NULL measures are ignored inside the
    group, and the empty fill equals ``AGGREGATES[name](())``.
    """

    name: str = ""

    def new(self) -> list:
        raise NotImplementedError

    @property
    def empty(self):
        """The finalized aggregate of an empty group."""
        return self.final(self.new())

    def add_pairs(self, states: dict, keys: Sequence,
                  rows: Sequence[int], measure: Sequence) -> None:
        """Accumulate (key, measure[row]) pairs (the generic loop)."""
        raise NotImplementedError

    def add_dict(self, states: dict, chunk: DictChunk,
                 measure: Sequence) -> None:
        """Accumulate one full dictionary chunk: per-code state slots
        replace per-row hashing."""
        raise NotImplementedError

    def add_rle(self, states: dict, chunk: RLEChunk,
                measure: Sequence) -> None:
        """Accumulate one full RLE chunk: one state lookup per run."""
        raise NotImplementedError

    def merge(self, into: list, other: list) -> None:
        raise NotImplementedError

    def final(self, state: list):
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------
    def _dict_slots(self, states: dict, chunk: DictChunk) -> list:
        """Code-indexed state slots (None for the NULL code), creating
        missing groups in the dictionary's first-seen order."""
        get = states.get
        slots: list = []
        for value in chunk.dictionary:
            if value is None:
                slots.append(None)
                continue
            state = get(value)
            if state is None:
                state = states[value] = self.new()
            slots.append(state)
        return slots


class _SumStates(AggregateStates):
    name = "sum"

    def new(self) -> list:
        return [0]

    def add_pairs(self, states, keys, rows, measure) -> None:
        get = states.get
        for value, r in zip(keys, rows):
            if value is None:
                continue
            state = get(value)
            if state is None:
                state = states[value] = [0]
            m = measure[r]
            if m is not None:
                state[0] += m

    def add_dict(self, states, chunk, measure) -> None:
        slots = self._dict_slots(states, chunk)
        for state, m in zip(map(slots.__getitem__, chunk.codes),
                            measure[chunk.start:chunk.stop]):
            if state is not None and m is not None:
                state[0] += m

    def add_rle(self, states, chunk, measure) -> None:
        get = states.get
        start = chunk.start
        prev = 0
        for value, end in zip(chunk.run_values, chunk.run_ends):
            if value is not None:
                state = get(value)
                if state is None:
                    state = states[value] = [0]
                segment = measure[start + prev:start + end]
                try:
                    # run-level C fold: the whole point of RLE chunks
                    state[0] += sum(segment)
                except TypeError:   # a None in the run: per-row guard
                    state[0] += sum(m for m in segment if m is not None)
            prev = end

    def merge(self, into, other) -> None:
        into[0] += other[0]

    def final(self, state):
        return state[0]


class _CountStates(AggregateStates):
    name = "count"

    def new(self) -> list:
        return [0]

    def add_pairs(self, states, keys, rows, measure) -> None:
        get = states.get
        for value, r in zip(keys, rows):
            if value is None:
                continue
            state = get(value)
            if state is None:
                state = states[value] = [0]
            if measure[r] is not None:
                state[0] += 1

    def add_dict(self, states, chunk, measure) -> None:
        slots = self._dict_slots(states, chunk)
        for state, m in zip(map(slots.__getitem__, chunk.codes),
                            measure[chunk.start:chunk.stop]):
            if state is not None and m is not None:
                state[0] += 1

    def add_rle(self, states, chunk, measure) -> None:
        get = states.get
        start = chunk.start
        prev = 0
        for value, end in zip(chunk.run_values, chunk.run_ends):
            if value is not None:
                state = get(value)
                if state is None:
                    state = states[value] = [0]
                segment = measure[start + prev:start + end]
                state[0] += len(segment) - segment.count(None)
            prev = end

    def merge(self, into, other) -> None:
        into[0] += other[0]

    def final(self, state):
        return state[0]


class _AvgStates(AggregateStates):
    name = "avg"

    def new(self) -> list:
        return [0.0, 0]

    def add_pairs(self, states, keys, rows, measure) -> None:
        get = states.get
        for value, r in zip(keys, rows):
            if value is None:
                continue
            state = get(value)
            if state is None:
                state = states[value] = [0.0, 0]
            m = measure[r]
            if m is not None:
                state[0] += m
                state[1] += 1

    def add_dict(self, states, chunk, measure) -> None:
        slots = self._dict_slots(states, chunk)
        for state, m in zip(map(slots.__getitem__, chunk.codes),
                            measure[chunk.start:chunk.stop]):
            if state is not None and m is not None:
                state[0] += m
                state[1] += 1

    def add_rle(self, states, chunk, measure) -> None:
        get = states.get
        start = chunk.start
        prev = 0
        for value, end in zip(chunk.run_values, chunk.run_ends):
            if value is not None:
                state = get(value)
                if state is None:
                    state = states[value] = [0.0, 0]
                segment = measure[start + prev:start + end]
                try:
                    total = sum(segment)    # run-level C fold
                    count = len(segment)
                except TypeError:   # a None in the run: filter first
                    values = [m for m in segment if m is not None]
                    total = sum(values)
                    count = len(values)
                state[0] += total
                state[1] += count
            prev = end

    def merge(self, into, other) -> None:
        into[0] += other[0]
        into[1] += other[1]

    def final(self, state):
        if not state[1]:
            return None
        return state[0] / state[1]


class _MinStates(AggregateStates):
    name = "min"

    def new(self) -> list:
        return [None]

    def add_pairs(self, states, keys, rows, measure) -> None:
        get = states.get
        for value, r in zip(keys, rows):
            if value is None:
                continue
            state = get(value)
            if state is None:
                state = states[value] = [None]
            m = measure[r]
            if m is not None and (state[0] is None or m < state[0]):
                state[0] = m

    def add_dict(self, states, chunk, measure) -> None:
        slots = self._dict_slots(states, chunk)
        for state, m in zip(map(slots.__getitem__, chunk.codes),
                            measure[chunk.start:chunk.stop]):
            if (state is not None and m is not None
                    and (state[0] is None or m < state[0])):
                state[0] = m

    def add_rle(self, states, chunk, measure) -> None:
        get = states.get
        start = chunk.start
        prev = 0
        for value, end in zip(chunk.run_values, chunk.run_ends):
            if value is not None:
                state = get(value)
                if state is None:
                    state = states[value] = [None]
                segment = measure[start + prev:start + end]
                try:
                    low = min(segment)      # run-level C fold
                except TypeError:   # a None in the run: filter first
                    low = min((m for m in segment if m is not None),
                              default=None)
                if low is not None and (state[0] is None
                                        or low < state[0]):
                    state[0] = low
            prev = end

    def merge(self, into, other) -> None:
        if other[0] is not None and (into[0] is None
                                     or other[0] < into[0]):
            into[0] = other[0]

    def final(self, state):
        return state[0]


class _MaxStates(AggregateStates):
    name = "max"

    def new(self) -> list:
        return [None]

    def add_pairs(self, states, keys, rows, measure) -> None:
        get = states.get
        for value, r in zip(keys, rows):
            if value is None:
                continue
            state = get(value)
            if state is None:
                state = states[value] = [None]
            m = measure[r]
            if m is not None and (state[0] is None or m > state[0]):
                state[0] = m

    def add_dict(self, states, chunk, measure) -> None:
        slots = self._dict_slots(states, chunk)
        for state, m in zip(map(slots.__getitem__, chunk.codes),
                            measure[chunk.start:chunk.stop]):
            if (state is not None and m is not None
                    and (state[0] is None or m > state[0])):
                state[0] = m

    def add_rle(self, states, chunk, measure) -> None:
        get = states.get
        start = chunk.start
        prev = 0
        for value, end in zip(chunk.run_values, chunk.run_ends):
            if value is not None:
                state = get(value)
                if state is None:
                    state = states[value] = [None]
                segment = measure[start + prev:start + end]
                try:
                    high = max(segment)     # run-level C fold
                except TypeError:   # a None in the run: filter first
                    high = max((m for m in segment if m is not None),
                               default=None)
                if high is not None and (state[0] is None
                                         or high > state[0]):
                    state[0] = high
            prev = end

    def merge(self, into, other) -> None:
        if other[0] is not None and (into[0] is None
                                     or other[0] > into[0]):
            into[0] = other[0]

    def final(self, state):
        return state[0]


AGGREGATE_STATES: dict[str, AggregateStates] = {
    acc.name: acc for acc in (_SumStates(), _CountStates(), _AvgStates(),
                              _MinStates(), _MaxStates())
}
"""Mergeable-state accumulators, one per :data:`AGGREGATES` entry."""


def accumulate_chunk(acc: AggregateStates, states: dict,
                     chunk: ColumnChunk, measure: Sequence,
                     row_ids: Sequence[int] | None) -> None:
    """Accumulate one key chunk into ``states`` (``row_ids=None`` means
    the whole chunk), dispatching to the encoding's fast loop."""
    if row_ids is None:
        if isinstance(chunk, DictChunk):
            acc.add_dict(states, chunk, measure)
        elif isinstance(chunk, RLEChunk):
            acc.add_rle(states, chunk, measure)
        else:
            acc.add_pairs(states, chunk.values(),
                          range(chunk.start, chunk.stop), measure)
    else:
        acc.add_pairs(states, chunk.gather(row_ids), row_ids, measure)


def chunked_group_states(
    key_chunk_lists: Sequence[Sequence[ColumnChunk]],
    measure: Sequence,
    aggregate: str,
    row_ids: Sequence[int] | None = None,
    on_chunk: Callable[[int], None] | None = None,
    states_list: Sequence[dict] | None = None,
) -> list[dict]:
    """Fused group-aggregate states for N key columns over one shared
    selection, walking index-aligned encoded chunks in a single pass.

    The chunked, mergeable-state successor of
    :func:`fused_group_aggregates`: instead of materialising per-group
    row-id lists and folding them, every chunk accumulates directly into
    per-key ``value → state`` dicts (``states_list``, fresh by default —
    pass a previous result to continue accumulating).  ``on_chunk``
    receives each chunk's candidate-row count before it is processed,
    the budget/deadline hook of the morsel loop.
    """
    acc = AGGREGATE_STATES[aggregate]
    states: list[dict] = ([{} for _ in key_chunk_lists]
                          if states_list is None else list(states_list))
    first = key_chunk_lists[0]
    if row_ids is None:
        for index, chunk in enumerate(first):
            if on_chunk is not None:
                on_chunk(len(chunk))
            for chunks, target in zip(key_chunk_lists, states):
                accumulate_chunk(acc, target, chunks[index], measure, None)
    else:
        size = first[0].stop if first else 0
        for index, sub in vector.split_selection(row_ids, size):
            if on_chunk is not None:
                on_chunk(len(sub))
            full = len(sub) == len(first[index])
            for chunks, target in zip(key_chunk_lists, states):
                accumulate_chunk(acc, target, chunks[index], measure,
                                 None if full else sub)
    return states


def merge_group_states(aggregate: str, into: dict, other: dict) -> None:
    """Merge one partial ``value → state`` dict into another (the morsel
    merge protocol; insertion order of ``into`` is preserved, new keys
    append in ``other``'s order)."""
    acc = AGGREGATE_STATES[aggregate]
    merge = acc.merge
    get = into.get
    for value, state in other.items():
        known = get(value)
        if known is None:
            into[value] = state
        else:
            merge(known, state)


def finalize_group_states(aggregate: str, states: dict,
                          domain: Iterable | None = None) -> dict:
    """Turn a state dict into the ``value → aggregate`` result, applying
    the optional domain restriction/fill exactly like the fold path."""
    acc = AGGREGATE_STATES[aggregate]
    final = acc.final
    if domain is not None:
        empty = acc.empty
        return {
            value: final(states[value]) if value in states else empty
            for value in domain
        }
    return {value: final(state) for value, state in states.items()}
