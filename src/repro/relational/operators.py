"""Relational operators over columnar tables.

These are *set-of-row-ids* operators: rather than materialising intermediate
tables, most functions take and return row-id collections against named base
tables.  That is precisely the shape KDAP needs — a subspace is a set of fact
rows, and star joins are chains of semi-joins from dimension selections down
to the fact table.

Execution is columnar: every operator moves whole selection vectors
through the batch kernels of :mod:`repro.relational.vector` (and the
predicates' ``select_batch`` API) instead of dispatching one interpreted
``Expression.evaluate`` call per row.  The scalar evaluation path stays
available as the reference semantics; the two are result-identical.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Hashable, Iterable, Sequence

from . import vector
from .expressions import Predicate
from .table import Table


def select(table: Table, predicate: Predicate,
           row_ids: Iterable[int] | None = None) -> list[int]:
    """Row ids of ``table`` satisfying ``predicate``.

    When ``row_ids`` is given, only those rows are tested (filter
    refinement).  The predicate runs as one batch kernel over the
    candidate selection, not per row.
    """
    predicate.validate(table)
    if row_ids is not None and not isinstance(row_ids, (list, tuple, range)):
        row_ids = list(row_ids)
    return predicate.select_batch(table, row_ids)


def semi_join(
    child: Table,
    child_key: str,
    parent_row_ids: Iterable[int],
    parent: Table,
    parent_key: str,
    child_row_ids: Iterable[int] | None = None,
) -> list[int]:
    """Rows of ``child`` whose ``child_key`` matches ``parent_key`` of any
    row in ``parent_row_ids`` — i.e. ``child SEMIJOIN parent``.

    This is the primitive used to push a dimension selection towards the
    fact table along one foreign-key edge; the probe side is one
    vectorized set-membership pass over the child's key column.
    """
    parent_values = parent.column_values(parent_key)
    keys = {parent_values[rid] for rid in parent_row_ids}
    keys.discard(None)
    if not keys:
        return []
    return vector.select_in(child.column_values(child_key), keys,
                            child_row_ids)


def hash_join(
    left: Table,
    left_key: str,
    right: Table,
    right_key: str,
    left_row_ids: Iterable[int] | None = None,
    right_row_ids: Iterable[int] | None = None,
) -> list[tuple[int, int]]:
    """Equi-join returning ``(left_row_id, right_row_id)`` pairs.

    Build side: the right key column is dictionary-grouped in one pass;
    probe side: the left key column is gathered as a batch and probed
    against the index.
    """
    right_values = right.column_values(right_key)
    right_index = vector.group_rows(right_values, right_row_ids)
    if not right_index:
        return []
    left_values = left.column_values(left_key)
    if left_row_ids is None:
        left_row_ids = range(len(left))
    elif not isinstance(left_row_ids, (list, tuple, range)):
        left_row_ids = list(left_row_ids)
    probe = vector.take(left_values, left_row_ids)
    out: list[tuple[int, int]] = []
    get = right_index.get
    for lid, value in zip(left_row_ids, probe):
        if value is None:
            continue
        for rid in get(value, ()):
            out.append((lid, rid))
    return out


def project(table: Table, columns: Sequence[str],
            row_ids: Iterable[int] | None = None,
            distinct: bool = False) -> list[tuple]:
    """Tuples of the selected columns over the given rows (one columnar
    gather per column, zipped back into row tuples)."""
    stores = [table.column_values(c) for c in columns]
    if row_ids is not None and not isinstance(row_ids, (list, tuple, range)):
        row_ids = list(row_ids)
    rows = vector.gather_tuples(stores, row_ids)
    if distinct:
        # dict preserves first-seen order, deduplicating in one C pass
        return list(dict.fromkeys(rows))
    return rows


def group_by(
    table: Table,
    key_of: Callable[[int], Hashable],
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by an arbitrary key function; drops ``None`` keys.

    ``key_of`` receives a row id and returns the group key.  This is the
    scalar escape hatch for computed keys (bucket assignment functions);
    column partitioning goes through the vectorized
    :func:`group_by_column`.
    """
    groups: dict[Hashable, list[int]] = defaultdict(list)
    ids = range(len(table)) if row_ids is None else row_ids
    for rid in ids:
        key = key_of(rid)
        if key is not None:
            groups[key].append(rid)
    return dict(groups)


def group_by_column(
    table: Table,
    column: str,
    row_ids: Iterable[int] | None = None,
) -> dict[Hashable, list[int]]:
    """Partition rows by the value of one column (NULLs dropped) in one
    columnar pass."""
    return vector.group_rows(table.column_values(column), row_ids)


def aggregate_sum(values: Iterable[float]) -> float:
    """SUM over an iterable, ignoring ``None``."""
    return sum(v for v in values if v is not None)


def aggregate_count(values: Iterable) -> int:
    """COUNT of non-null values."""
    return sum(1 for v in values if v is not None)


def aggregate_avg(values: Iterable[float]) -> float | None:
    """AVG over non-null values; None on empty input."""
    total = 0.0
    count = 0
    for value in values:
        if value is not None:
            total += value
            count += 1
    if count == 0:
        return None
    return total / count


def aggregate_min(values: Iterable) -> object | None:
    """MIN over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value < best):
            best = value
    return best


def aggregate_max(values: Iterable) -> object | None:
    """MAX over non-null values; None on empty input."""
    best = None
    for value in values:
        if value is not None and (best is None or value > best):
            best = value
    return best


AGGREGATES: dict[str, Callable] = {
    "sum": aggregate_sum,
    "count": aggregate_count,
    "avg": aggregate_avg,
    "min": aggregate_min,
    "max": aggregate_max,
}
"""Aggregate functions addressable by name (used by measures and SQL gen)."""


def fused_group_aggregates(
    rows: Iterable[int],
    vectors: Sequence[Sequence],
    measure_values: Sequence,
    aggregate: str,
    on_chunk: Callable[[int], None] | None = None,
    chunk_size: int = 8192,
) -> list[dict]:
    """Per-group aggregates for N key vectors over one shared row set.

    The fused equivalent of N separate partition-then-fold evaluations:
    the row set is materialised once and each chunk is partitioned per
    key with the :func:`~repro.relational.vector.group_rows` kernel (a
    single tight loop per key, not one interpreted dispatch per row).
    NULL keys are dropped per key (a row excluded from one partitioning
    still counts in the others) and NULL measures are ignored inside
    every group, exactly matching the per-key :data:`AGGREGATES` folds
    — sum/count of an all-NULL group are 0, avg/min/max are None.

    ``on_chunk`` (if given) receives each chunk's row count before the
    chunk is folded, so long scans can cooperatively honour deadlines
    and charge budgets at batch granularity.
    """
    if aggregate not in AGGREGATES:
        raise KeyError(aggregate)
    if not isinstance(rows, (list, tuple)):
        rows = list(rows)
    fn = AGGREGATES[aggregate]
    partitions: list[dict] = [{} for _ in vectors]
    for start in range(0, len(rows), chunk_size):
        if on_chunk is not None:
            on_chunk(min(chunk_size, len(rows) - start))
        batch = rows[start:start + chunk_size]
        for key_vector, groups in zip(vectors, partitions):
            part = vector.group_rows(key_vector, batch)
            if not groups:
                groups.update(part)
                continue
            for value, ids in part.items():
                known = groups.get(value)
                if known is None:
                    groups[value] = ids
                else:
                    known.extend(ids)
    return [
        {value: vector.fold(fn, measure_values, ids)
         for value, ids in groups.items()}
        for groups in partitions
    ]
