"""Execute catalogs and generated SQL against sqlite3.

The in-memory engine is the primary execution path; this backend exists to
*cross-check* it: tests load the same :class:`~repro.relational.catalog.Database`
into an in-memory sqlite database, run the SQL produced by
:mod:`repro.relational.sql`, and compare results with the columnar engine.
It doubles as an escape hatch for users who want to point real SQL tooling
at a generated warehouse.
"""

from __future__ import annotations

import sqlite3
from typing import Iterable, Sequence

from .catalog import Database
from .table import Table
from .types import ColumnType

_SQLITE_TYPES = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.DATE: "TEXT",
    ColumnType.BOOLEAN: "INTEGER",
}


def _create_sql(table: Table) -> str:
    """CREATE TABLE statement for one columnar table."""
    parts = []
    for col in table.columns:
        decl = f'"{col.name}" {_SQLITE_TYPES[col.type]}'
        if not col.nullable:
            decl += " NOT NULL"
        if table.primary_key == col.name:
            decl += " PRIMARY KEY"
        parts.append(decl)
    return f'CREATE TABLE "{table.name}" (' + ", ".join(parts) + ")"


class SqliteBackend:
    """A sqlite3 mirror of a :class:`Database`.

    Usage::

        backend = SqliteBackend(db)
        rows = backend.execute("SELECT COUNT(*) FROM DimProduct")
    """

    def __init__(self, database: Database, path: str = ":memory:"):
        self.connection = sqlite3.connect(path)
        self._load(database)

    def _load(self, database: Database) -> None:
        cursor = self.connection.cursor()
        for table in database.tables():
            cursor.execute(_create_sql(table))
            if len(table) == 0:
                continue
            placeholders = ", ".join("?" for _ in table.columns)
            names = ", ".join(f'"{c.name}"' for c in table.columns)
            stmt = f'INSERT INTO "{table.name}" ({names}) VALUES ({placeholders})'
            stores = [table.column_values(c.name) for c in table.columns]
            rows = zip(*stores)
            cursor.executemany(stmt, (tuple(_to_sqlite(v) for v in row) for row in rows))
        self.connection.commit()

    def execute(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Run a query and fetch all rows."""
        cursor = self.connection.execute(sql, params)
        return cursor.fetchall()

    def close(self) -> None:
        """Close the underlying connection."""
        self.connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _to_sqlite(value):
    """Map engine values to sqlite storage values (bools become 0/1)."""
    if isinstance(value, bool):
        return int(value)
    return value
