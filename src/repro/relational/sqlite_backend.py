"""Execute catalogs and generated SQL against sqlite3.

This backend mirrors a :class:`~repro.relational.catalog.Database` into
sqlite3.  It started as a cross-check for the in-memory engine; the plan
layer (:mod:`repro.plan`) now also runs it as a first-class execution
backend, so **value fidelity** matters: a round trip through sqlite must
hand back the same Python values the columnar engine stores.

Two column types need explicit adaptation:

* ``BOOLEAN`` — stored as 0/1 (sqlite has no boolean affinity) and
  converted back to :class:`bool` on result rows;
* ``DATE`` — the engine stores dates as ISO-8601 strings; they are
  declared ``DATE`` and converted back to the identical string, so
  sqlite's own date machinery never silently reinterprets them.

Both rely on declared column types plus ``detect_types=PARSE_DECLTYPES``
with :func:`sqlite3.register_converter`; expression results (aggregates,
arithmetic) are unaffected because converters only fire for declared
columns.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
from typing import Sequence

from .catalog import Database
from .errors import BackendError
from .table import Table
from .types import ColumnType

_SQLITE_TYPES = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.FLOAT: "REAL",
    ColumnType.TEXT: "TEXT",
    ColumnType.DATE: "DATE",
    ColumnType.BOOLEAN: "BOOLEAN",
}

sqlite3.register_converter("BOOLEAN", lambda blob: bool(int(blob)))
# the engine stores DATE as ISO-8601 text; keep the round trip exact
sqlite3.register_converter("DATE", lambda blob: blob.decode("utf-8"))


def _create_sql(table: Table) -> str:
    """CREATE TABLE statement for one columnar table."""
    parts = []
    for col in table.columns:
        decl = f'"{col.name}" {_SQLITE_TYPES[col.type]}'
        if not col.nullable:
            decl += " NOT NULL"
        if table.primary_key == col.name:
            decl += " PRIMARY KEY"
        parts.append(decl)
    return f'CREATE TABLE "{table.name}" (' + ", ".join(parts) + ")"


_MEMORY_MIRROR_SEQ = itertools.count()
"""Distinct shared-cache names for concurrently-alive in-memory mirrors."""


class SqliteBackend:
    """A sqlite3 mirror of a :class:`Database`.

    Usage::

        backend = SqliteBackend(db)
        rows = backend.execute("SELECT COUNT(*) FROM DimProduct")

    The mirror is safe to query from worker threads: every thread other
    than the creator transparently gets its **own connection** to the
    same database (sqlite3 connections must not be shared across
    threads).  For the default in-memory mirror this uses a named
    shared-cache database — a plain ``:memory:`` connection would be a
    private, empty database per connection — anchored by the creator's
    connection so it lives exactly as long as the mirror.

    Two misuse modes are enforced as a clear typed
    :class:`~repro.relational.errors.BackendError` rather than a raw
    ``sqlite3.ProgrammingError`` escaping from deep inside a query:

    * querying after :meth:`close` (from the creator *or* a foreign
      thread — per-thread connections all die with the mirror);
    * any residual sqlite-level connection-affinity violation (a
      connection touched by a thread it does not belong to).

    Note the per-thread connections are opened lazily and only released
    at :meth:`close`; callers with **short-lived threads** (a
    thread-per-request server) must route queries through a bounded set
    of long-lived workers — the service layer keeps one session per
    worker thread for exactly this reason.
    """

    def __init__(self, database: Database, path: str = ":memory:"):
        self._closed = False
        if path == ":memory:":
            name = next(_MEMORY_MIRROR_SEQ)
            self._uri = f"file:kdap-mirror-{name}?mode=memory&cache=shared"
            self._is_uri = True
        else:
            self._uri = path
            self._is_uri = False
        self._local = threading.local()
        self._thread_connections: list[sqlite3.Connection] = []
        self._lock = threading.Lock()
        self._owner = threading.get_ident()
        self.connection = self._connect()
        self._load(database)

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False only relaxes sqlite3's ownership check;
        # each connection is still used by exactly one thread (and closed
        # by whichever thread runs close())
        return sqlite3.connect(self._uri, uri=self._is_uri,
                               detect_types=sqlite3.PARSE_DECLTYPES,
                               check_same_thread=False)

    def connection_for_thread(self) -> sqlite3.Connection:
        """This thread's connection to the mirror (the creator keeps the
        primary; other threads lazily open their own)."""
        if threading.get_ident() == self._owner:
            return self.connection
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._connect()
            self._local.connection = connection
            with self._lock:
                self._thread_connections.append(connection)
        return connection

    def _load(self, database: Database) -> None:
        cursor = self.connection.cursor()
        for table in database.tables():
            cursor.execute(_create_sql(table))
            if len(table) == 0:
                continue
            placeholders = ", ".join("?" for _ in table.columns)
            names = ", ".join(f'"{c.name}"' for c in table.columns)
            stmt = f'INSERT INTO "{table.name}" ({names}) VALUES ({placeholders})'
            types = [c.type for c in table.columns]
            stores = [table.column_values(c.name) for c in table.columns]
            rows = zip(*stores)
            cursor.executemany(
                stmt,
                (tuple(to_sqlite(v, t) for v, t in zip(row, types))
                 for row in rows),
            )
        self.connection.commit()

    def execute(self, sql: str, params: Sequence = ()) -> list[tuple]:
        """Run a query and fetch all rows (declared-type columns come back
        as engine values: bools as bool, dates as ISO strings).

        Raises :class:`BackendError` — never a raw
        ``sqlite3.ProgrammingError`` — when the mirror is closed or a
        connection is used off its owning thread.
        """
        if self._closed:
            raise BackendError(
                "sqlite mirror is closed; queries after close() are not "
                "served (sessions are per-worker — build a new session "
                "instead of reusing a closed one)")
        try:
            cursor = self.connection_for_thread().execute(sql, params)
            return cursor.fetchall()
        except sqlite3.ProgrammingError as exc:
            raise BackendError(
                f"sqlite connection misuse from thread "
                f"{threading.get_ident()}: {exc} (connections are "
                f"per-thread and die with the mirror; use one session "
                f"per worker thread)") from exc

    def close(self) -> None:
        """Close the primary connection and any per-thread ones
        (idempotent; later queries raise :class:`BackendError`)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            extras, self._thread_connections = self._thread_connections, []
        for connection in extras:
            try:
                connection.close()
            except sqlite3.Error:  # pragma: no cover - best-effort cleanup
                pass
        self.connection.close()

    def __enter__(self) -> "SqliteBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def to_sqlite(value, column_type: ColumnType | None = None):
    """Map one engine value to its sqlite storage value.

    Booleans become 0/1 (also when a BOOLEAN column holds an int-typed
    truth value); everything else is already storable.  ``column_type``
    is advisory — adaptation is value-driven so untyped call sites keep
    working.
    """
    if isinstance(value, bool):
        return int(value)
    if column_type is ColumnType.BOOLEAN and value is not None:
        return int(value)
    return value


def from_sqlite(value, column_type: ColumnType):
    """Map one sqlite result value back to its engine value.

    ``PARSE_DECLTYPES`` already converts declared columns; this helper is
    for results fetched positionally without declared types (e.g. raw
    expression selects) where the caller knows the column type."""
    if value is None:
        return None
    if column_type is ColumnType.BOOLEAN:
        return bool(value)
    return value


def _to_sqlite(value):
    """Backwards-compatible alias of :func:`to_sqlite`."""
    return to_sqlite(value)
