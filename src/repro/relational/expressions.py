"""Predicate and scalar expression trees.

Expressions evaluate against a :class:`~repro.relational.table.Table` in
two modes: the scalar :meth:`Expression.evaluate` (one row at a time —
the reference semantics) and the batch :meth:`Expression.evaluate_batch`
/ :meth:`Predicate.select_batch` kernels that move whole selection
vectors through :mod:`repro.relational.vector` at C-comprehension speed.
Both modes are result-identical by construction; the randomized parity
suite pins that equivalence.

The trees are intentionally tiny — comparisons, boolean combinators,
``IN`` sets, ranges, and arithmetic over columns — which covers
everything KDAP's star joins and measures need, while staying printable
as SQL for the :mod:`repro.relational.sql` generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from . import vector
from .errors import ExpressionError
from .table import Table


def _resolve_ids(table: Table,
                 row_ids: Sequence[int] | None) -> Sequence[int]:
    """The candidate selection: all rows when ``row_ids`` is None."""
    return range(len(table)) if row_ids is None else row_ids


class Expression:
    """Base class for all expressions."""

    def evaluate(self, table: Table, row_id: int):
        """Value of this expression on one row (reference semantics)."""
        raise NotImplementedError

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        """Values of this expression over a selection vector.

        The base implementation is the per-row reference loop; concrete
        nodes override it with columnar kernels.  All overrides must be
        value-identical to this loop.
        """
        return [self.evaluate(table, r) for r in _resolve_ids(table, row_ids)]

    def columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    def validate(self, table: Table) -> None:
        """Raise :class:`ExpressionError` when a referenced column is absent."""
        for name in self.columns():
            if not table.has_column(name):
                raise ExpressionError(
                    f"expression references unknown column {name!r} "
                    f"of table {table.name!r}"
                )


# ----------------------------------------------------------------------
# scalar expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Col(Expression):
    """A column reference."""

    name: str

    def evaluate(self, table: Table, row_id: int):
        return table.value(row_id, self.name)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        return vector.take(table.column_values(self.name), row_ids)

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: object

    def evaluate(self, table: Table, row_id: int):
        return self.value

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        return [self.value] * len(_resolve_ids(table, row_ids))

    def columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith(Expression):
    """Binary arithmetic over two scalar expressions (``None`` propagates)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, table: Table, row_id: int):
        lhs = self.left.evaluate(table, row_id)
        rhs = self.right.evaluate(table, row_id)
        if lhs is None or rhs is None:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        op = _ARITH_OPS[self.op]
        lhs = self.left.evaluate_batch(table, row_ids)
        rhs = self.right.evaluate_batch(table, row_ids)
        return [None if a is None or b is None else op(a, b)
                for a, b in zip(lhs, rhs)]

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
class Predicate(Expression):
    """An expression evaluating to bool (SQL three-valued logic collapsed:
    NULL comparisons evaluate to False)."""

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        """Selection vector of candidate rows satisfying this predicate.

        Result-identical to filtering ``row_ids`` with per-row
        :meth:`evaluate`; concrete predicates override with columnar
        kernels (``IN`` probes a set over the raw column, ``AND``
        narrows the selection one conjunct at a time).
        """
        ids = _resolve_ids(table, row_ids)
        return vector.compress(self.evaluate_batch(table, ids), ids)


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """Comparison of two scalar expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, table: Table, row_id: int) -> bool:
        lhs = self.left.evaluate(table, row_id)
        rhs = self.right.evaluate(table, row_id)
        if lhs is None or rhs is None:
            return False
        return _CMP_OPS[self.op](lhs, rhs)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        op = _CMP_OPS[self.op]
        lhs = self.left.evaluate_batch(table, row_ids)
        rhs = self.right.evaluate_batch(table, row_ids)
        return [a is not None and b is not None and op(a, b)
                for a, b in zip(lhs, rhs)]

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class In(Predicate):
    """Membership of a column in a fixed value set (the workhorse of hit
    groups: ``GroupName IN ('LCD Projectors', 'Flat Panel(LCD)')``)."""

    expr: Expression
    values: frozenset

    @staticmethod
    def of(expr: Expression, values: Iterable) -> "In":
        """Build an ``IN`` predicate from any iterable of values."""
        return In(expr, frozenset(values))

    def evaluate(self, table: Table, row_id: int) -> bool:
        value = self.expr.evaluate(table, row_id)
        return value is not None and value in self.values

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        wanted = self.values
        return [v is not None and v in wanted
                for v in self.expr.evaluate_batch(table, row_ids)]

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        # the workhorse fast path: IN over a bare column probes the set
        # against the raw vector, skipping the mask materialisation
        if isinstance(self.expr, Col):
            column = table.column_values(self.expr.name)
            return vector.select_in(column, self.values, row_ids)
        ids = _resolve_ids(table, row_ids)
        return vector.compress(self.evaluate_batch(table, ids), ids)

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        rendered = ", ".join(sorted(str(Const(v)) for v in self.values))
        return f"{self.expr} IN ({rendered})"


@dataclass(frozen=True)
class Between(Predicate):
    """Closed-open range test ``low <= expr < high`` used by numerical
    bucketization (the last bucket of a domain uses ``inclusive_high``)."""

    expr: Expression
    low: float
    high: float
    inclusive_high: bool = False

    def evaluate(self, table: Table, row_id: int) -> bool:
        value = self.expr.evaluate(table, row_id)
        if value is None:
            return False
        if self.inclusive_high:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        values = self.expr.evaluate_batch(table, row_ids)
        low, high = self.low, self.high
        if self.inclusive_high:
            return [v is not None and low <= v <= high for v in values]
        return [v is not None and low <= v < high for v in values]

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        if isinstance(self.expr, Col):
            column = table.column_values(self.expr.name)
            return vector.select_range(column, self.low, self.high, row_ids,
                                       inclusive_high=self.inclusive_high)
        ids = _resolve_ids(table, row_ids)
        return vector.compress(self.evaluate_batch(table, ids), ids)

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        op = "<=" if self.inclusive_high else "<"
        return f"({self.low!r} <= {self.expr} AND {self.expr} {op} {self.high!r})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    @staticmethod
    def of(*parts: Predicate) -> "Predicate":
        """Conjunction, flattening nested Ands; one part returns itself."""
        flat: list[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def evaluate(self, table: Table, row_id: int) -> bool:
        return all(p.evaluate(table, row_id) for p in self.parts)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        ids = _resolve_ids(table, row_ids)
        selected = set(self.select_batch(table, ids))
        return [r in selected for r in ids]

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        # selection-vector refinement: each conjunct only tests the rows
        # that survived the previous one
        selection = _resolve_ids(table, row_ids)
        for part in self.parts:
            if not selection:
                break
            selection = part.select_batch(table, selection)
        return list(selection)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    @staticmethod
    def of(*parts: Predicate) -> "Predicate":
        """Disjunction, flattening nested Ors; one part returns itself."""
        flat: list[Predicate] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def evaluate(self, table: Table, row_id: int) -> bool:
        return any(p.evaluate(table, row_id) for p in self.parts)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        if not self.parts:
            return [False] * len(_resolve_ids(table, row_ids))
        masks = [p.evaluate_batch(table, row_ids) for p in self.parts]
        return [any(hits) for hits in zip(*masks)]

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        # each disjunct selects over the full candidate set; the union is
        # rebuilt in candidate order so the output stays a selection
        ids = _resolve_ids(table, row_ids)
        hit: set[int] = set()
        for part in self.parts:
            hit.update(part.select_batch(table, ids))
        return [r for r in ids if r in hit]

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    inner: Predicate

    def evaluate(self, table: Table, row_id: int) -> bool:
        return not self.inner.evaluate(table, row_id)

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        return [not hit for hit in self.inner.evaluate_batch(table, row_ids)]

    def select_batch(self, table: Table,
                     row_ids: Sequence[int] | None = None) -> list[int]:
        ids = _resolve_ids(table, row_ids)
        hit = set(self.inner.select_batch(table, ids))
        return [r for r in ids if r not in hit]

    def columns(self) -> set[str]:
        return self.inner.columns()

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class IsNull(Predicate):
    """NULL test."""

    expr: Expression

    def evaluate(self, table: Table, row_id: int) -> bool:
        return self.expr.evaluate(table, row_id) is None

    def evaluate_batch(self, table: Table,
                       row_ids: Sequence[int] | None = None) -> list:
        return [v is None
                for v in self.expr.evaluate_batch(table, row_ids)]

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        return f"{self.expr} IS NULL"


TRUE = Compare("=", Const(1), Const(1))
"""A predicate that is always true (useful as a neutral filter)."""


def eq(column: str, value) -> Compare:
    """Shorthand for ``Col(column) = Const(value)``."""
    return Compare("=", Col(column), Const(value))


def isin(column: str, values: Iterable) -> In:
    """Shorthand for ``Col(column) IN values``."""
    return In.of(Col(column), values)
