"""Predicate and scalar expression trees.

Expressions are evaluated per row against a :class:`~repro.relational.table.Table`.
They are intentionally tiny — comparisons, boolean combinators, ``IN`` sets,
ranges, and arithmetic over columns — which covers everything KDAP's star
joins and measures need, while staying printable as SQL for the
:mod:`repro.relational.sql` generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .errors import ExpressionError
from .table import Table


class Expression:
    """Base class for all expressions."""

    def evaluate(self, table: Table, row_id: int):
        """Value of this expression on one row."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    def validate(self, table: Table) -> None:
        """Raise :class:`ExpressionError` when a referenced column is absent."""
        for name in self.columns():
            if not table.has_column(name):
                raise ExpressionError(
                    f"expression references unknown column {name!r} "
                    f"of table {table.name!r}"
                )


# ----------------------------------------------------------------------
# scalar expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Col(Expression):
    """A column reference."""

    name: str

    def evaluate(self, table: Table, row_id: int):
        return table.value(row_id, self.name)

    def columns(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A literal constant."""

    value: object

    def evaluate(self, table: Table, row_id: int):
        return self.value

    def columns(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arith(Expression):
    """Binary arithmetic over two scalar expressions (``None`` propagates)."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _ARITH_OPS:
            raise ExpressionError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, table: Table, row_id: int):
        lhs = self.left.evaluate(table, row_id)
        rhs = self.right.evaluate(table, row_id)
        if lhs is None or rhs is None:
            return None
        return _ARITH_OPS[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
class Predicate(Expression):
    """An expression evaluating to bool (SQL three-valued logic collapsed:
    NULL comparisons evaluate to False)."""


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Compare(Predicate):
    """Comparison of two scalar expressions."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _CMP_OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, table: Table, row_id: int) -> bool:
        lhs = self.left.evaluate(table, row_id)
        rhs = self.right.evaluate(table, row_id)
        if lhs is None or rhs is None:
            return False
        return _CMP_OPS[self.op](lhs, rhs)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class In(Predicate):
    """Membership of a column in a fixed value set (the workhorse of hit
    groups: ``GroupName IN ('LCD Projectors', 'Flat Panel(LCD)')``)."""

    expr: Expression
    values: frozenset

    @staticmethod
    def of(expr: Expression, values: Iterable) -> "In":
        """Build an ``IN`` predicate from any iterable of values."""
        return In(expr, frozenset(values))

    def evaluate(self, table: Table, row_id: int) -> bool:
        value = self.expr.evaluate(table, row_id)
        return value is not None and value in self.values

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        rendered = ", ".join(sorted(str(Const(v)) for v in self.values))
        return f"{self.expr} IN ({rendered})"


@dataclass(frozen=True)
class Between(Predicate):
    """Closed-open range test ``low <= expr < high`` used by numerical
    bucketization (the last bucket of a domain uses ``inclusive_high``)."""

    expr: Expression
    low: float
    high: float
    inclusive_high: bool = False

    def evaluate(self, table: Table, row_id: int) -> bool:
        value = self.expr.evaluate(table, row_id)
        if value is None:
            return False
        if self.inclusive_high:
            return self.low <= value <= self.high
        return self.low <= value < self.high

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        op = "<=" if self.inclusive_high else "<"
        return f"({self.low!r} <= {self.expr} AND {self.expr} {op} {self.high!r})"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    parts: tuple[Predicate, ...]

    @staticmethod
    def of(*parts: Predicate) -> "Predicate":
        """Conjunction, flattening nested Ands; one part returns itself."""
        flat: list[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) == 1:
            return flat[0]
        return And(tuple(flat))

    def evaluate(self, table: Table, row_id: int) -> bool:
        return all(p.evaluate(table, row_id) for p in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    @staticmethod
    def of(*parts: Predicate) -> "Predicate":
        """Disjunction, flattening nested Ors; one part returns itself."""
        flat: list[Predicate] = []
        for part in parts:
            if isinstance(part, Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if len(flat) == 1:
            return flat[0]
        return Or(tuple(flat))

    def evaluate(self, table: Table, row_id: int) -> bool:
        return any(p.evaluate(table, row_id) for p in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    inner: Predicate

    def evaluate(self, table: Table, row_id: int) -> bool:
        return not self.inner.evaluate(table, row_id)

    def columns(self) -> set[str]:
        return self.inner.columns()

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class IsNull(Predicate):
    """NULL test."""

    expr: Expression

    def evaluate(self, table: Table, row_id: int) -> bool:
        return self.expr.evaluate(table, row_id) is None

    def columns(self) -> set[str]:
        return self.expr.columns()

    def __str__(self) -> str:
        return f"{self.expr} IS NULL"


TRUE = Compare("=", Const(1), Const(1))
"""A predicate that is always true (useful as a neutral filter)."""


def eq(column: str, value) -> Compare:
    """Shorthand for ``Col(column) = Const(value)``."""
    return Compare("=", Col(column), Const(value))


def isin(column: str, values: Iterable) -> In:
    """Shorthand for ``Col(column) IN values``."""
    return In.of(Col(column), values)
