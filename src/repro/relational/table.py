"""Columnar in-memory tables.

A :class:`Table` keeps one Python list per column.  Rows are addressed by
integer row id (their position), which lets higher layers (subspaces, join
indexes) represent row sets as plain ``list[int]`` / ``set[int]`` without
copying any data.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .errors import IntegrityError, UnknownColumnError
from .types import Column, coerce_value


class Table:
    """A named, columnar, append-only table.

    Parameters
    ----------
    name:
        Table name; must be unique inside a :class:`~repro.relational.catalog.Database`.
    columns:
        Ordered column definitions.
    primary_key:
        Optional name of the primary-key column.  When set, inserts maintain
        a unique index used by :meth:`lookup_pk` and by hash joins on the key.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
    ):
        if not columns:
            raise IntegrityError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise IntegrityError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._col_index: dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self._data: list[list] = [[] for _ in columns]
        self.primary_key = primary_key
        self._pk_index: dict[object, int] | None = None
        if primary_key is not None:
            if primary_key not in self._col_index:
                raise UnknownColumnError(name, primary_key)
            self._pk_index = {}

    # ------------------------------------------------------------------
    # schema inspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the columns, in definition order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """True when the table defines a column called ``name``."""
        return name in self._col_index

    def column(self, name: str) -> Column:
        """The :class:`Column` definition for ``name``."""
        try:
            return self.columns[self._col_index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data[0])

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return len(self)

    def column_values(self, name: str) -> list:
        """The full value list of one column (shared, do not mutate)."""
        try:
            return self._data[self._col_index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def value(self, row_id: int, column: str):
        """A single cell value."""
        return self.column_values(column)[row_id]

    def row(self, row_id: int) -> dict:
        """One row as a ``{column: value}`` dict (materialised copy)."""
        return {c.name: self._data[i][row_id] for i, c in enumerate(self.columns)}

    def rows(self, row_ids: Iterable[int] | None = None) -> Iterator[dict]:
        """Iterate rows as dicts; all rows when ``row_ids`` is None."""
        ids = range(len(self)) if row_ids is None else row_ids
        for rid in ids:
            yield self.row(rid)

    def distinct(self, column: str, row_ids: Iterable[int] | None = None) -> set:
        """Distinct non-null values of ``column`` over the given rows."""
        values = self.column_values(column)
        if row_ids is None:
            return {v for v in values if v is not None}
        return {values[r] for r in row_ids if values[r] is not None}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> int:
        """Append one row given as a mapping; returns the new row id.

        Missing columns are stored as ``None`` (subject to nullability);
        unexpected keys raise :class:`UnknownColumnError`.
        """
        for key in row:
            if key not in self._col_index:
                raise UnknownColumnError(self.name, key)
        row_id = len(self)
        for i, col in enumerate(self.columns):
            value = coerce_value(row.get(col.name), col)
            self._data[i].append(value)
        if self._pk_index is not None:
            key = self._data[self._col_index[self.primary_key]][row_id]
            if key in self._pk_index:
                # roll back the partial append so the table stays consistent
                for store in self._data:
                    store.pop()
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = row_id
        return row_id

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup_pk(self, key) -> int | None:
        """Row id for a primary-key value, or None when absent."""
        if self._pk_index is None:
            raise IntegrityError(f"table {self.name!r} has no primary key")
        return self._pk_index.get(key)

    def build_index(self, column: str) -> dict[object, list[int]]:
        """A value → row-ids index over one column (built on demand)."""
        index: dict[object, list[int]] = {}
        for rid, value in enumerate(self.column_values(column)):
            index.setdefault(value, []).append(rid)
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self)} rows, {len(self.columns)} cols)"
