"""Columnar in-memory tables.

A :class:`Table` keeps one Python list per column — the append-only
*write store*.  Rows are addressed by integer row id (their position),
which lets higher layers (subspaces, join indexes) represent row sets as
plain ``list[int]`` / ``set[int]`` without copying any data.

On top of the write store sits the encoded *read store*:
:meth:`column_chunks` lazily compresses a column into
:mod:`~repro.relational.chunks` column chunks (dictionary / run-length /
plain, each with a zone map) that the vectorized read path consumes.
Chunks are memoised per column and invalidated by a table-wide version
counter, so an insert simply makes the next reader re-encode.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from .chunks import ColumnChunk, encode_column
from .errors import IntegrityError, UnknownColumnError
from .types import Column, coerce_value


class Table:
    """A named, columnar, append-only table.

    Parameters
    ----------
    name:
        Table name; must be unique inside a :class:`~repro.relational.catalog.Database`.
    columns:
        Ordered column definitions.
    primary_key:
        Optional name of the primary-key column.  When set, inserts maintain
        a unique index used by :meth:`lookup_pk` and by hash joins on the key.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: str | None = None,
    ):
        if not columns:
            raise IntegrityError(f"table {name!r} must have at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise IntegrityError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: tuple[Column, ...] = tuple(columns)
        self._col_index: dict[str, int] = {c.name: i for i, c in enumerate(columns)}
        self._data: list[list] = [[] for _ in columns]
        self._version = 0
        self._chunk_cache: dict[str, tuple[int, list[ColumnChunk]]] = {}
        self.primary_key = primary_key
        self._pk_index: dict[object, int] | None = None
        if primary_key is not None:
            if primary_key not in self._col_index:
                raise UnknownColumnError(name, primary_key)
            self._pk_index = {}

    # ------------------------------------------------------------------
    # schema inspection
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the columns, in definition order."""
        return tuple(c.name for c in self.columns)

    def has_column(self, name: str) -> bool:
        """True when the table defines a column called ``name``."""
        return name in self._col_index

    def column(self, name: str) -> Column:
        """The :class:`Column` definition for ``name``."""
        try:
            return self.columns[self._col_index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._data[0])

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        return len(self)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every append.

        Caches layered above the table (encoded chunks, fact-aligned
        vectors, materialized views) key their entries by this counter:
        an append-only table whose version is unchanged is guaranteed
        bit-identical, and a grown version means exactly that rows were
        appended past the old length (existing rows never mutate).
        """
        return self._version

    def column_values(self, name: str) -> list:
        """The full value list of one column (shared, do not mutate)."""
        try:
            return self._data[self._col_index[name]]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def column_chunks(self, name: str) -> list[ColumnChunk]:
        """The encoded read store of one column: a list of uniform-width
        column chunks (dictionary / RLE / plain, each with a zone map).

        Encoded lazily on first access and memoised until the table's
        next mutation bumps the version counter.
        """
        cached = self._chunk_cache.get(name)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        chunks = encode_column(self.column_values(name))
        self._chunk_cache[name] = (self._version, chunks)
        return chunks

    def value(self, row_id: int, column: str):
        """A single cell value."""
        return self.column_values(column)[row_id]

    def row(self, row_id: int) -> dict:
        """One row as a ``{column: value}`` dict (materialised copy)."""
        return {c.name: self._data[i][row_id] for i, c in enumerate(self.columns)}

    def rows(self, row_ids: Iterable[int] | None = None) -> Iterator[dict]:
        """Iterate rows as dicts; all rows when ``row_ids`` is None."""
        ids = range(len(self)) if row_ids is None else row_ids
        for rid in ids:
            yield self.row(rid)

    def distinct(self, column: str, row_ids: Iterable[int] | None = None) -> set:
        """Distinct non-null values of ``column`` over the given rows."""
        values = self.column_values(column)
        if row_ids is None:
            return {v for v in values if v is not None}
        return {values[r] for r in row_ids if values[r] is not None}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, row: Mapping[str, object]) -> int:
        """Append one row given as a mapping; returns the new row id.

        Missing columns are stored as ``None`` (subject to nullability);
        unexpected keys raise :class:`UnknownColumnError`.
        """
        for key in row:
            if key not in self._col_index:
                raise UnknownColumnError(self.name, key)
        row_id = len(self)
        self._version += 1
        for i, col in enumerate(self.columns):
            value = coerce_value(row.get(col.name), col)
            self._data[i].append(value)
        if self._pk_index is not None:
            key = self._data[self._col_index[self.primary_key]][row_id]
            if key in self._pk_index:
                # roll back the partial append so the table stays consistent
                for store in self._data:
                    store.pop()
                raise IntegrityError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = row_id
        return row_id

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def load_columns(self, columns: Mapping[str, Sequence]) -> None:
        """Bulk-append column-oriented data (the scale-generator path).

        Every declared column must be present and all value lists equal
        length; values are validated through :func:`coerce_value` exactly
        as :meth:`insert`, but appended one whole column at a time so
        million-row loads avoid per-row dict handling.
        """
        missing = [c.name for c in self.columns if c.name not in columns]
        if missing:
            raise IntegrityError(
                f"load_columns into {self.name!r} missing {missing}")
        for key in columns:
            if key not in self._col_index:
                raise UnknownColumnError(self.name, key)
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise IntegrityError(
                f"load_columns into {self.name!r}: ragged column lengths")
        base = len(self)
        self._version += 1
        for i, col in enumerate(self.columns):
            self._data[i].extend(
                coerce_value(v, col) for v in columns[col.name])
        if self._pk_index is not None:
            store = self._data[self._col_index[self.primary_key]]
            index = self._pk_index
            seen: set = set()
            for key in store[base:]:
                if key in index or key in seen:
                    for data in self._data:
                        del data[base:]
                    raise IntegrityError(
                        f"duplicate primary key {key!r} in table "
                        f"{self.name!r}")
                seen.add(key)
            for rid in range(base, len(store)):
                index[store[rid]] = rid

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def lookup_pk(self, key) -> int | None:
        """Row id for a primary-key value, or None when absent."""
        if self._pk_index is None:
            raise IntegrityError(f"table {self.name!r} has no primary key")
        return self._pk_index.get(key)

    def build_index(self, column: str) -> dict[object, list[int]]:
        """A value → row-ids index over one column (built on demand)."""
        index: dict[object, list[int]] = {}
        for rid, value in enumerate(self.column_values(column)):
            index.setdefault(value, []).append(rid)
        return index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self)} rows, {len(self.columns)} cols)"
