"""In-memory columnar relational engine (substrate for the KDAP warehouse).

Public surface::

    from repro.relational import (
        Database, Table, Column, ColumnType, ForeignKey,
        integer, float_, text, date, boolean,
        Col, Const, Compare, In, Between, And, Or, Not, eq, isin,
        select, semi_join, hash_join, group_by_column,
        JoinQuery, JoinEdge, AliasFilter, SqliteBackend,
    )
"""

from .catalog import Database, ForeignKey
from .errors import (
    DuplicateTableError,
    ExpressionError,
    IntegrityError,
    RelationalError,
    SchemaError,
    TypeMismatchError,
    UnknownColumnError,
    UnknownTableError,
)
from .expressions import (
    And,
    Arith,
    Between,
    Col,
    Compare,
    Const,
    Expression,
    In,
    IsNull,
    Not,
    Or,
    Predicate,
    TRUE,
    eq,
    isin,
)
from .executor import execute_join_query
from .persistence import dump_database, load_database
from .operators import (
    AGGREGATES,
    aggregate_avg,
    aggregate_count,
    aggregate_max,
    aggregate_min,
    aggregate_sum,
    group_by,
    group_by_column,
    hash_join,
    project,
    select,
    semi_join,
)
from .sql import AliasFilter, JoinEdge, JoinQuery
from .sqlite_backend import SqliteBackend
from .table import Table
from .types import (
    Column,
    ColumnType,
    boolean,
    coerce_value,
    date,
    float_,
    integer,
    text,
)

__all__ = [
    "AGGREGATES",
    "AliasFilter",
    "And",
    "Arith",
    "Between",
    "Col",
    "Column",
    "ColumnType",
    "Compare",
    "Const",
    "Database",
    "DuplicateTableError",
    "Expression",
    "ExpressionError",
    "ForeignKey",
    "In",
    "IntegrityError",
    "IsNull",
    "JoinEdge",
    "JoinQuery",
    "Not",
    "Or",
    "Predicate",
    "RelationalError",
    "SchemaError",
    "SqliteBackend",
    "TRUE",
    "Table",
    "TypeMismatchError",
    "UnknownColumnError",
    "UnknownTableError",
    "aggregate_avg",
    "aggregate_count",
    "aggregate_max",
    "aggregate_min",
    "aggregate_sum",
    "boolean",
    "coerce_value",
    "date",
    "dump_database",
    "eq",
    "execute_join_query",
    "float_",
    "group_by",
    "group_by_column",
    "hash_join",
    "integer",
    "isin",
    "load_database",
    "project",
    "select",
    "semi_join",
    "text",
]
