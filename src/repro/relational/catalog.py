"""The database catalog: named tables plus foreign-key metadata.

A :class:`Database` is the unit the warehouse layer builds on: it owns the
tables and the foreign keys between them.  Foreign keys are *directed*
(child → parent) and *named*, because OLAP schemas routinely contain
parallel edges between the same pair of tables — e.g. the paper's EBiz
schema joins ``Account`` to ``Trans`` on both ``BuyerKey`` and
``SellerKey`` — and path enumeration must treat those as distinct edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .errors import (
    DuplicateTableError,
    IntegrityError,
    UnknownColumnError,
    UnknownTableError,
)
from .table import Table


@dataclass(frozen=True)
class ForeignKey:
    """A directed foreign-key edge ``child.child_column → parent.parent_column``.

    ``name`` disambiguates parallel edges between the same table pair and is
    used in join-path displays (e.g. ``TRANS --BuyerKey--> ACCOUNT``).
    """

    name: str
    child_table: str
    child_column: str
    parent_table: str
    parent_column: str

    def __str__(self) -> str:
        return (
            f"{self.child_table}.{self.child_column} -> "
            f"{self.parent_table}.{self.parent_column}"
        )


class Database:
    """A named collection of tables and the foreign keys linking them."""

    def __init__(self, name: str):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._fk_names: set[str] = set()

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        """Register a table; names must be unique."""
        if table.name in self._tables:
            raise DuplicateTableError(table.name)
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """True when ``name`` is a registered table."""
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Registered table names in insertion order."""
        return list(self._tables)

    def tables(self) -> Iterator[Table]:
        """Iterate all registered tables."""
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # foreign keys
    # ------------------------------------------------------------------
    def add_foreign_key(
        self,
        name: str,
        child_table: str,
        child_column: str,
        parent_table: str,
        parent_column: str,
    ) -> ForeignKey:
        """Register a foreign key after validating both endpoints exist."""
        if name in self._fk_names:
            raise IntegrityError(f"duplicate foreign key name {name!r}")
        child = self.table(child_table)
        parent = self.table(parent_table)
        if not child.has_column(child_column):
            raise UnknownColumnError(child_table, child_column)
        if not parent.has_column(parent_column):
            raise UnknownColumnError(parent_table, parent_column)
        fk = ForeignKey(name, child_table, child_column, parent_table, parent_column)
        self._foreign_keys.append(fk)
        self._fk_names.add(name)
        return fk

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        """All registered foreign keys."""
        return tuple(self._foreign_keys)

    def foreign_keys_of(self, table: str) -> list[ForeignKey]:
        """Foreign keys where ``table`` is the child (outgoing edges)."""
        return [fk for fk in self._foreign_keys if fk.child_table == table]

    def foreign_keys_into(self, table: str) -> list[ForeignKey]:
        """Foreign keys where ``table`` is the parent (incoming edges)."""
        return [fk for fk in self._foreign_keys if fk.parent_table == table]

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def check_referential_integrity(self) -> list[str]:
        """Verify every FK value resolves to a parent row.

        Returns a list of human-readable violation messages (empty when the
        database is consistent).  NULL child values are allowed.
        """
        violations: list[str] = []
        for fk in self._foreign_keys:
            parent = self.table(fk.parent_table)
            parent_keys = set(parent.column_values(fk.parent_column))
            child = self.table(fk.child_table)
            for rid, value in enumerate(child.column_values(fk.child_column)):
                if value is not None and value not in parent_keys:
                    violations.append(
                        f"{fk}: child row {rid} has dangling key {value!r}"
                    )
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Database({self.name!r}, {len(self._tables)} tables, "
            f"{len(self._foreign_keys)} FKs)"
        )
