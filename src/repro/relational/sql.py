"""SQL text generation.

Higher layers (star nets, facet queries) compile down to a :class:`JoinQuery`
— a fact-rooted join tree with per-alias filters, optional group-by, and an
aggregate over a measure expression.  This module renders that structure as
standard SQL so that (a) users can inspect the exact query a star net means,
and (b) the sqlite backend can execute it to cross-check the in-memory
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .expressions import Expression, Predicate


@dataclass(frozen=True)
class JoinEdge:
    """One join step: ``left_alias.left_column = right_alias.right_column``.

    ``right_table`` is the base-table name behind ``right_alias``; the fact
    table anchors the FROM clause, and each edge adds one JOIN.  ``left``
    renders a LEFT JOIN — used for group-by attribute paths, where rows
    with dangling foreign keys must survive as NULL-keyed rows instead of
    being dropped.
    """

    left_alias: str
    left_column: str
    right_table: str
    right_alias: str
    right_column: str
    left: bool = False


@dataclass(frozen=True)
class AliasFilter:
    """A predicate applied to one aliased table."""

    alias: str
    predicate: Predicate


@dataclass
class JoinQuery:
    """A fact-rooted join query.

    Attributes
    ----------
    fact_table / fact_alias:
        The anchor of the FROM clause.
    edges:
        Join steps, in an order where every edge's ``left_alias`` has already
        been introduced (the fact alias is introduced first).
    filters:
        Per-alias predicates ANDed into the WHERE clause.
    group_by:
        Optional ``(alias, column)`` pairs.
    aggregate:
        Aggregate function name (``sum``/``count``/...), applied to
        ``measure_sql`` (a rendered scalar expression over fact columns).
    """

    fact_table: str
    fact_alias: str
    edges: list[JoinEdge] = field(default_factory=list)
    filters: list[AliasFilter] = field(default_factory=list)
    group_by: list[tuple[str, str]] = field(default_factory=list)
    aggregate: str = "sum"
    measure_sql: str = "1"
    measure_expr: Expression | None = None
    """The measure as an evaluable expression over fact columns — used by
    the in-memory executor; ``measure_sql`` is its rendered form for SQL."""

    def to_sql(self) -> str:
        """Render this query as SQL text."""
        select_parts: list[str] = []
        for alias, column in self.group_by:
            select_parts.append(f"{alias}.{column}")
        select_parts.append(f"{self.aggregate.upper()}({self.measure_sql}) AS agg")
        group_keys = [f"{alias}.{column}" for alias, column in self.group_by]
        return self.render_sql(select_parts, group_keys)

    def render_sql(self, select_parts: Sequence[str],
                   group_keys: Sequence[str] = ()) -> str:
        """Render this query's join tree and filters with a caller-chosen
        SELECT list (used by backends to select row ids, distinct values,
        or custom aggregates over the same plan)."""
        lines = [
            "SELECT " + ", ".join(select_parts),
            f"FROM {self.fact_table} AS {self.fact_alias}",
        ]
        for edge in self.edges:
            keyword = "LEFT JOIN" if edge.left else "JOIN"
            lines.append(
                f"{keyword} {edge.right_table} AS {edge.right_alias} "
                f"ON {edge.left_alias}.{edge.left_column} = "
                f"{edge.right_alias}.{edge.right_column}"
            )
        if self.filters:
            rendered = [
                "(" + _qualify(str(f.predicate), f.alias) + ")"
                for f in self.filters
            ]
            lines.append("WHERE " + " AND ".join(rendered))
        if group_keys:
            lines.append("GROUP BY " + ", ".join(group_keys))
        return "\n".join(lines)


def render_batched_sql(cte_name: str, cte_sql: str,
                       branch_sqls: Sequence[str]) -> str:
    """Assemble one batched statement from a shared CTE and N grouped
    selects over it.

    The fused-aggregation shape: the (potentially expensive) row
    selection is evaluated once into ``cte_name``, and every branch —
    one grouped aggregate per group-by attribute — reads from it,
    UNION-ALL'ed into a single result set tagged by branch index.
    """
    if not branch_sqls:
        raise ValueError("batched SQL needs at least one branch")
    body = "\nUNION ALL\n".join(branch_sqls)
    return f"WITH {cte_name} AS (\n{cte_sql}\n)\n{body}"


def _qualify(predicate_sql: str, alias: str) -> str:
    """Qualify bare column names in a rendered predicate with ``alias``.

    Predicates render column references as bare identifiers; inside a join
    query every identifier must be alias-qualified.  We do a conservative
    token rewrite: identifiers that are not SQL keywords, not quoted strings,
    and not numbers get the alias prefix.
    """
    keywords = {"AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "LIKE"}
    out: list[str] = []
    i = 0
    n = len(predicate_sql)
    while i < n:
        ch = predicate_sql[i]
        if ch == "'":
            # copy the quoted string verbatim (handles '' escapes)
            j = i + 1
            while j < n:
                if predicate_sql[j] == "'":
                    if j + 1 < n and predicate_sql[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            out.append(predicate_sql[i : j + 1])
            i = j + 1
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (predicate_sql[j].isalnum() or predicate_sql[j] == "_"):
                j += 1
            token = predicate_sql[i:j]
            if token.upper() in keywords:
                out.append(token)
            else:
                out.append(f"{alias}.{token}")
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def qualify_measure(measure_sql: str, fact_alias: str) -> str:
    """Qualify bare identifiers in a rendered measure with the fact alias.

    Measures only read fact columns, so every identifier gets the prefix
    (there are no keywords or quoted strings in measure expressions).
    """
    out: list[str] = []
    i = 0
    n = len(measure_sql)
    while i < n:
        ch = measure_sql[i]
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (measure_sql[j].isalnum() or measure_sql[j] == "_"):
                j += 1
            out.append(f"{fact_alias}.{measure_sql[i:j]}")
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def render_measure(expr: Expression) -> str:
    """Render a measure expression for SQL (columns assumed fact-qualified
    later via :func:`_qualify` convention: measures only read fact columns,
    so we qualify with the fact alias at call sites)."""
    return str(expr)
