"""SQL text generation.

Higher layers (star nets, facet queries) compile down to a :class:`JoinQuery`
— a fact-rooted join tree with per-alias filters, optional group-by, and an
aggregate over a measure expression.  This module renders that structure as
standard SQL so that (a) users can inspect the exact query a star net means,
and (b) the sqlite backend can execute it to cross-check the in-memory
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .expressions import Expression, Predicate


@dataclass(frozen=True)
class JoinEdge:
    """One join step: ``left_alias.left_column = right_alias.right_column``.

    ``right_table`` is the base-table name behind ``right_alias``; the fact
    table anchors the FROM clause, and each edge adds one JOIN.
    """

    left_alias: str
    left_column: str
    right_table: str
    right_alias: str
    right_column: str


@dataclass(frozen=True)
class AliasFilter:
    """A predicate applied to one aliased table."""

    alias: str
    predicate: Predicate


@dataclass
class JoinQuery:
    """A fact-rooted join query.

    Attributes
    ----------
    fact_table / fact_alias:
        The anchor of the FROM clause.
    edges:
        Join steps, in an order where every edge's ``left_alias`` has already
        been introduced (the fact alias is introduced first).
    filters:
        Per-alias predicates ANDed into the WHERE clause.
    group_by:
        Optional ``(alias, column)`` pairs.
    aggregate:
        Aggregate function name (``sum``/``count``/...), applied to
        ``measure_sql`` (a rendered scalar expression over fact columns).
    """

    fact_table: str
    fact_alias: str
    edges: list[JoinEdge] = field(default_factory=list)
    filters: list[AliasFilter] = field(default_factory=list)
    group_by: list[tuple[str, str]] = field(default_factory=list)
    aggregate: str = "sum"
    measure_sql: str = "1"
    measure_expr: Expression | None = None
    """The measure as an evaluable expression over fact columns — used by
    the in-memory executor; ``measure_sql`` is its rendered form for SQL."""

    def to_sql(self) -> str:
        """Render this query as SQL text."""
        select_parts: list[str] = []
        for alias, column in self.group_by:
            select_parts.append(f"{alias}.{column}")
        select_parts.append(f"{self.aggregate.upper()}({self.measure_sql}) AS agg")
        lines = [
            "SELECT " + ", ".join(select_parts),
            f"FROM {self.fact_table} AS {self.fact_alias}",
        ]
        for edge in self.edges:
            lines.append(
                f"JOIN {edge.right_table} AS {edge.right_alias} "
                f"ON {edge.left_alias}.{edge.left_column} = "
                f"{edge.right_alias}.{edge.right_column}"
            )
        if self.filters:
            rendered = [
                "(" + _qualify(str(f.predicate), f.alias) + ")"
                for f in self.filters
            ]
            lines.append("WHERE " + " AND ".join(rendered))
        if self.group_by:
            keys = ", ".join(f"{alias}.{column}" for alias, column in self.group_by)
            lines.append(f"GROUP BY {keys}")
        return "\n".join(lines)


def _qualify(predicate_sql: str, alias: str) -> str:
    """Qualify bare column names in a rendered predicate with ``alias``.

    Predicates render column references as bare identifiers; inside a join
    query every identifier must be alias-qualified.  We do a conservative
    token rewrite: identifiers that are not SQL keywords, not quoted strings,
    and not numbers get the alias prefix.
    """
    keywords = {"AND", "OR", "NOT", "IN", "IS", "NULL", "BETWEEN", "LIKE"}
    out: list[str] = []
    i = 0
    n = len(predicate_sql)
    while i < n:
        ch = predicate_sql[i]
        if ch == "'":
            # copy the quoted string verbatim (handles '' escapes)
            j = i + 1
            while j < n:
                if predicate_sql[j] == "'":
                    if j + 1 < n and predicate_sql[j + 1] == "'":
                        j += 2
                        continue
                    break
                j += 1
            out.append(predicate_sql[i : j + 1])
            i = j + 1
        elif ch.isalpha() or ch == "_":
            j = i
            while j < n and (predicate_sql[j].isalnum() or predicate_sql[j] == "_"):
                j += 1
            token = predicate_sql[i:j]
            if token.upper() in keywords:
                out.append(token)
            else:
                out.append(f"{alias}.{token}")
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def render_measure(expr: Expression) -> str:
    """Render a measure expression for SQL (columns assumed fact-qualified
    later via :func:`_qualify` convention: measures only read fact columns,
    so we qualify with the fact alias at call sites)."""
    return str(expr)
