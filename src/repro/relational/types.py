"""Column types and schema metadata for the in-memory relational engine.

The engine stores data column-wise: each :class:`Column` declares a name
and a :class:`ColumnType`; the actual values live in plain Python lists held
by :class:`~repro.relational.table.Table`.  Types are deliberately minimal —
KDAP only needs integers, floats, text, and dates — but every value that
enters a table is validated and coerced through :func:`coerce_value`, so the
rest of the engine can trust the data it reads.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass

from .errors import TypeMismatchError


class ColumnType(enum.Enum):
    """The value domain of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        """True for types on which arithmetic and bucketization make sense."""
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)


@dataclass(frozen=True)
class Column:
    """A column definition: a name plus a declared type.

    ``nullable`` defaults to True; primary-key columns should pass
    ``nullable=False`` so that :meth:`Table.insert` rejects missing keys.
    """

    name: str
    type: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise ValueError(f"invalid column name: {self.name!r}")


def coerce_value(value, column: Column):
    """Validate and coerce ``value`` for storage in ``column``.

    Returns the stored representation (dates are stored as ISO strings so
    that sorting and sqlite round-trips are trivial).  Raises
    :class:`TypeMismatchError` when the value cannot represent the declared
    type.
    """
    if value is None:
        if column.nullable:
            return None
        raise TypeMismatchError(
            f"column {column.name!r} is NOT NULL but got None"
        )

    kind = column.type
    if kind is ColumnType.INTEGER:
        if isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column.name!r}: bool is not an INTEGER"
            )
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise TypeMismatchError(
            f"column {column.name!r}: {value!r} is not an INTEGER"
        )
    if kind is ColumnType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(
                f"column {column.name!r}: bool is not a FLOAT"
            )
        if isinstance(value, (int, float)):
            return float(value)
        raise TypeMismatchError(
            f"column {column.name!r}: {value!r} is not a FLOAT"
        )
    if kind is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeMismatchError(
            f"column {column.name!r}: {value!r} is not TEXT"
        )
    if kind is ColumnType.DATE:
        if isinstance(value, _dt.date) and not isinstance(value, _dt.datetime):
            return value.isoformat()
        if isinstance(value, str):
            try:
                _dt.date.fromisoformat(value)
            except ValueError as exc:
                raise TypeMismatchError(
                    f"column {column.name!r}: {value!r} is not an ISO date"
                ) from exc
            return value
        raise TypeMismatchError(
            f"column {column.name!r}: {value!r} is not a DATE"
        )
    if kind is ColumnType.BOOLEAN:
        if isinstance(value, bool):
            return value
        raise TypeMismatchError(
            f"column {column.name!r}: {value!r} is not a BOOLEAN"
        )
    raise TypeMismatchError(f"unsupported column type: {kind}")


# Convenience constructors, so schema definitions read naturally:
#   integer("CustomerKey"), text("City"), ...

def integer(name: str, nullable: bool = True) -> Column:
    """An INTEGER column."""
    return Column(name, ColumnType.INTEGER, nullable)


def float_(name: str, nullable: bool = True) -> Column:
    """A FLOAT column."""
    return Column(name, ColumnType.FLOAT, nullable)


def text(name: str, nullable: bool = True) -> Column:
    """A TEXT column."""
    return Column(name, ColumnType.TEXT, nullable)


def date(name: str, nullable: bool = True) -> Column:
    """A DATE column (stored as ISO-8601 text)."""
    return Column(name, ColumnType.DATE, nullable)


def boolean(name: str, nullable: bool = True) -> Column:
    """A BOOLEAN column."""
    return Column(name, ColumnType.BOOLEAN, nullable)
