"""In-memory execution of :class:`~repro.relational.sql.JoinQuery`.

The engine's primary path evaluates star nets as semi-join chains over
fact-row sets; this executor is the *general* path: it runs the same
fact-rooted join tree that :meth:`JoinQuery.to_sql` renders, entirely in
memory, producing exactly the rows sqlite would.  Tests use the three-way
agreement (subspace evaluation == executor == sqlite) as the engine's
correctness anchor; users get a way to run grouped star-join queries
without leaving Python.

Execution strategy: start from the fact table's row ids, apply each
:class:`JoinEdge` as a hash join extending an *alias environment* (a
tuple of row ids, one slot per alias), apply the alias filters, then fold
the group-by/aggregate.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable

from .catalog import Database
from .errors import SchemaError
from .operators import AGGREGATES
from .sql import JoinQuery


def execute_join_query(database: Database,
                       query: JoinQuery) -> list[tuple]:
    """Run a join query; returns rows shaped like sqlite's result set:
    one tuple per group (group keys..., aggregate), or a single
    ``(aggregate,)`` row when there is no GROUP BY."""
    # ------------------------------------------------------------------
    # resolve aliases
    # ------------------------------------------------------------------
    alias_tables: dict[str, str] = {query.fact_alias: query.fact_table}
    for edge in query.edges:
        if edge.right_alias in alias_tables:
            raise SchemaError(
                f"alias {edge.right_alias!r} introduced twice")
        alias_tables[edge.right_alias] = edge.right_table
    for edge in query.edges:
        if edge.left_alias not in alias_tables:
            raise SchemaError(
                f"edge joins from unknown alias {edge.left_alias!r}")

    alias_order = list(alias_tables)
    slot_of = {alias: i for i, alias in enumerate(alias_order)}
    tables = {alias: database.table(name)
              for alias, name in alias_tables.items()}

    # ------------------------------------------------------------------
    # joins: grow alias environments left to right
    # ------------------------------------------------------------------
    fact = tables[query.fact_alias]
    rows: list[tuple] = [
        (rid,) + (None,) * (len(alias_order) - 1)
        for rid in range(len(fact))
    ]
    for edge in query.edges:
        right_table = tables[edge.right_alias]
        index: dict[Hashable, list[int]] = defaultdict(list)
        for rid, value in enumerate(
                right_table.column_values(edge.right_column)):
            if value is not None:
                index[value].append(rid)
        left_slot = slot_of[edge.left_alias]
        right_slot = slot_of[edge.right_alias]
        left_values = tables[edge.left_alias].column_values(
            edge.left_column)
        extended: list[tuple] = []
        for env in rows:
            left_rid = env[left_slot]
            if left_rid is None:
                continue
            key = left_values[left_rid]
            if key is None:
                continue
            for right_rid in index.get(key, ()):
                new_env = list(env)
                new_env[right_slot] = right_rid
                extended.append(tuple(new_env))
        rows = extended
        if not rows:
            break

    # ------------------------------------------------------------------
    # filters
    # ------------------------------------------------------------------
    for alias_filter in query.filters:
        slot = slot_of.get(alias_filter.alias)
        if slot is None:
            raise SchemaError(
                f"filter references unknown alias {alias_filter.alias!r}")
        table = tables[alias_filter.alias]
        alias_filter.predicate.validate(table)
        rows = [
            env for env in rows
            if env[slot] is not None
            and alias_filter.predicate.evaluate(table, env[slot])
        ]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    aggregate_fn = AGGREGATES[query.aggregate]

    def measure_of(env: tuple):
        if query.measure_expr is None:
            return 1
        return query.measure_expr.evaluate(fact, env[0])

    if not query.group_by:
        return [(aggregate_fn(measure_of(env) for env in rows),)]

    key_columns = []
    for alias, column in query.group_by:
        slot = slot_of.get(alias)
        if slot is None:
            raise SchemaError(
                f"group-by references unknown alias {alias!r}")
        key_columns.append((slot, tables[alias].column_values(column)))

    groups: dict[tuple, list] = defaultdict(list)
    for env in rows:
        key = tuple(values[env[slot]] if env[slot] is not None else None
                    for slot, values in key_columns)
        groups[key].append(measure_of(env))
    return [
        (*key, aggregate_fn(measures))
        for key, measures in sorted(groups.items(),
                                    key=lambda kv: tuple(map(str, kv[0])))
    ]
